// Microbench for the morsel-driven adaptive GROUP BY engine
// (query/aggregator.h): fixed strategies versus the adaptive chooser
// across group cardinalities and thread counts, plus the guided morsel
// schedule versus the legacy uniform pre-split on a skewed catalog.
//
// Method:
//  1. Build catalogs directly (CreatePartition/AddRow) so partition
//     sizes are controlled exactly and setup cost stays off the clock:
//     a uniform catalog for the strategy sweep and a skewed one (one
//     partition holding ~25% of all rows) for the scheduling comparison.
//  2. Strategy sweep: for each group cardinality and thread count, time
//     two_phase, radix, shared_table, and adaptive. Every run's result
//     must be bit-identical to the serial two-phase baseline (the
//     determinism contract); the adaptive row records which strategy the
//     chooser picked and its overhead against the best fixed strategy
//     (target: within ~10% at every point).
//  3. Scheduling: two_phase at a fixed thread count on the skewed
//     catalog, uniform pre-split (ParallelFor) vs guided morsel schedule
//     (ParallelForDynamic) — the straggler partition gates the former.
//
// Emits BENCH_groupby.json in the working directory plus tables on
// stdout. Exit code reflects result identity only; timings are data.
//
// Knobs: CINDERELLA_BENCH_ENTITIES (default 600000),
//        CINDERELLA_BENCH_GROUPBY_REPS (default 3),
//        CINDERELLA_BENCH_ROWS_PER_PART (default 512),
//        CINDERELLA_SCAN_CHUNK (morsel size, recorded in host metadata).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/env.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/catalog.h"
#include "query/aggregator.h"
#include "storage/row.h"

namespace cinderella {
namespace {

constexpr AttributeId kGroup = 0;
constexpr AttributeId kValue = 1;

/// Fills `catalog` with `partition_rows[p]` rows in partition p: group
/// keys id % groups, deterministic int64/double values, plus a noise
/// attribute so synopses differ across partitions.
void FillCatalog(PartitionCatalog* catalog,
                 const std::vector<size_t>& partition_rows, size_t groups) {
  Rng rng(991);
  EntityId next_id = 0;
  for (const size_t rows : partition_rows) {
    Partition& partition = catalog->CreatePartition();
    for (size_t i = 0; i < rows; ++i) {
      Row row(next_id++);
      row.Set(kGroup,
              Value(static_cast<int64_t>(rng.Uniform(groups))));
      if (i % 8 == 5) {
        row.Set(kValue, Value(static_cast<double>(rng.Uniform(1000)) / 7.0));
      } else {
        row.Set(kValue, Value(static_cast<int64_t>(rng.Uniform(2000)) - 1000));
      }
      row.Set(static_cast<AttributeId>(2 + partition.id() % 7),
              Value(int64_t{1}));
      const Synopsis synopsis = row.AttributeSynopsis();
      if (!partition.AddRow(std::move(row), synopsis).ok()) std::abort();
    }
  }
}

std::vector<size_t> UniformPartitions(size_t entities, size_t per_partition) {
  std::vector<size_t> rows(entities / per_partition, per_partition);
  if (entities % per_partition != 0) {
    rows.push_back(entities % per_partition);
  }
  return rows;
}

/// One partition holds ~25% of every row; the rest are uniform. The
/// uniform pre-split schedule strands whichever thread draws the big
/// partition's chunk.
std::vector<size_t> SkewedPartitions(size_t entities, size_t per_partition) {
  const size_t big = entities / 4;
  std::vector<size_t> rows{big};
  const std::vector<size_t> tail =
      UniformPartitions(entities - big, per_partition);
  rows.insert(rows.end(), tail.begin(), tail.end());
  return rows;
}

struct BenchPoint {
  size_t groups = 0;
  int threads = 0;
  std::string strategy;       // Requested strategy ("adaptive" included).
  std::string strategy_used;  // What actually ran.
  double avg_ms = 0.0;
  uint64_t groups_out = 0;
  uint64_t estimated_groups = 0;
  bool identical = true;  // vs the serial two-phase baseline.
};

double TimeAggregate(Aggregator* aggregator, const AggregateSpec& spec,
                     int reps, AggregationResult* last) {
  WallTimer timer;
  for (int r = 0; r < reps; ++r) *last = aggregator->Aggregate(spec);
  return timer.ElapsedSeconds() * 1e3 / reps;
}

}  // namespace
}  // namespace cinderella

int main() {
  using namespace cinderella;
  using bench::PrintHeader;

  const size_t entities = static_cast<size_t>(
      Int64FromEnv("CINDERELLA_BENCH_ENTITIES", 600000));
  const int reps = static_cast<int>(
      Int64FromEnv("CINDERELLA_BENCH_GROUPBY_REPS", 3));
  const size_t per_partition = static_cast<size_t>(
      Int64FromEnv("CINDERELLA_BENCH_ROWS_PER_PART", 512));

  // 10 -> ~1M distinct groups, capped by the table size.
  std::vector<size_t> group_counts;
  for (const size_t g : {size_t{10}, size_t{1000}, size_t{65536},
                         size_t{1000000}}) {
    group_counts.push_back(std::min(g, entities));
  }
  group_counts.erase(std::unique(group_counts.begin(), group_counts.end()),
                     group_counts.end());
  const std::vector<int> thread_counts{1, 2, 4, 8};

  AggregateSpec spec;
  spec.group_by = kGroup;
  spec.value = kValue;

  std::vector<BenchPoint> points;
  bool all_identical = true;
  double worst_adaptive_ratio = 1.0;

  for (const size_t groups : group_counts) {
    PrintHeader("groupby: " + std::to_string(groups) + " groups, " +
                std::to_string(entities) + " rows");
    PartitionCatalog catalog;
    FillCatalog(&catalog, UniformPartitions(entities, per_partition),
                groups);

    // Serial two-phase: the baseline every configuration must reproduce
    // bit-identically.
    std::vector<GroupResult> baseline;
    {
      Aggregator serial(catalog);
      baseline = serial.Aggregate(spec).groups;
    }

    for (const int threads : thread_counts) {
      double best_fixed_ms = 0.0;
      double adaptive_ms = 0.0;
      const AggregateStrategy strategies[] = {
          AggregateStrategy::kTwoPhase, AggregateStrategy::kRadix,
          AggregateStrategy::kSharedTable, AggregateStrategy::kAdaptive};
      for (const AggregateStrategy strategy : strategies) {
        AggregatorOptions options;
        options.scan_threads = threads;
        options.strategy = strategy;
        Aggregator aggregator(catalog, options);
        AggregationResult last;
        BenchPoint point;
        point.groups = groups;
        point.threads = threads;
        point.strategy = AggregateStrategyName(strategy);
        point.avg_ms = TimeAggregate(&aggregator, spec, reps, &last);
        point.strategy_used = AggregateStrategyName(last.strategy_used);
        point.groups_out = last.groups.size();
        point.estimated_groups = last.estimated_groups;
        point.identical = last.groups == baseline;
        all_identical &= point.identical;
        if (strategy == AggregateStrategy::kAdaptive) {
          adaptive_ms = point.avg_ms;
        } else if (best_fixed_ms == 0.0 || point.avg_ms < best_fixed_ms) {
          best_fixed_ms = point.avg_ms;
        }
        std::printf("  t=%d %-12s %9.2f ms  (%llu groups, ran %s%s)\n",
                    threads, point.strategy.c_str(), point.avg_ms,
                    static_cast<unsigned long long>(point.groups_out),
                    point.strategy_used.c_str(),
                    point.identical ? "" : ", MISMATCH");
        points.push_back(point);
      }
      const double ratio =
          best_fixed_ms > 0.0 ? adaptive_ms / best_fixed_ms : 1.0;
      worst_adaptive_ratio = std::max(worst_adaptive_ratio, ratio);
      std::printf("  t=%d adaptive/best-fixed = %.3fx\n", threads, ratio);
    }
  }

  // ---- Scheduling: uniform pre-split vs guided morsels, skewed sizes. --
  PrintHeader("scheduling: fixed chunks vs morsels (skewed partitions)");
  const size_t sched_groups = std::min<size_t>(1000, entities);
  PartitionCatalog skewed;
  FillCatalog(&skewed, SkewedPartitions(entities, per_partition),
              sched_groups);
  double fixed_ms = 0.0;
  double morsel_ms = 0.0;
  bool sched_identical = true;
  {
    std::vector<GroupResult> baseline;
    for (const bool fixed : {true, false}) {
      AggregatorOptions options;
      options.scan_threads = 4;
      options.strategy = AggregateStrategy::kTwoPhase;
      options.fixed_chunks = fixed;
      Aggregator aggregator(skewed, options);
      AggregationResult last;
      const double ms = TimeAggregate(&aggregator, spec, reps, &last);
      if (fixed) {
        fixed_ms = ms;
        baseline = last.groups;
      } else {
        morsel_ms = ms;
        sched_identical = last.groups == baseline;
      }
    }
  }
  all_identical &= sched_identical;
  std::printf("  fixed %9.2f ms   morsel %9.2f ms   (%.3fx%s)\n", fixed_ms,
              morsel_ms, fixed_ms > 0.0 ? fixed_ms / morsel_ms : 0.0,
              sched_identical ? "" : ", MISMATCH");

  // ---- Trajectory point. ----
  FILE* json = std::fopen("BENCH_groupby.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_groupby.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"micro_groupby\",\n");
  std::fprintf(json, "  \"entities\": %zu,\n", entities);
  std::fprintf(json, "  \"reps\": %d,\n", reps);
  std::fprintf(json, "  \"rows_per_partition\": %zu,\n", per_partition);
  bench::WriteHostMetadata(json);
  std::fprintf(json, "  \"points\": [");
  for (size_t i = 0; i < points.size(); ++i) {
    const BenchPoint& p = points[i];
    std::fprintf(json,
                 "%s\n    {\"groups\": %zu, \"threads\": %d, "
                 "\"strategy\": \"%s\", \"ran\": \"%s\", \"avg_ms\": %.3f, "
                 "\"groups_out\": %llu, \"estimated_groups\": %llu, "
                 "\"identical\": %s}",
                 i == 0 ? "" : ",", p.groups, p.threads, p.strategy.c_str(),
                 p.strategy_used.c_str(), p.avg_ms,
                 static_cast<unsigned long long>(p.groups_out),
                 static_cast<unsigned long long>(p.estimated_groups),
                 p.identical ? "true" : "false");
  }
  std::fprintf(json, "\n  ],\n");
  std::fprintf(json,
               "  \"scheduling\": {\"fixed_ms\": %.3f, \"morsel_ms\": %.3f, "
               "\"speedup\": %.3f},\n",
               fixed_ms, morsel_ms,
               morsel_ms > 0.0 ? fixed_ms / morsel_ms : 0.0);
  std::fprintf(json, "  \"worst_adaptive_vs_best_fixed\": %.3f,\n",
               worst_adaptive_ratio);
  std::fprintf(json, "  \"results_identical\": %s\n}\n",
               all_identical ? "true" : "false");
  std::fclose(json);
  std::printf("\nworst adaptive/best-fixed ratio: %.3fx (target <= ~1.10)\n",
              worst_adaptive_ratio);
  std::printf("wrote BENCH_groupby.json\n");
  return all_identical ? 0 : 1;
}
