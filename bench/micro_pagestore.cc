// Google-benchmark microbenchmarks for the persistence substrates: the
// slotted-page codec, the file-backed pager, the buffer-pool hit path,
// journal append throughput, snapshot save/load, and the tiered cold
// store at out-of-core scale (chains far exceeding the pool).

#include <cstdio>
#include <memory>
#include <sstream>

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "core/cinderella.h"
#include "core/snapshot.h"
#include "io/journal.h"
#include "pagestore/buffer_pool.h"
#include "pagestore/page_codec.h"
#include "pagestore/pager.h"
#include "storage/tiered_store.h"

namespace cinderella {
namespace {

Row SampleRow(EntityId id, Rng& rng) {
  Row row(id);
  for (int a = 0; a < 6; ++a) {
    row.Set(static_cast<AttributeId>(rng.Uniform(40)),
            Value(static_cast<int64_t>(rng.Uniform(100000))));
  }
  return row;
}

void BM_PageCodecAppend(benchmark::State& state) {
  PageCodec codec(8192);
  std::vector<uint8_t> page(8192);
  Rng rng(1);
  const Row row = SampleRow(1, rng);
  codec.InitPage(page.data());
  for (auto _ : state) {
    auto slot = codec.AppendRow(page.data(), row);
    if (!slot.has_value()) codec.InitPage(page.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PageCodecAppend);

void BM_PageCodecReadRow(benchmark::State& state) {
  PageCodec codec(8192);
  std::vector<uint8_t> page(8192);
  codec.InitPage(page.data());
  Rng rng(2);
  uint16_t slots = 0;
  while (codec.AppendRow(page.data(), SampleRow(slots, rng)).has_value()) {
    ++slots;
  }
  uint16_t next = 0;
  for (auto _ : state) {
    auto row = codec.ReadRow(page.data(), next);
    benchmark::DoNotOptimize(row);
    next = static_cast<uint16_t>((next + 1) % slots);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PageCodecReadRow);

void BM_PagerWriteRead(benchmark::State& state) {
  auto pager = Pager::Open("/tmp/bench_pager.db", 8192, true);
  if (!pager.ok()) {
    state.SkipWithError("cannot open pager file");
    return;
  }
  auto page = (*pager)->AllocatePage();
  std::vector<uint8_t> buffer(8192, 0x5A);
  for (auto _ : state) {
    benchmark::DoNotOptimize((*pager)->WritePage(*page, buffer.data()));
    benchmark::DoNotOptimize((*pager)->ReadPage(*page, buffer.data()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 16384);
}
BENCHMARK(BM_PagerWriteRead);

void BM_BufferPoolHit(benchmark::State& state) {
  auto pager = Pager::Open("/tmp/bench_pool.db", 8192, true);
  if (!pager.ok()) {
    state.SkipWithError("cannot open pager file");
    return;
  }
  auto page = (*pager)->AllocatePage();
  BufferPool pool(pager->get(), 4);
  for (auto _ : state) {
    auto handle = pool.Fetch(*page);
    benchmark::DoNotOptimize(handle->data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferPoolHit);

void BM_JournalAppend(benchmark::State& state) {
  auto writer = JournalWriter::Open("/tmp/bench_journal.log", true);
  if (!writer.ok()) {
    state.SkipWithError("cannot open journal");
    return;
  }
  Rng rng(3);
  const Row row = SampleRow(1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize((*writer)->LogInsert(row));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JournalAppend);

void BM_SnapshotSaveLoad(benchmark::State& state) {
  CinderellaConfig config;
  config.weight = 0.3;
  config.max_size = 500;
  auto c = std::move(Cinderella::Create(config)).value();
  AttributeDictionary dictionary;
  Rng rng(4);
  for (EntityId id = 0; id < static_cast<EntityId>(state.range(0)); ++id) {
    benchmark::DoNotOptimize(c->Insert(SampleRow(id, rng)));
  }
  for (auto _ : state) {
    std::stringstream buffer;
    benchmark::DoNotOptimize(SaveSnapshot(*c, dictionary, buffer));
    auto restored = LoadSnapshot(buffer);
    benchmark::DoNotOptimize(restored);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SnapshotSaveLoad)->Arg(1000)->Arg(10000);

// Out-of-core chain reads: state.range(0) chains of 64 rows each behind a
// 4-frame pool, so round-robin reads churn through evictions the way a
// cold scan over a spilled data set does.
void BM_TieredChainReadOutOfCore(benchmark::State& state) {
  TieredStoreOptions options;
  options.path = "/tmp/bench_tiered_chains.pages";
  options.page_size = 4096;
  options.pool_frames = 4;
  auto opened = TieredStore::Open(options);
  if (!opened.ok()) {
    state.SkipWithError("cannot open tiered store");
    return;
  }
  auto tier = std::move(opened).value();
  Rng rng(5);
  std::vector<std::shared_ptr<const ColdChain>> chains;
  EntityId next = 0;
  for (int64_t c = 0; c < state.range(0); ++c) {
    std::vector<Row> rows;
    rows.reserve(64);
    for (int i = 0; i < 64; ++i) rows.push_back(SampleRow(next++, rng));
    auto chain = tier->WriteChain(rows);
    if (!chain.ok()) {
      state.SkipWithError("chain write failed");
      return;
    }
    chains.push_back(std::move(chain).value());
  }
  size_t cursor = 0;
  uint64_t rows_read = 0;
  for (auto _ : state) {
    const auto& chain = chains[cursor];
    cursor = (cursor + 1) % chains.size();
    auto status = tier->ReadChain(*chain, [&](const Row& row) {
      benchmark::DoNotOptimize(row.id());
      ++rows_read;
    });
    benchmark::DoNotOptimize(status);
  }
  const TieredStoreStats stats = tier->stats();
  state.counters["pool_hit_rate"] = benchmark::Counter(
      stats.pool.hits + stats.pool.misses > 0
          ? static_cast<double>(stats.pool.hits) /
                static_cast<double>(stats.pool.hits + stats.pool.misses)
          : 0.0);
  state.counters["cold_pages"] =
      benchmark::Counter(static_cast<double>(stats.cold_pages));
  state.SetItemsProcessed(static_cast<int64_t>(rows_read));
}
BENCHMARK(BM_TieredChainReadOutOfCore)->Arg(8)->Arg(64);

// Full demote/promote round trip through the live engine: spill one
// partition to the cold tier, then fault it back hot.
void BM_SpillFaultRoundTrip(benchmark::State& state) {
  CinderellaConfig config;
  config.weight = 0.3;
  config.max_size = 500;
  auto engine = std::move(Cinderella::Create(config)).value();
  Rng rng(6);
  for (EntityId id = 0; id < 512; ++id) {
    benchmark::DoNotOptimize(engine->Insert(SampleRow(id, rng)));
  }
  TieredStoreOptions options;
  options.path = "/tmp/bench_tiered_roundtrip.pages";
  options.page_size = 4096;
  options.pool_frames = 8;
  auto opened = TieredStore::Open(options);
  if (!opened.ok()) {
    state.SkipWithError("cannot open tiered store");
    return;
  }
  auto tier = std::move(opened).value();
  engine->set_cold_tier(tier.get());
  PartitionId victim = 0;
  size_t victim_rows = 0;
  engine->catalog().ForEachPartition([&](const Partition& partition) {
    const size_t rows = partition.Size(SizeMeasure::kEntityCount);
    if (rows > victim_rows) {
      victim_rows = rows;
      victim = partition.id();
    }
  });
  for (auto _ : state) {
    if (!engine->SpillPartition(victim).ok()) {
      state.SkipWithError("spill failed");
      return;
    }
    Partition* partition = engine->catalog().GetPartition(victim);
    if (partition == nullptr || !engine->EnsureHot(*partition).ok()) {
      state.SkipWithError("fault-in failed");
      return;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(victim_rows));
}
BENCHMARK(BM_SpillFaultRoundTrip);

}  // namespace
}  // namespace cinderella

BENCHMARK_MAIN();
