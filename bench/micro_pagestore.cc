// Google-benchmark microbenchmarks for the persistence substrates: the
// slotted-page codec, the file-backed pager, the buffer-pool hit path,
// journal append throughput, and snapshot save/load.

#include <cstdio>
#include <sstream>

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "core/cinderella.h"
#include "core/snapshot.h"
#include "io/journal.h"
#include "pagestore/buffer_pool.h"
#include "pagestore/page_codec.h"
#include "pagestore/pager.h"

namespace cinderella {
namespace {

Row SampleRow(EntityId id, Rng& rng) {
  Row row(id);
  for (int a = 0; a < 6; ++a) {
    row.Set(static_cast<AttributeId>(rng.Uniform(40)),
            Value(static_cast<int64_t>(rng.Uniform(100000))));
  }
  return row;
}

void BM_PageCodecAppend(benchmark::State& state) {
  PageCodec codec(8192);
  std::vector<uint8_t> page(8192);
  Rng rng(1);
  const Row row = SampleRow(1, rng);
  codec.InitPage(page.data());
  for (auto _ : state) {
    auto slot = codec.AppendRow(page.data(), row);
    if (!slot.has_value()) codec.InitPage(page.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PageCodecAppend);

void BM_PageCodecReadRow(benchmark::State& state) {
  PageCodec codec(8192);
  std::vector<uint8_t> page(8192);
  codec.InitPage(page.data());
  Rng rng(2);
  uint16_t slots = 0;
  while (codec.AppendRow(page.data(), SampleRow(slots, rng)).has_value()) {
    ++slots;
  }
  uint16_t next = 0;
  for (auto _ : state) {
    auto row = codec.ReadRow(page.data(), next);
    benchmark::DoNotOptimize(row);
    next = static_cast<uint16_t>((next + 1) % slots);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PageCodecReadRow);

void BM_PagerWriteRead(benchmark::State& state) {
  auto pager = Pager::Open("/tmp/bench_pager.db", 8192, true);
  if (!pager.ok()) {
    state.SkipWithError("cannot open pager file");
    return;
  }
  auto page = (*pager)->AllocatePage();
  std::vector<uint8_t> buffer(8192, 0x5A);
  for (auto _ : state) {
    benchmark::DoNotOptimize((*pager)->WritePage(*page, buffer.data()));
    benchmark::DoNotOptimize((*pager)->ReadPage(*page, buffer.data()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 16384);
}
BENCHMARK(BM_PagerWriteRead);

void BM_BufferPoolHit(benchmark::State& state) {
  auto pager = Pager::Open("/tmp/bench_pool.db", 8192, true);
  if (!pager.ok()) {
    state.SkipWithError("cannot open pager file");
    return;
  }
  auto page = (*pager)->AllocatePage();
  BufferPool pool(pager->get(), 4);
  for (auto _ : state) {
    auto handle = pool.Fetch(*page);
    benchmark::DoNotOptimize(handle->data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferPoolHit);

void BM_JournalAppend(benchmark::State& state) {
  auto writer = JournalWriter::Open("/tmp/bench_journal.log", true);
  if (!writer.ok()) {
    state.SkipWithError("cannot open journal");
    return;
  }
  Rng rng(3);
  const Row row = SampleRow(1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize((*writer)->LogInsert(row));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JournalAppend);

void BM_SnapshotSaveLoad(benchmark::State& state) {
  CinderellaConfig config;
  config.weight = 0.3;
  config.max_size = 500;
  auto c = std::move(Cinderella::Create(config)).value();
  AttributeDictionary dictionary;
  Rng rng(4);
  for (EntityId id = 0; id < static_cast<EntityId>(state.range(0)); ++id) {
    benchmark::DoNotOptimize(c->Insert(SampleRow(id, rng)));
  }
  for (auto _ : state) {
    std::stringstream buffer;
    benchmark::DoNotOptimize(SaveSnapshot(*c, dictionary, buffer));
    auto restored = LoadSnapshot(buffer);
    benchmark::DoNotOptimize(restored);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SnapshotSaveLoad)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace cinderella

BENCHMARK_MAIN();
