// Online adaptivity under schema drift (our addition; this is Definition 2
// made visible). The paper's core claim is that Cinderella *maintains*
// EFFICIENCY(P) as modifications arrive, where any fixed or offline-built
// partitioning degrades.
//
// Scenario: entities initially belong to five "era-1" schema families.
// From the drift point on, entities are updated to five disjoint "era-2"
// families (plus fresh era-2 inserts and some deletes). A partitioner
// that updates in place accumulates mixed partitions whose synopses cover
// both eras, so the selective per-family workload can prune less and
// less; Cinderella relocates updated entities and keeps efficiency flat.
//
// Compared: Cinderella (with and without the dissolve extension), the
// offline Jaccard clustering built on the initial data, arrival-order
// range partitioning, and the unpartitioned table.
//
// Env knobs: CINDERELLA_ENTITIES (initial size, default 10000),
// CINDERELLA_SEED.

#include <cstdio>
#include <memory>
#include <vector>

#include "baseline/offline_cluster_partitioner.h"
#include "baseline/range_partitioner.h"
#include "baseline/single_partitioner.h"
#include "bench/bench_common.h"
#include "common/env.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/table_printer.h"
#include "core/cinderella.h"
#include "core/efficiency.h"

namespace cinderella {
namespace {

constexpr size_t kFamilies = 5;
constexpr AttributeId kEra2Offset = 40;

Row MakeEntity(EntityId id, size_t family, bool era2, Rng& rng) {
  Row row(id);
  const AttributeId base =
      static_cast<AttributeId>(family * 6 + (era2 ? kEra2Offset : 0));
  for (AttributeId a = 0; a < 5; ++a) {
    if (a < 3 || rng.Bernoulli(0.6)) {
      row.Set(base + a, Value(static_cast<int64_t>(rng.Uniform(1000))));
    }
  }
  return row;
}

int Main() {
  const size_t initial =
      static_cast<size_t>(Int64FromEnv("CINDERELLA_ENTITIES", 10000));
  const uint64_t seed =
      static_cast<uint64_t>(Int64FromEnv("CINDERELLA_SEED", 42));

  // Workload: one selective query per family and era.
  std::vector<Synopsis> workload;
  for (size_t f = 0; f < kFamilies; ++f) {
    workload.push_back(Synopsis{static_cast<AttributeId>(f * 6)});
    workload.push_back(
        Synopsis{static_cast<AttributeId>(f * 6 + kEra2Offset)});
  }

  // Initial data.
  Rng rng(seed);
  std::vector<Row> era1;
  for (EntityId id = 0; id < initial; ++id) {
    era1.push_back(MakeEntity(id, id % kFamilies, /*era2=*/false, rng));
  }

  struct Contender {
    std::string label;
    std::unique_ptr<Partitioner> partitioner;
  };
  std::vector<Contender> contenders;
  {
    CinderellaConfig cc;
    cc.weight = 0.3;
    cc.max_size = 500;
    contenders.push_back(
        {"cinderella", std::move(Cinderella::Create(cc)).value()});
    cc.dissolve_threshold = 0.25;
    contenders.push_back(
        {"cinderella+dissolve", std::move(Cinderella::Create(cc)).value()});
  }
  {
    OfflineClusterConfig oc;
    oc.jaccard_threshold = 0.4;
    oc.max_entities_per_partition = 500;
    auto offline = std::make_unique<OfflineClusterPartitioner>(oc);
    CINDERELLA_CHECK(offline->Build(bench::CopyRows(era1)).ok());
    contenders.push_back({"offline-jaccard", std::move(offline)});
  }
  contenders.push_back(
      {"range", std::make_unique<RangePartitioner>(500)});
  contenders.push_back(
      {"universal", std::make_unique<SinglePartitioner>()});

  // Everyone except the pre-built offline comparator loads the same data.
  for (Contender& c : contenders) {
    if (c.label == "offline-jaccard") continue;
    for (const Row& row : era1) {
      CINDERELLA_CHECK(c.partitioner->Insert(row).ok());
    }
  }

  auto efficiency = [&](const Partitioner& partitioner) {
    return ComputeEfficiency(partitioner.catalog(), workload,
                             SizeMeasure::kEntityCount)
        .efficiency;
  };

  TablePrinter table([&] {
    std::vector<std::string> headers{"epoch", "drifted"};
    for (const Contender& c : contenders) headers.push_back(c.label);
    return headers;
  }());

  // Drift: each epoch updates a slice of era-1 entities to era-2 schemas,
  // inserts some fresh era-2 entities, and deletes a few old ones.
  const size_t epochs = 10;
  const size_t updates_per_epoch = initial / 12;
  EntityId next_update = 0;
  EntityId next_insert = initial;
  EntityId next_delete = 0;
  size_t drifted = 0;
  Rng op_rng(seed + 1);

  for (size_t epoch = 0; epoch <= epochs; ++epoch) {
    if (epoch > 0) {
      for (size_t u = 0; u < updates_per_epoch; ++u) {
        const EntityId victim = next_update++;
        const size_t family = victim % kFamilies;
        ++drifted;
        for (Contender& c : contenders) {
          CINDERELLA_CHECK(
              c.partitioner
                  ->Update(MakeEntity(victim, family, /*era2=*/true, op_rng))
                  .ok());
        }
      }
      for (size_t i = 0; i < updates_per_epoch / 4; ++i) {
        const EntityId id = next_insert++;
        const Row fresh = MakeEntity(id, id % kFamilies, /*era2=*/true,
                                     op_rng);
        for (Contender& c : contenders) {
          CINDERELLA_CHECK(c.partitioner->Insert(fresh).ok());
        }
      }
      for (size_t i = 0; i < updates_per_epoch / 4; ++i) {
        // Delete drifted entities (they exist in every contender).
        const EntityId victim = next_delete++;
        if (victim >= next_update) break;
        for (Contender& c : contenders) {
          CINDERELLA_CHECK(c.partitioner->Delete(victim).ok());
        }
      }
    }
    std::vector<std::string> cells{
        std::to_string(epoch),
        TablePrinter::FormatDouble(
            static_cast<double>(drifted) / static_cast<double>(initial), 2)};
    for (Contender& c : contenders) {
      cells.push_back(TablePrinter::FormatDouble(efficiency(*c.partitioner), 3));
    }
    table.AddRow(std::move(cells));
  }

  bench::PrintHeader(
      "Online adaptivity: Definition-1 efficiency under schema drift");
  std::fputs(table.ToString().c_str(), stdout);
  std::printf(
      "\nfixed/offline schemes update in place and accumulate mixed "
      "partitions; Cinderella relocates updated entities (Section III) and "
      "holds efficiency.\n");
  for (const Contender& c : contenders) {
    std::printf("  %-20s %4zu partitions\n", c.label.c_str(),
                c.partitioner->catalog().partition_count());
  }
  return 0;
}

}  // namespace
}  // namespace cinderella

int main() { return cinderella::Main(); }
