// Distributed deployment scenario (Section II: "partitions are
// distributed among the nodes"): quantifies the trade-off the paper's
// related work motivates — web-scale stores hash-partition for load
// balance (Bigtable/Dynamo/Cassandra), giving every query full fan-out,
// while Cinderella's schema-aware partitions let selective queries touch
// few nodes at a modest placement-imbalance cost.
//
// Reported per selectivity band: nodes contacted, rows on the busiest
// node (the scatter-gather critical path), and total rows scanned; plus
// each layout's static load imbalance.
//
// Env knobs: CINDERELLA_ENTITIES (default 20000), CINDERELLA_SEED,
// CINDERELLA_NODES (default 8).

#include <cstdio>
#include <memory>

#include "baseline/hash_partitioner.h"
#include "baseline/range_partitioner.h"
#include "bench/bench_common.h"
#include "common/env.h"
#include "common/table_printer.h"
#include "core/cinderella.h"
#include "distributed/cluster.h"
#include "workload/dbpedia_generator.h"
#include "workload/query_workload.h"

namespace cinderella {
namespace {

struct Deployment {
  std::string label;
  std::unique_ptr<Partitioner> partitioner;
  std::unique_ptr<Cluster> cluster;
};

int Main() {
  DbpediaConfig config;
  config.num_entities =
      static_cast<size_t>(Int64FromEnv("CINDERELLA_ENTITIES", 20000));
  config.seed = static_cast<uint64_t>(Int64FromEnv("CINDERELLA_SEED", 42));
  const size_t nodes =
      static_cast<size_t>(Int64FromEnv("CINDERELLA_NODES", 8));

  AttributeDictionary dictionary;
  DbpediaGenerator generator(config, &dictionary);
  const auto rows = generator.Generate();
  const auto workload =
      GenerateQueryWorkload(rows, config.num_attributes, QueryWorkloadConfig{});
  std::printf("data set: %zu entities; %zu queries; %zu nodes\n", rows.size(),
              workload.size(), nodes);

  std::vector<Deployment> deployments;
  {
    CinderellaConfig cc;
    cc.weight = 0.2;
    cc.max_size = 500;
    cc.use_synopsis_index = true;
    Deployment d;
    d.label = "cinderella/least-loaded";
    d.partitioner = std::move(Cinderella::Create(cc)).value();
    d.cluster = std::make_unique<Cluster>(nodes, PlacementPolicy::kLeastLoaded);
    deployments.push_back(std::move(d));

    Deployment rr;
    rr.label = "cinderella/round-robin";
    rr.partitioner = std::move(Cinderella::Create(cc)).value();
    rr.cluster = std::make_unique<Cluster>(nodes, PlacementPolicy::kRoundRobin);
    deployments.push_back(std::move(rr));

    Deployment sa;
    sa.label = "cinderella/schema-aware";
    sa.partitioner = std::move(Cinderella::Create(cc)).value();
    sa.cluster =
        std::make_unique<Cluster>(nodes, PlacementPolicy::kSchemaAware);
    deployments.push_back(std::move(sa));
  }
  {
    Deployment d;
    d.label = "hash";
    d.partitioner = std::make_unique<HashPartitioner>(nodes);
    d.cluster = std::make_unique<Cluster>(nodes, PlacementPolicy::kRoundRobin);
    deployments.push_back(std::move(d));
  }
  {
    Deployment d;
    d.label = "range";
    d.partitioner = std::make_unique<RangePartitioner>(
        rows.size() / nodes + 1);
    d.cluster = std::make_unique<Cluster>(nodes, PlacementPolicy::kRoundRobin);
    deployments.push_back(std::move(d));
  }

  for (Deployment& d : deployments) {
    bench::LoadRows(*d.partitioner, bench::CopyRows(rows));
    d.cluster->Place(d.partitioner->catalog());
    std::printf("%-24s %4zu partitions, load imbalance %.2f\n",
                d.label.c_str(), d.partitioner->catalog().partition_count(),
                d.cluster->LoadImbalance(d.partitioner->catalog()));
  }

  bench::PrintHeader("Distributed fan-out per selectivity band");
  TablePrinter table([&] {
    std::vector<std::string> headers{"selectivity"};
    for (const Deployment& d : deployments) {
      headers.push_back(d.label + " nodes");
      headers.push_back(d.label + " straggler-rows");
    }
    return headers;
  }());
  for (double lo = 0.0; lo < 0.6; lo += 0.1) {
    const double hi = lo + 0.1;
    std::vector<std::string> cells;
    char label[32];
    std::snprintf(label, sizeof(label), "%.1f-%.1f", lo, hi);
    cells.push_back(label);
    bool any = false;
    for (const Deployment& d : deployments) {
      uint64_t nodes_contacted = 0;
      uint64_t straggler = 0;
      size_t count = 0;
      for (const GeneratedQuery& q : workload) {
        if (q.selectivity < lo || q.selectivity >= hi) continue;
        const DistributedQueryResult r =
            d.cluster->Execute(q.query, d.partitioner->catalog());
        nodes_contacted += r.nodes_contacted;
        straggler += r.max_node_rows;
        ++count;
      }
      if (count == 0) {
        cells.push_back("-");
        cells.push_back("-");
        continue;
      }
      any = true;
      cells.push_back(TablePrinter::FormatDouble(
          static_cast<double>(nodes_contacted) / count, 1));
      cells.push_back(TablePrinter::FormatDouble(
          static_cast<double>(straggler) / count, 0));
    }
    if (any) table.AddRow(std::move(cells));
  }
  std::fputs(table.ToString().c_str(), stdout);
  return 0;
}

}  // namespace
}  // namespace cinderella

int main() { return cinderella::Main(); }
