#ifndef CINDERELLA_BENCH_BENCH_COMMON_H_
#define CINDERELLA_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "core/partitioner.h"
#include "query/executor.h"
#include "storage/row.h"
#include "workload/query_workload.h"

namespace cinderella {
namespace bench {

/// Deep copy of a row set (each scenario loads its own copy).
std::vector<Row> CopyRows(const std::vector<Row>& rows);

/// Result of loading a data set into a partitioner.
struct LoadResult {
  double total_seconds = 0.0;
  /// Per-insert wall latencies in milliseconds (only when requested).
  std::vector<double> insert_ms;
};

/// Inserts every row, optionally recording per-insert latencies
/// (Figure 8's measurement).
LoadResult LoadRows(Partitioner& partitioner, std::vector<Row> rows,
                    bool record_latencies = false);

/// Timing of one workload query against one catalog.
struct QueryTiming {
  double selectivity = 0.0;
  double avg_ms = 0.0;       // Measured wall time of the scan.
  double modeled_cost = 0.0; // Bytes + union overhead (CostModel).
  uint64_t partitions_scanned = 0;
  uint64_t partitions_total = 0;
};

/// Executes each query `repetitions` times and averages the wall time.
std::vector<QueryTiming> TimeQueries(const PartitionCatalog& catalog,
                                     const std::vector<GeneratedQuery>& queries,
                                     int repetitions, const CostModel& model);

/// One series of a selectivity plot: per-bin average of a metric.
struct SelectivitySeries {
  std::string label;
  std::vector<QueryTiming> timings;
};

/// Prints a table with one row per selectivity bin (width 1/bins) and one
/// column pair (measured ms, modeled cost) per series — the shape of the
/// paper's Figures 5 and 6.
void PrintSelectivityTable(const std::vector<SelectivitySeries>& series,
                           size_t bins);

/// Prints a one-line header for a bench section.
void PrintHeader(const std::string& title);

/// Writes the shared host/build metadata object into an open BENCH_*.json
/// emitter, as a `"host": {...},` member (trailing comma included):
/// hardware core count, build type and compiler flags baked in at
/// configure time, and every CINDERELLA_* environment variable that was
/// set when the bench ran. Trajectory readers need all three to compare
/// numbers across machines and configurations.
void WriteHostMetadata(std::FILE* json);

}  // namespace bench
}  // namespace cinderella

#endif  // CINDERELLA_BENCH_BENCH_COMMON_H_
