// Disk-based deployment scenario (Section II: "In traditional disk-based
// systems, pages may represent a partition granularity where solving the
// online partitioning problem can help to increase the query efficiency").
//
// The DBpedia data set is laid out in a file-backed slotted-page store
// twice: partitioned by Cinderella (each partition = one page chain) and
// in arrival order. The selective workload then runs against both; the
// metric is physical pages fetched — what pruning saves a disk-based
// system. A small buffer pool shows the cache-hit side effect of
// clustering: queries touching one partition re-touch few pages.
//
// Env knobs: CINDERELLA_ENTITIES (default 20000), CINDERELLA_SEED.

#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "common/env.h"
#include "common/logging.h"
#include "common/table_printer.h"
#include "core/cinderella.h"
#include "pagestore/buffer_pool.h"
#include "pagestore/paged_store.h"
#include "pagestore/pager.h"
#include "workload/dbpedia_generator.h"
#include "workload/query_workload.h"

namespace cinderella {
namespace {

struct Layout {
  std::unique_ptr<Pager> pager;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<PagedStore> store;
};

Layout MakeLayout(const std::string& path, size_t pool_frames) {
  Layout layout;
  auto pager = Pager::Open(path, 8192, /*truncate=*/true);
  CINDERELLA_CHECK(pager.ok());
  layout.pager = std::move(pager).value();
  layout.pool =
      std::make_unique<BufferPool>(layout.pager.get(), pool_frames);
  layout.store =
      std::make_unique<PagedStore>(layout.pager.get(), layout.pool.get());
  return layout;
}

int Main() {
  DbpediaConfig config;
  config.num_entities =
      static_cast<size_t>(Int64FromEnv("CINDERELLA_ENTITIES", 20000));
  config.seed = static_cast<uint64_t>(Int64FromEnv("CINDERELLA_SEED", 42));

  AttributeDictionary dictionary;
  DbpediaGenerator generator(config, &dictionary);
  const auto rows = generator.Generate();
  const auto workload =
      GenerateQueryWorkload(rows, config.num_attributes, QueryWorkloadConfig{});
  std::printf("data set: %zu entities; %zu workload queries; 8 KiB pages\n",
              rows.size(), workload.size());

  // Cinderella layout: one page chain per partition.
  CinderellaConfig cc;
  cc.weight = 0.2;
  cc.max_size = 500;
  auto cinderella = std::move(Cinderella::Create(cc)).value();
  bench::LoadRows(*cinderella, bench::CopyRows(rows));

  Layout partitioned = MakeLayout("/tmp/cinderella_partitioned.db", 64);
  cinderella->catalog().ForEachPartition([&](const Partition& partition) {
    CINDERELLA_CHECK(partitioned.store->AddPartition(partition).ok());
  });

  // Arrival-order layout: one chain holding everything.
  Layout arrival = MakeLayout("/tmp/cinderella_arrival.db", 64);
  const size_t single = arrival.store->AddEmptyPartition();
  for (const Row& row : rows) {
    CINDERELLA_CHECK(arrival.store->Insert(single, row).ok());
  }
  CINDERELLA_CHECK(partitioned.pool->FlushAll().ok());
  CINDERELLA_CHECK(arrival.pool->FlushAll().ok());

  std::printf("partitioned layout: %zu partitions, %llu pages in file\n",
              partitioned.store->partition_count(),
              static_cast<unsigned long long>(
                  partitioned.pager->page_count() - 1));
  std::printf("arrival layout: 1 chain, %llu pages in file\n",
              static_cast<unsigned long long>(arrival.pager->page_count() - 1));

  bench::PrintHeader("Pages fetched per query (selectivity bands)");
  TablePrinter table({"selectivity", "queries", "partitioned pages/query",
                      "arrival pages/query", "saving"});
  for (double lo = 0.0; lo < 1.0; lo += 0.1) {
    const double hi = lo + 0.1;
    uint64_t pages_partitioned = 0;
    uint64_t pages_arrival = 0;
    size_t count = 0;
    for (const GeneratedQuery& q : workload) {
      if (q.selectivity < lo || q.selectivity >= hi) continue;
      auto a = partitioned.store->ExecuteQuery(q.query);
      auto b = arrival.store->ExecuteQuery(q.query);
      CINDERELLA_CHECK(a.ok() && b.ok());
      CINDERELLA_CHECK(a->rows_matched == b->rows_matched);
      pages_partitioned += a->pages_fetched;
      pages_arrival += b->pages_fetched;
      ++count;
    }
    if (count == 0) continue;
    char label[32];
    std::snprintf(label, sizeof(label), "%.1f-%.1f", lo, hi);
    const double pa = static_cast<double>(pages_partitioned) / count;
    const double pb = static_cast<double>(pages_arrival) / count;
    char saving[16];
    std::snprintf(saving, sizeof(saving), "%.1fx", pb / (pa > 0 ? pa : 1));
    table.AddRow({label, std::to_string(count),
                  TablePrinter::FormatDouble(pa, 1),
                  TablePrinter::FormatDouble(pb, 1), saving});
  }
  std::fputs(table.ToString().c_str(), stdout);

  std::printf(
      "\nbuffer pool after the workload: partitioned %llu hits / %llu "
      "misses; arrival %llu hits / %llu misses\n",
      static_cast<unsigned long long>(partitioned.pool->stats().hits),
      static_cast<unsigned long long>(partitioned.pool->stats().misses),
      static_cast<unsigned long long>(arrival.pool->stats().hits),
      static_cast<unsigned long long>(arrival.pool->stats().misses));
  return 0;
}

}  // namespace
}  // namespace cinderella

int main() { return cinderella::Main(); }
