// Disk-based deployment scenario (Section II: "In traditional disk-based
// systems, pages may represent a partition granularity where solving the
// online partitioning problem can help to increase the query efficiency").
//
// Part 1 — static layouts: the DBpedia data set is laid out in a
// file-backed slotted-page store twice: partitioned by Cinderella (each
// partition = one page chain) and in arrival order. The selective
// workload then runs against both; the metric is physical pages fetched —
// what pruning saves a disk-based system.
//
// Part 2 — out-of-core tiered engine: the same data set inside a *live*
// Cinderella engine whose idle tail is spilled to a TieredStore cold tier
// sized so the data set is >= 4x the buffer-pool budget. The selective
// slice of the workload runs through the hybrid executor (synopses prune
// cold partitions without I/O; only intersecting chains are fetched); the
// acceptance metric is the fraction of cold pages fetched per selective
// query (< 30%), with results identical to the all-hot scan.
//
// Emits BENCH_pagestore.json.
//
// Env knobs: CINDERELLA_BENCH_ENTITIES (default 20000, falls back to
// CINDERELLA_ENTITIES), CINDERELLA_SEED.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "common/env.h"
#include "common/logging.h"
#include "common/table_printer.h"
#include "core/cinderella.h"
#include "pagestore/buffer_pool.h"
#include "pagestore/paged_store.h"
#include "pagestore/pager.h"
#include "query/executor.h"
#include "storage/tiered_store.h"
#include "workload/dbpedia_generator.h"
#include "workload/query_workload.h"

namespace cinderella {
namespace {

struct Layout {
  std::unique_ptr<Pager> pager;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<PagedStore> store;
};

Layout MakeLayout(const std::string& path, size_t pool_frames) {
  Layout layout;
  auto pager = Pager::Open(path, 8192, /*truncate=*/true);
  CINDERELLA_CHECK(pager.ok());
  layout.pager = std::move(pager).value();
  layout.pool =
      std::make_unique<BufferPool>(layout.pager.get(), pool_frames);
  layout.store =
      std::make_unique<PagedStore>(layout.pager.get(), layout.pool.get());
  return layout;
}

int Main() {
  DbpediaConfig config;
  config.num_entities = static_cast<size_t>(Int64FromEnv(
      "CINDERELLA_BENCH_ENTITIES", Int64FromEnv("CINDERELLA_ENTITIES", 20000)));
  config.seed = static_cast<uint64_t>(Int64FromEnv("CINDERELLA_SEED", 42));

  AttributeDictionary dictionary;
  DbpediaGenerator generator(config, &dictionary);
  const auto rows = generator.Generate();
  const auto workload =
      GenerateQueryWorkload(rows, config.num_attributes, QueryWorkloadConfig{});
  std::printf("data set: %zu entities; %zu workload queries; 8 KiB pages\n",
              rows.size(), workload.size());

  // ---- Part 1: static page layouts, partitioned vs arrival order. ----

  CinderellaConfig cc;
  cc.weight = 0.2;
  cc.max_size = 500;
  auto cinderella = std::move(Cinderella::Create(cc)).value();
  bench::LoadRows(*cinderella, bench::CopyRows(rows));

  Layout partitioned = MakeLayout("/tmp/cinderella_partitioned.db", 64);
  cinderella->catalog().ForEachPartition([&](const Partition& partition) {
    CINDERELLA_CHECK(partitioned.store->AddPartition(partition).ok());
  });

  // Arrival-order layout: one chain holding everything.
  Layout arrival = MakeLayout("/tmp/cinderella_arrival.db", 64);
  const size_t single = arrival.store->AddEmptyPartition();
  for (const Row& row : rows) {
    CINDERELLA_CHECK(arrival.store->Insert(single, row).ok());
  }
  CINDERELLA_CHECK(partitioned.pool->FlushAll().ok());
  CINDERELLA_CHECK(arrival.pool->FlushAll().ok());

  std::printf("partitioned layout: %zu partitions, %llu pages in file\n",
              partitioned.store->partition_count(),
              static_cast<unsigned long long>(
                  partitioned.pager->page_count() - 1));
  std::printf("arrival layout: 1 chain, %llu pages in file\n",
              static_cast<unsigned long long>(arrival.pager->page_count() - 1));

  bench::PrintHeader("Pages fetched per query (selectivity bands)");
  TablePrinter table({"selectivity", "queries", "partitioned pages/query",
                      "arrival pages/query", "saving"});
  double overall_saving = 0.0;
  size_t saving_bands = 0;
  for (double lo = 0.0; lo < 1.0; lo += 0.1) {
    const double hi = lo + 0.1;
    uint64_t pages_partitioned = 0;
    uint64_t pages_arrival = 0;
    size_t count = 0;
    for (const GeneratedQuery& q : workload) {
      if (q.selectivity < lo || q.selectivity >= hi) continue;
      auto a = partitioned.store->ExecuteQuery(q.query);
      auto b = arrival.store->ExecuteQuery(q.query);
      CINDERELLA_CHECK(a.ok() && b.ok());
      CINDERELLA_CHECK(a->rows_matched == b->rows_matched);
      pages_partitioned += a->pages_fetched;
      pages_arrival += b->pages_fetched;
      ++count;
    }
    if (count == 0) continue;
    char label[32];
    std::snprintf(label, sizeof(label), "%.1f-%.1f", lo, hi);
    const double pa = static_cast<double>(pages_partitioned) / count;
    const double pb = static_cast<double>(pages_arrival) / count;
    char saving[16];
    std::snprintf(saving, sizeof(saving), "%.1fx", pb / (pa > 0 ? pa : 1));
    overall_saving += pb / (pa > 0 ? pa : 1);
    ++saving_bands;
    table.AddRow({label, std::to_string(count),
                  TablePrinter::FormatDouble(pa, 1),
                  TablePrinter::FormatDouble(pb, 1), saving});
  }
  std::fputs(table.ToString().c_str(), stdout);

  std::printf(
      "\nbuffer pool after the workload: partitioned %llu hits / %llu "
      "misses; arrival %llu hits / %llu misses\n",
      static_cast<unsigned long long>(partitioned.pool->stats().hits),
      static_cast<unsigned long long>(partitioned.pool->stats().misses),
      static_cast<unsigned long long>(arrival.pool->stats().hits),
      static_cast<unsigned long long>(arrival.pool->stats().misses));

  // ---- Part 2: out-of-core tiered engine, hybrid pruned scans. ----

  bench::PrintHeader("Out-of-core cold tier (live engine, hybrid scans)");

  // The selective slice: the most selective quartile of the workload (at
  // most selectivity 0.1 when the workload offers it).
  std::vector<const GeneratedQuery*> slice;
  for (const GeneratedQuery& q : workload) {
    if (q.selectivity <= 0.1) slice.push_back(&q);
  }
  if (slice.empty()) {
    std::vector<const GeneratedQuery*> sorted;
    for (const GeneratedQuery& q : workload) sorted.push_back(&q);
    std::sort(sorted.begin(), sorted.end(),
              [](const GeneratedQuery* a, const GeneratedQuery* b) {
                return a->selectivity < b->selectivity;
              });
    sorted.resize(std::max<size_t>(1, sorted.size() / 4));
    slice = std::move(sorted);
  }

  // All-hot reference results for the slice.
  QueryExecutor executor(cinderella->catalog(), 1);
  std::vector<uint64_t> hot_matches;
  hot_matches.reserve(slice.size());
  for (const GeneratedQuery* q : slice) {
    hot_matches.push_back(executor.Execute(q->query).metrics.rows_matched);
  }

  uint64_t dataset_bytes = 0;
  cinderella->catalog().ForEachPartition([&](const Partition& partition) {
    dataset_bytes += partition.Size(SizeMeasure::kByteSize);
  });

  // Size the pool so the data set is >= 4x the buffer-pool budget (floor
  // of 2 frames keeps the smoke run honest at tiny scales).
  TieredStoreOptions tier_options;
  tier_options.path = "/tmp/cinderella_cold_tier.pages";
  tier_options.page_size = 8192;
  tier_options.pool_frames = std::max<size_t>(
      2, static_cast<size_t>(dataset_bytes / (tier_options.page_size * 16)));
  tier_options.budget_bytes = 1;  // Keep FromEnv from re-resolving to 0=off.
  tier_options.min_idle = 1;
  const uint64_t pool_budget_bytes =
      static_cast<uint64_t>(tier_options.pool_frames) * tier_options.page_size;
  auto tier = std::move(TieredStore::Open(tier_options)).value();
  cinderella->set_cold_tier(tier.get());

  // Spill everything idle down to one pool budget of hot bytes.
  TierController controller(
      cinderella.get(),
      TierControllerOptions{pool_budget_bytes, /*min_idle=*/0});
  const size_t spilled = std::move(controller.EvaluateAndSpill()).value();
  const TieredStoreStats cold_stats = tier->stats();
  std::printf(
      "data set %.2f MiB vs pool budget %.2f MiB (%.1fx); spilled %zu "
      "partitions -> %llu cold pages; hot tier %.2f MiB\n",
      dataset_bytes / 1048576.0, pool_budget_bytes / 1048576.0,
      static_cast<double>(dataset_bytes) /
          static_cast<double>(pool_budget_bytes),
      spilled, static_cast<unsigned long long>(cold_stats.cold_pages),
      controller.HotBytes() / 1048576.0);
  CINDERELLA_CHECK(dataset_bytes >= 4 * pool_budget_bytes);

  // The selective slice through the hybrid executor: per query, the cold
  // pages fetched (buffer-pool traffic delta) over the cold pages in the
  // tier. Pruned cold partitions cost zero fetches.
  bool results_identical = true;
  uint64_t fetched_total = 0;
  double fraction_sum = 0.0;
  for (size_t i = 0; i < slice.size(); ++i) {
    const TieredStoreStats before = tier->stats();
    const QueryResult result = executor.Execute(slice[i]->query);
    const TieredStoreStats after = tier->stats();
    if (result.metrics.rows_matched != hot_matches[i]) {
      results_identical = false;
    }
    const uint64_t fetched =
        (after.pool.hits + after.pool.misses) -
        (before.pool.hits + before.pool.misses);
    fetched_total += fetched;
    fraction_sum += cold_stats.cold_pages > 0
                        ? static_cast<double>(fetched) /
                              static_cast<double>(cold_stats.cold_pages)
                        : 0.0;
  }
  const double avg_fraction =
      slice.empty() ? 0.0 : fraction_sum / static_cast<double>(slice.size());
  const TieredStoreStats final_stats = tier->stats();
  const uint64_t pool_touches = final_stats.pool.hits + final_stats.pool.misses;
  const double hit_rate =
      pool_touches > 0
          ? static_cast<double>(final_stats.pool.hits) /
                static_cast<double>(pool_touches)
          : 0.0;
  std::printf(
      "selective slice: %zu queries; avg %.1f%% of cold pages fetched per "
      "query (target < 30%%); results identical to all-hot: %s; buffer "
      "pool %.1f%% hit rate\n",
      slice.size(), avg_fraction * 100.0, results_identical ? "yes" : "NO",
      hit_rate * 100.0);
  const bool under_target = avg_fraction < 0.30;
  if (!under_target) {
    std::printf("WARNING: cold-page fetch fraction above the 30%% target\n");
  }

  // ---- Trajectory point. ----
  std::FILE* json = std::fopen("BENCH_pagestore.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_pagestore.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"pagestore_pruning\",\n");
  std::fprintf(json, "  \"entities\": %zu,\n  \"workload_queries\": %zu,\n",
               rows.size(), workload.size());
  bench::WriteHostMetadata(json);
  std::fprintf(json,
               "  \"static_layouts\": {\"partitions\": %zu, "
               "\"partitioned_pages\": %llu, \"arrival_pages\": %llu, "
               "\"avg_page_saving\": %.2f},\n",
               partitioned.store->partition_count(),
               static_cast<unsigned long long>(
                   partitioned.pager->page_count() - 1),
               static_cast<unsigned long long>(arrival.pager->page_count() - 1),
               saving_bands > 0 ? overall_saving / saving_bands : 0.0);
  std::fprintf(json,
               "  \"tiered\": {\"dataset_bytes\": %llu, "
               "\"pool_budget_bytes\": %llu, \"budget_ratio\": %.2f, "
               "\"partitions_spilled\": %zu, \"cold_pages\": %llu, "
               "\"selective_queries\": %zu, \"pages_fetched\": %llu, "
               "\"avg_cold_page_fraction\": %.4f, \"under_30pct\": %s, "
               "\"pool_hit_rate\": %.4f},\n",
               static_cast<unsigned long long>(dataset_bytes),
               static_cast<unsigned long long>(pool_budget_bytes),
               static_cast<double>(dataset_bytes) /
                   static_cast<double>(pool_budget_bytes),
               spilled, static_cast<unsigned long long>(cold_stats.cold_pages),
               slice.size(), static_cast<unsigned long long>(fetched_total),
               avg_fraction, under_target ? "true" : "false", hit_rate);
  std::fprintf(json, "  \"results_identical\": %s\n}\n",
               results_identical ? "true" : "false");
  std::fclose(json);
  std::printf("\nwrote BENCH_pagestore.json\n");
  return results_identical ? 0 : 1;
}

}  // namespace
}  // namespace cinderella

int main() { return cinderella::Main(); }
