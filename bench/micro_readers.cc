// Microbench for the MVCC read engine (src/mvcc): reader throughput and
// latency with and without a concurrent ingest writer, ConcurrentTable
// (shared_mutex read path) vs VersionedTable (epoch-pinned snapshots).
//
// The writer is *paced* to a fixed rows/second budget rather than running
// flat out: on a single-core host an unpaced writer and the readers would
// simply split the CPU and the comparison would measure scheduling, not
// lock behaviour. With a paced writer both tables face the same mutation
// stream; the difference that remains is how long readers stall behind
// the writer's exclusive lock (ConcurrentTable) versus not at all
// (VersionedTable).
//
// Also re-checks the placement identity invariant end to end: a table
// loaded through the VersionedTable facade (batched engine, per-window
// publication) must group entities bit-identically to bare serial
// inserts.
//
// Emits BENCH_readers.json in the working directory plus a table on
// stdout.
//
// Two caveats worth knowing before reading the numbers:
//  - The writer's rows clone the attribute sets of resident entities.
//    Out-of-distribution rows would spawn singleton partitions and make
//    every query slower in the 1-writer configs — the retention ratio
//    would then measure catalog growth, not reader interference.
//  - At table sizes well past the last-level cache, COW publication
//    slowly fragments the snapshot's memory (replaced versions scatter
//    through the heap), and scan-bound readers lose locality. The
//    default size keeps the working set cache-resident so the ratio
//    isolates lock behaviour; raise CINDERELLA_BENCH_ENTITIES to see
//    the fragmentation regime.
//
// Knobs: CINDERELLA_BENCH_ENTITIES (default 8000),
//        CINDERELLA_BENCH_READERS (default 2),
//        CINDERELLA_BENCH_DURATION_MS (default 1500),
//        CINDERELLA_BENCH_WRITE_RATE (default 150 rows/s),
//        CINDERELLA_BENCH_MAX_SIZE (default 50).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/env.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/cinderella.h"
#include "core/concurrent_table.h"
#include "ingest/batch_inserter.h"
#include "mvcc/partition_version.h"
#include "mvcc/versioned_table.h"
#include "query/executor.h"
#include "query/query.h"
#include "workload/dbpedia_generator.h"

namespace cinderella {
namespace {

/// Order-insensitive fingerprint of which entities share partitions.
uint64_t GroupingFingerprint(const Cinderella& c) {
  uint64_t fingerprint = 0;
  c.catalog().ForEachPartition([&](const Partition& partition) {
    uint64_t member_hash = 0;
    for (const Row& row : partition.segment().rows()) {
      member_hash += row.id() * 0x9e3779b97f4a7c15ULL + 1;
    }
    fingerprint ^= member_hash * 0xff51afd7ed558ccdULL;
  });
  return fingerprint;
}

/// Steady-state tail rows: fresh entities whose attribute sets clone
/// existing rows', so they merge into the established partitioning
/// instead of spawning singleton partitions. Keeps the 0-writer and
/// 1-writer configs querying near-identical catalogs — the retention
/// ratio then measures reader interference, not table growth.
std::vector<Row> MakeSteadyTail(size_t count, const std::vector<Row>& base,
                                uint64_t seed) {
  Rng rng(seed);
  std::vector<Row> tail;
  tail.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Row row = base[rng.Uniform(base.size())];
    row.set_id(static_cast<EntityId>(20000000 + i));
    tail.push_back(std::move(row));
  }
  return tail;
}

struct ReaderPoint {
  std::string table;  // "concurrent" or "versioned"
  int writers = 0;
  double queries_per_second = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double writer_rows_per_second = 0.0;
};

double Percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t index = static_cast<size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

/// Runs `readers` query threads for `duration_s` against `run_query`,
/// optionally alongside one paced writer (`write_row` consumes `tail`
/// rows at ~`write_rate` rows/s in bursts of 64). Fills `point`.
template <typename QueryFn, typename WriteFn>
void RunConfig(int readers, double duration_s, double write_rate,
               const std::vector<Row>& tail, bool with_writer,
               QueryFn run_query, WriteFn write_row, ReaderPoint* point) {
  std::atomic<bool> stop{false};
  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(readers));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(readers));
  for (int r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      std::vector<double>& local = latencies[static_cast<size_t>(r)];
      local.reserve(1 << 16);
      while (!stop.load(std::memory_order_relaxed)) {
        WallTimer timer;
        run_query();
        local.push_back(timer.ElapsedSeconds() * 1e6);
      }
    });
  }

  // Both configs run the same pacing loop on this thread — the 0-writer
  // config just skips the table mutation. Identical thread count and
  // sleep/wake pattern keep the scheduler shape constant, so the delta
  // between the configs is the table's interference, not the harness's.
  uint64_t written = 0;
  size_t cursor = 0;
  WallTimer wall;
  while (wall.ElapsedSeconds() < duration_s) {
    if (with_writer) {
      for (int i = 0; i < 64 && cursor < tail.size(); ++i) {
        write_row(tail[cursor++]);
      }
    }
    written += 64;
    // Pace: sleep off any lead over the target rate.
    const double target_elapsed =
        static_cast<double>(written) / write_rate;
    const double lead = target_elapsed - wall.ElapsedSeconds();
    if (lead > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(lead));
    }
  }
  const double elapsed = wall.ElapsedSeconds();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& thread : threads) thread.join();

  std::vector<double> all;
  for (const auto& local : latencies) {
    all.insert(all.end(), local.begin(), local.end());
  }
  std::sort(all.begin(), all.end());
  point->writers = with_writer ? 1 : 0;
  point->queries_per_second = static_cast<double>(all.size()) / elapsed;
  point->p50_us = Percentile(all, 0.50);
  point->p95_us = Percentile(all, 0.95);
  point->writer_rows_per_second =
      with_writer ? static_cast<double>(cursor) / elapsed : 0.0;
}

}  // namespace
}  // namespace cinderella

int main() {
  using namespace cinderella;
  using bench::PrintHeader;

  const size_t entities = static_cast<size_t>(
      Int64FromEnv("CINDERELLA_BENCH_ENTITIES", 8000));
  const int readers = static_cast<int>(
      Int64FromEnv("CINDERELLA_BENCH_READERS", 2));
  const double duration_s = static_cast<double>(Int64FromEnv(
      "CINDERELLA_BENCH_DURATION_MS", 1500)) / 1e3;
  const double write_rate = static_cast<double>(
      Int64FromEnv("CINDERELLA_BENCH_WRITE_RATE", 150));
  const uint64_t max_size = static_cast<uint64_t>(
      Int64FromEnv("CINDERELLA_BENCH_MAX_SIZE", 50));

  DbpediaConfig dbconfig;
  dbconfig.num_entities = entities;
  AttributeDictionary dictionary;
  DbpediaGenerator generator(dbconfig, &dictionary);
  const std::vector<Row> base_rows = generator.Generate();

  CinderellaConfig config;
  config.weight = 0.3;
  config.max_size = max_size;

  const Query query(Synopsis{0, 3});
  const std::vector<Row> steady_tail = MakeSteadyTail(
      static_cast<size_t>(write_rate * duration_s) * 2 + 256, base_rows,
      99);
  std::vector<ReaderPoint> points;

  // ---- ConcurrentTable: shared-lock readers. ----
  PrintHeader("readers: ConcurrentTable (shared_mutex)");
  for (const bool with_writer : {false, true}) {
    auto partitioner = std::move(Cinderella::Create(config)).value();
    {
      std::vector<Row> base = base_rows;
      if (!partitioner->InsertBatch(std::move(base)).ok()) return 1;
    }
    ConcurrentTable table(std::move(partitioner));

    ReaderPoint point;
    point.table = "concurrent";
    RunConfig(
        readers, duration_s, write_rate, steady_tail, with_writer,
        [&] {
          table.WithReadLock([&](const PartitionCatalog& catalog) {
            QueryExecutor executor(catalog);
            return executor.Execute(query).metrics.rows_matched;
          });
        },
        [&](Row row) {
          if (!table.Insert(std::move(row)).ok()) std::abort();
        },
        &point);
    points.push_back(point);
    std::printf("  %d writer: %8.0f queries/s  p50 %7.1f us  p95 %7.1f us"
                "  (writer %5.0f rows/s)\n",
                point.writers, point.queries_per_second, point.p50_us,
                point.p95_us, point.writer_rows_per_second);
  }

  // ---- VersionedTable: epoch-pinned snapshot readers. ----
  PrintHeader("readers: VersionedTable (MVCC snapshots)");
  for (const bool with_writer : {false, true}) {
    auto partitioner = std::move(Cinderella::Create(config)).value();
    {
      std::vector<Row> base = base_rows;
      if (!partitioner->InsertBatch(std::move(base)).ok()) return 1;
    }
    VersionedTable table(std::move(partitioner));

    // The versioned writer feeds the batched engine in window-sized
    // bursts so each burst commits (and publishes) as one window.
    std::vector<Row> burst;
    burst.reserve(128);
    ReaderPoint point;
    point.table = "versioned";
    RunConfig(
        readers, duration_s, write_rate, steady_tail, with_writer,
        [&] {
          const VersionedTable::Snapshot snapshot = table.snapshot();
          QueryExecutor executor(snapshot.view());
          (void)executor.Execute(query).metrics.rows_matched;
        },
        [&](Row row) {
          burst.push_back(std::move(row));
          if (burst.size() == 128) {
            if (!table.InsertBatch(std::move(burst)).ok()) std::abort();
            burst.clear();
          }
        },
        &point);
    points.push_back(point);
    std::printf("  %d writer: %8.0f queries/s  p50 %7.1f us  p95 %7.1f us"
                "  (writer %5.0f rows/s)\n",
                point.writers, point.queries_per_second, point.p50_us,
                point.p95_us, point.writer_rows_per_second);
  }

  // Acceptance watch: snapshot readers should barely notice the writer.
  const double versioned_ratio =
      points[3].queries_per_second / points[2].queries_per_second;
  const double concurrent_ratio =
      points[1].queries_per_second / points[0].queries_per_second;
  std::printf("\n  concurrent-reader retention: ConcurrentTable %.2f, "
              "VersionedTable %.2f (target >= 0.75)\n",
              concurrent_ratio, versioned_ratio);

  // ---- Placement identity: facade-loaded vs bare serial. ----
  PrintHeader("identity: VersionedTable ingest vs serial inserts");
  const std::vector<Row> tail = MakeSteadyTail(2000, base_rows, 7);
  uint64_t serial_fingerprint = 0;
  {
    auto partitioner = std::move(Cinderella::Create(config)).value();
    std::vector<Row> rows = base_rows;
    if (!partitioner->InsertBatch(std::move(rows)).ok()) return 1;
    for (const Row& row : tail) {
      if (!partitioner->Insert(row).ok()) return 1;
    }
    serial_fingerprint = GroupingFingerprint(*partitioner);
  }
  bool identical = false;
  {
    auto partitioner = std::move(Cinderella::Create(config)).value();
    Cinderella* raw = partitioner.get();
    std::vector<Row> rows = base_rows;
    if (!raw->InsertBatch(std::move(rows)).ok()) return 1;
    VersionedTable table(std::move(partitioner));
    std::vector<Row> pending = tail;
    if (!table.InsertBatch(std::move(pending)).ok()) return 1;
    identical = GroupingFingerprint(table.partitioner()) ==
                serial_fingerprint;
  }
  std::printf("  %s\n", identical ? "identical" : "MISMATCH");

  // ---- Trajectory point. ----
  FILE* json = std::fopen("BENCH_readers.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_readers.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"micro_readers\",\n");
  std::fprintf(json, "  \"entities\": %zu,\n", entities);
  std::fprintf(json, "  \"readers\": %d,\n", readers);
  std::fprintf(json, "  \"write_rate_target\": %.0f,\n", write_rate);
  // Reader/writer interference on a single-CPU host includes plain CPU
  // sharing; the host metadata's core count tells lock stalls from
  // scheduling.
  bench::WriteHostMetadata(json);
  std::fprintf(json, "  \"points\": [");
  for (size_t i = 0; i < points.size(); ++i) {
    const ReaderPoint& p = points[i];
    std::fprintf(json,
                 "%s\n    {\"table\": \"%s\", \"writers\": %d, "
                 "\"queries_per_second\": %.1f, \"p50_us\": %.1f, "
                 "\"p95_us\": %.1f, \"writer_rows_per_second\": %.1f}",
                 i == 0 ? "" : ",", p.table.c_str(), p.writers,
                 p.queries_per_second, p.p50_us, p.p95_us,
                 p.writer_rows_per_second);
  }
  std::fprintf(json, "\n  ],\n");
  std::fprintf(json, "  \"concurrent_reader_retention\": {"
               "\"concurrent\": %.3f, \"versioned\": %.3f},\n",
               concurrent_ratio, versioned_ratio);
  std::fprintf(json, "  \"placement_identical\": %s\n}\n",
               identical ? "true" : "false");
  std::fclose(json);
  std::printf("\nwrote BENCH_readers.json\n");
  return 0;
}
