// Microbench for the arena-pooled snapshot storage (src/mvcc +
// common/arena.h): snapshot scan throughput against the live catalog's
// heap-fragmented row layout, and publication latency cold (empty pools,
// every block malloc'ed) versus pooled (steady state, zero allocator
// calls).
//
// Method:
//  1. Load a DBpedia-shaped table through the batched engine, then churn
//     it with delete/reinsert rounds. Churn scatters the live rows' cell
//     vectors across the heap — the fragmented layout a long-lived table
//     converges to — while a freshly published snapshot stays packed in
//     its arena regardless.
//  2. Publication: one cold full publication (fresh facade, empty pools)
//     timed against steady-state full republications; the steady window
//     asserts the zero-malloc claim by watching the pool's lifetime block
//     counter stay flat.
//  3. Scan: identical full-table and pruned queries against the live
//     catalog and a pinned snapshot, serial executor both, GB/s from the
//     deterministic bytes_read counter. Every counter and the matched-row
//     order must be bit-identical between the two sources.
//  4. Placement identity: facade-loaded vs bare serial inserts.
//
// Emits BENCH_scan.json in the working directory plus tables on stdout.
//
// Knobs: CINDERELLA_BENCH_ENTITIES (default 60000; push past your LLC to
//          see the locality gap, e.g. 200000),
//        CINDERELLA_BENCH_CHURN_ROUNDS (default 6),
//        CINDERELLA_BENCH_SCAN_REPS (default 12),
//        CINDERELLA_BENCH_MAX_SIZE (default 50),
//        CINDERELLA_BENCH_IDENTITY_ENTITIES (default 6000).

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "common/env.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/cinderella.h"
#include "ingest/batch_inserter.h"
#include "mvcc/partition_version.h"
#include "mvcc/versioned_table.h"
#include "query/executor.h"
#include "query/predicate.h"
#include "query/query.h"
#include "workload/dbpedia_generator.h"

namespace cinderella {
namespace {

/// Order-insensitive fingerprint of which entities share partitions.
uint64_t GroupingFingerprint(const Cinderella& c) {
  uint64_t fingerprint = 0;
  c.catalog().ForEachPartition([&](const Partition& partition) {
    uint64_t member_hash = 0;
    for (const Row& row : partition.segment().rows()) {
      member_hash += row.id() * 0x9e3779b97f4a7c15ULL + 1;
    }
    fingerprint ^= member_hash * 0xff51afd7ed558ccdULL;
  });
  return fingerprint;
}

struct ScanPoint {
  std::string source;  // "live" or "snapshot"
  std::string query;   // "full" or "pruned"
  double gbps = 0.0;
  double avg_ms = 0.0;
  uint64_t bytes_read = 0;
  uint64_t rows_matched = 0;
};

/// Times `reps` executions of `run` (which returns the QueryResult of one
/// pass) and converts the deterministic bytes_read counter into GB/s.
template <typename Fn>
ScanPoint TimeScan(const char* source, const char* query, int reps, Fn run) {
  ScanPoint point;
  point.source = source;
  point.query = query;
  QueryResult last;
  WallTimer timer;
  for (int r = 0; r < reps; ++r) last = run();
  const double elapsed = timer.ElapsedSeconds();
  point.avg_ms = elapsed * 1e3 / reps;
  point.bytes_read = last.metrics.bytes_read;
  point.rows_matched = last.metrics.rows_matched;
  point.gbps = static_cast<double>(last.metrics.bytes_read) * reps /
               elapsed / 1e9;
  return point;
}

bool MetricsEqual(const ScanMetrics& a, const ScanMetrics& b) {
  return a.partitions_total == b.partitions_total &&
         a.partitions_scanned == b.partitions_scanned &&
         a.partitions_pruned == b.partitions_pruned &&
         a.rows_scanned == b.rows_scanned &&
         a.rows_matched == b.rows_matched && a.cells_read == b.cells_read &&
         a.bytes_read == b.bytes_read;
}

}  // namespace
}  // namespace cinderella

int main() {
  using namespace cinderella;
  using bench::PrintHeader;

  const size_t entities = static_cast<size_t>(
      Int64FromEnv("CINDERELLA_BENCH_ENTITIES", 60000));
  const int churn_rounds = static_cast<int>(
      Int64FromEnv("CINDERELLA_BENCH_CHURN_ROUNDS", 6));
  const int scan_reps = static_cast<int>(
      Int64FromEnv("CINDERELLA_BENCH_SCAN_REPS", 12));
  const uint64_t max_size = static_cast<uint64_t>(
      Int64FromEnv("CINDERELLA_BENCH_MAX_SIZE", 50));
  const size_t identity_entities = static_cast<size_t>(
      Int64FromEnv("CINDERELLA_BENCH_IDENTITY_ENTITIES", 6000));

  DbpediaConfig dbconfig;
  dbconfig.num_entities = entities;
  AttributeDictionary dictionary;
  DbpediaGenerator generator(dbconfig, &dictionary);
  const std::vector<Row> base_rows = generator.Generate();

  CinderellaConfig config;
  config.weight = 0.3;
  config.max_size = max_size;

  // ---- Load + churn (fragments the live heap layout). ----
  PrintHeader("scan: load and churn");
  auto partitioner = std::move(Cinderella::Create(config)).value();
  {
    auto engine = AttachBatchInserter(partitioner.get());
    std::vector<Row> rows = base_rows;
    if (!partitioner->InsertBatch(std::move(rows)).ok()) return 1;

    // Delete/reinsert random slices: the reinserted rows' cell vectors
    // land wherever the allocator has room now, interleaved with every
    // other allocation since load — the live scan below chases them.
    Rng rng(4243);
    const size_t slice = entities / 8 + 1;
    for (int round = 0; round < churn_rounds; ++round) {
      std::vector<size_t> picks;
      picks.reserve(slice);
      for (size_t i = 0; i < slice; ++i) {
        picks.push_back(rng.Uniform(base_rows.size()));
      }
      std::vector<Row> reinsert;
      reinsert.reserve(picks.size());
      for (size_t pick : picks) {
        const EntityId id = base_rows[pick].id();
        if (!partitioner->Delete(id).ok()) continue;  // Already in flight.
        reinsert.push_back(base_rows[pick]);
      }
      if (!partitioner->InsertBatch(std::move(reinsert)).ok()) return 1;
    }
    std::printf("  %zu entities, %d churn rounds, %zu partitions\n",
                entities, churn_rounds,
                partitioner->catalog().partition_count());
  }

  // ---- Publication latency: cold vs pooled. ----
  PrintHeader("publication: cold vs pooled (full view rebuilds)");
  // The owning constructor publishes the initial full view against empty
  // pools: every arena block, version shell and view object is a fresh
  // allocation. This is the cold number.
  WallTimer cold_timer;
  VersionedTable table(std::move(partitioner));
  const double cold_ms = cold_timer.ElapsedSeconds() * 1e3;
  const uint64_t cold_blocks = table.memory_stats().arenas.blocks_allocated;

  // Warm the pools, then measure the steady state: every republication
  // reuses a pooled arena (blocks retained across Reset), pooled shells
  // and a pooled view — the lifetime block counter must not move.
  constexpr int kWarmups = 4;
  constexpr int kSteady = 16;
  for (int i = 0; i < kWarmups; ++i) table.RefreshView();
  const VersionedTable::MemoryStats warm = table.memory_stats();
  WallTimer steady_timer;
  for (int i = 0; i < kSteady; ++i) table.RefreshView();
  const double pooled_ms = steady_timer.ElapsedSeconds() * 1e3 / kSteady;
  const VersionedTable::MemoryStats steady = table.memory_stats();
  const uint64_t steady_block_mallocs =
      steady.arenas.blocks_allocated - warm.arenas.blocks_allocated;
  const uint64_t steady_arena_creations =
      steady.arenas.arenas_created - warm.arenas.arenas_created;
  const uint64_t steady_shell_creations =
      steady.version_shells.created - warm.version_shells.created;

  std::printf("  cold  %8.2f ms  (%llu blocks malloc'ed)\n", cold_ms,
              static_cast<unsigned long long>(cold_blocks));
  std::printf("  pooled%8.2f ms  (%llu blocks, %llu arenas, %llu shells "
              "malloc'ed across %d republications)\n",
              pooled_ms,
              static_cast<unsigned long long>(steady_block_mallocs),
              static_cast<unsigned long long>(steady_arena_creations),
              static_cast<unsigned long long>(steady_shell_creations),
              kSteady);

  // ---- Scan throughput: live (fragmented) vs snapshot (arena-packed). ----
  PrintHeader("scan: live catalog vs pinned snapshot");
  // The full scan must actually read cell data on every row (a match-all
  // predicate would only walk row headers and measure nothing but loop
  // overhead): a compound with no pruning synopsis forces a full scan
  // whose per-row evaluation binary-searches two attributes through the
  // cells — exactly where the packed layout's locality shows up.
  const PredicatePtr match_all = Or([] {
    std::vector<PredicatePtr> children;
    children.push_back(Compare(1, CompareOp::kGt, Value(int64_t{-1})));
    children.push_back(Not(IsNotNull(2)));
    return children;
  }());
  const Query pruned_query(Synopsis{0, 3});
  const VersionedTable::Snapshot snapshot = table.snapshot();
  QueryExecutor live(table.partitioner().catalog());
  QueryExecutor pinned(snapshot.view());

  std::vector<ScanPoint> scans;
  scans.push_back(TimeScan("live", "full", scan_reps, [&] {
    return live.ExecutePredicate(*match_all);
  }));
  scans.push_back(TimeScan("snapshot", "full", scan_reps, [&] {
    return pinned.ExecutePredicate(*match_all);
  }));
  scans.push_back(TimeScan("live", "pruned", scan_reps, [&] {
    return live.Execute(pruned_query);
  }));
  scans.push_back(TimeScan("snapshot", "pruned", scan_reps, [&] {
    return pinned.Execute(pruned_query);
  }));
  for (const ScanPoint& p : scans) {
    std::printf("  %-8s %-6s %8.3f GB/s  %8.2f ms/scan  (%llu rows)\n",
                p.source.c_str(), p.query.c_str(), p.gbps, p.avg_ms,
                static_cast<unsigned long long>(p.rows_matched));
  }
  const double full_speedup = scans[1].gbps / scans[0].gbps;
  const double pruned_speedup = scans[3].gbps / scans[2].gbps;
  std::printf("\n  snapshot/live speedup: full %.2fx, pruned %.2fx "
              "(target >= 1.30x full)\n",
              full_speedup, pruned_speedup);

  // ---- Result identity: every counter and the match order. ----
  const QueryResult live_full = live.ExecutePredicate(*match_all);
  const QueryResult snap_full = pinned.ExecutePredicate(*match_all);
  const QueryResult live_pruned = live.Execute(pruned_query);
  const QueryResult snap_pruned = pinned.Execute(pruned_query);
  std::vector<EntityId> live_matches;
  std::vector<EntityId> snap_matches;
  (void)live.ScanMatches(*match_all, [&](const RowView& row) {
    live_matches.push_back(row.id());
  });
  (void)pinned.ScanMatches(*match_all, [&](const RowView& row) {
    snap_matches.push_back(row.id());
  });
  const bool results_identical =
      MetricsEqual(live_full.metrics, snap_full.metrics) &&
      MetricsEqual(live_pruned.metrics, snap_pruned.metrics) &&
      live_full.cells_materialized == snap_full.cells_materialized &&
      live_pruned.cells_materialized == snap_pruned.cells_materialized &&
      live_matches == snap_matches;
  std::printf("  query results: %s\n",
              results_identical ? "identical" : "MISMATCH");

  // ---- Placement identity: facade-loaded vs bare serial inserts. ----
  PrintHeader("identity: facade ingest vs serial inserts");
  DbpediaConfig small_config;
  small_config.num_entities = identity_entities;
  AttributeDictionary small_dictionary;
  DbpediaGenerator small_generator(small_config, &small_dictionary);
  const std::vector<Row> small_rows = small_generator.Generate();
  uint64_t serial_fingerprint = 0;
  {
    auto serial = std::move(Cinderella::Create(config)).value();
    for (const Row& row : small_rows) {
      if (!serial->Insert(row).ok()) return 1;
    }
    serial_fingerprint = GroupingFingerprint(*serial);
  }
  bool placements_identical = false;
  {
    VersionedTable facade(std::move(Cinderella::Create(config)).value());
    std::vector<Row> rows = small_rows;
    if (!facade.InsertBatch(std::move(rows)).ok()) return 1;
    placements_identical =
        GroupingFingerprint(facade.partitioner()) == serial_fingerprint;
  }
  std::printf("  %s\n", placements_identical ? "identical" : "MISMATCH");

  // ---- Trajectory point. ----
  FILE* json = std::fopen("BENCH_scan.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_scan.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"micro_scan\",\n");
  std::fprintf(json, "  \"entities\": %zu,\n", entities);
  std::fprintf(json, "  \"churn_rounds\": %d,\n", churn_rounds);
  std::fprintf(json, "  \"max_size\": %llu,\n",
               static_cast<unsigned long long>(max_size));
  bench::WriteHostMetadata(json);
  std::fprintf(json,
               "  \"publication\": {\"cold_ms\": %.3f, \"pooled_ms\": %.3f, "
               "\"republications\": %d, \"steady_state_block_mallocs\": %llu, "
               "\"steady_state_arena_creations\": %llu, "
               "\"steady_state_shell_creations\": %llu, "
               "\"arenas_reused\": %llu, \"bytes_retained\": %zu},\n",
               cold_ms, pooled_ms, kSteady,
               static_cast<unsigned long long>(steady_block_mallocs),
               static_cast<unsigned long long>(steady_arena_creations),
               static_cast<unsigned long long>(steady_shell_creations),
               static_cast<unsigned long long>(steady.arenas.arenas_reused),
               steady.arenas.bytes_retained);
  std::fprintf(json, "  \"scans\": [");
  for (size_t i = 0; i < scans.size(); ++i) {
    const ScanPoint& p = scans[i];
    std::fprintf(json,
                 "%s\n    {\"source\": \"%s\", \"query\": \"%s\", "
                 "\"gbps\": %.4f, \"avg_ms\": %.3f, \"bytes_read\": %llu, "
                 "\"rows_matched\": %llu}",
                 i == 0 ? "" : ",", p.source.c_str(), p.query.c_str(),
                 p.gbps, p.avg_ms,
                 static_cast<unsigned long long>(p.bytes_read),
                 static_cast<unsigned long long>(p.rows_matched));
  }
  std::fprintf(json, "\n  ],\n");
  std::fprintf(json,
               "  \"snapshot_scan_speedup\": {\"full\": %.3f, "
               "\"pruned\": %.3f},\n",
               full_speedup, pruned_speedup);
  std::fprintf(json, "  \"results_identical\": %s,\n",
               results_identical ? "true" : "false");
  std::fprintf(json, "  \"placement_identical\": %s\n}\n",
               placements_identical ? "true" : "false");
  std::fclose(json);
  std::printf("\nwrote BENCH_scan.json\n");
  return (results_identical && placements_identical &&
          steady_block_mallocs == 0)
             ? 0
             : 1;
}
