// Reproduces Table I: query execution time on regularly structured data
// (TPC-H). Four scenarios: standard TPC-H (ground-truth per-table
// partitioning, no union overhead) and Cinderella with partition size
// limits 500 / 2000 / 10000.
//
// Paper result (SF 0.5): standard 24.23s (100%); Cinderella 108.87% /
// 105.69% / 101.27% for B = 500 / 2000 / 10000 — "Cinderella finds only
// partitions which exactly fit the TPC-H schema in any of the three
// settings", and the overhead (the extra union operations) shrinks as B
// grows. We verify partition purity explicitly and report both measured
// scan time and the modeled cost including per-partition union overhead.
//
// Env knobs: CINDERELLA_TPCH_SF (default 0.02; paper: 0.5 — relative
// costs are SF-invariant since both bytes and partition counts scale
// linearly), CINDERELLA_SEED, CINDERELLA_QUERY_REPS.

#include <cstdio>
#include <memory>
#include <set>

#include "baseline/labeled_partitioner.h"
#include "bench/bench_common.h"
#include "common/env.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/cinderella.h"
#include "query/executor.h"
#include "workload/tpch/tpch_generator.h"
#include "workload/tpch/tpch_queries.h"

namespace cinderella {
namespace {

struct ScenarioResult {
  std::string name;
  size_t partitions = 0;
  double load_seconds = 0.0;
  double query_seconds = 0.0;
  double modeled_cost = 0.0;
  bool pure = true;  // Every partition holds rows of exactly one table.
};

bool CheckPurity(const PartitionCatalog& catalog) {
  bool pure = true;
  catalog.ForEachPartition([&](const Partition& partition) {
    std::set<TpchTable> tables;
    for (const Row& row : partition.segment().rows()) {
      tables.insert(TpchTableOfEntity(row.id()));
    }
    if (tables.size() > 1) pure = false;
  });
  return pure;
}

ScenarioResult RunScenario(Partitioner& partitioner, std::vector<Row> rows,
                           const std::vector<Query>& queries, int reps,
                           const CostModel& model, bool charge_overhead) {
  ScenarioResult result;
  result.name = partitioner.name();
  const auto load = bench::LoadRows(partitioner, std::move(rows));
  result.load_seconds = load.total_seconds;
  result.partitions = partitioner.catalog().partition_count();
  result.pure = CheckPurity(partitioner.catalog());

  QueryExecutor executor(partitioner.catalog());
  WallTimer timer;
  for (int r = 0; r < reps; ++r) {
    for (const Query& query : queries) {
      const QueryResult qr = executor.Execute(query);
      if (r == 0) {
        // The standard scenario scans native tables: no UNION-ALL rewrite,
        // so no per-partition overhead is charged.
        const CostModel effective =
            charge_overhead ? model
                            : CostModel{.per_partition_overhead_bytes = 0.0,
                                        .per_row_projection_bytes = 0.0};
        result.modeled_cost += qr.ModeledCost(effective);
      }
    }
  }
  result.query_seconds = timer.ElapsedSeconds() / reps;
  return result;
}

int Main() {
  TpchGeneratorConfig config;
  config.scale_factor = DoubleFromEnv("CINDERELLA_TPCH_SF", 0.02);
  config.seed = static_cast<uint64_t>(Int64FromEnv("CINDERELLA_SEED", 42));
  const int reps = static_cast<int>(Int64FromEnv("CINDERELLA_QUERY_REPS", 3));

  AttributeDictionary dictionary;
  TpchGenerator generator(config, &dictionary);
  const auto rows = generator.Generate();
  std::printf("TPC-H SF %.3f: %zu rows total (paper uses SF 0.5)\n",
              config.scale_factor, rows.size());

  std::vector<Query> queries;
  for (const auto& footprint : TpchQueryFootprints()) {
    queries.push_back(MakeTpchQuery(footprint, dictionary));
  }

  const CostModel model;
  std::vector<ScenarioResult> results;

  {
    LabeledPartitioner standard(
        [](const Row& row) { return static_cast<size_t>(row.id() >> 40); },
        "standard-tpch");
    results.push_back(RunScenario(standard, bench::CopyRows(rows), queries,
                                  reps, model, /*charge_overhead=*/false));
  }
  for (uint64_t max_size :
       {uint64_t{500}, uint64_t{2000}, uint64_t{10000}}) {
    CinderellaConfig cc;
    cc.weight = 0.5;
    cc.max_size = max_size;
    cc.use_synopsis_index = true;
    auto partitioner = std::move(Cinderella::Create(cc)).value();
    results.push_back(RunScenario(*partitioner, bench::CopyRows(rows), queries,
                                  reps, model, /*charge_overhead=*/true));
  }

  bench::PrintHeader("Table I: query execution time on regular data (TPC-H)");
  TablePrinter table({"scenario", "partitions", "pure", "load s",
                      "22-query time s", "relative", "modeled cost MB",
                      "relative cost"});
  const double base_time = results[0].query_seconds;
  const double base_cost = results[0].modeled_cost;
  for (const ScenarioResult& r : results) {
    char rel_time[16];
    std::snprintf(rel_time, sizeof(rel_time), "%.2f%%",
                  100.0 * r.query_seconds / base_time);
    char rel_cost[16];
    std::snprintf(rel_cost, sizeof(rel_cost), "%.2f%%",
                  100.0 * r.modeled_cost / base_cost);
    table.AddRow({r.name, std::to_string(r.partitions),
                  r.pure ? "yes" : "NO",
                  TablePrinter::FormatDouble(r.load_seconds, 2),
                  TablePrinter::FormatDouble(r.query_seconds, 3), rel_time,
                  TablePrinter::FormatDouble(r.modeled_cost / 1e6, 1),
                  rel_cost});
  }
  std::fputs(table.ToString().c_str(), stdout);
  std::printf(
      "\npaper (SF 0.5, PostgreSQL): 100%% / 108.87%% / 105.69%% / 101.27%%; "
      "all Cinderella partitions exactly fit the TPC-H schema.\n");
  return 0;
}

}  // namespace
}  // namespace cinderella

int main() { return cinderella::Main(); }
