// Microbench for the workload-driven background reorganizer (src/tuner):
// does the daemon measurably repair a damaged layout under live traffic,
// and what does it cost the foreground?
//
// Scenario: the paper's DBpedia-persons data set loaded at a tolerant
// weight (w = 0.6, the adversarial arrival-order setting from the
// ablation bench). Irregular overlapping schemas at a tolerant weight
// form mixed partitions, so the selective slice of the Section V.B
// workload scans mostly irrelevant rows. The workload tracker observes
// that traffic, the cost model plans split-hot drains of the worst
// partitions, and reinsertion into the mature catalog separates the
// mixed row populations — the paper's arrival-order repair, driven
// automatically by observed workload instead of a manual Reorganize.
//
// Three measurements, emitted to BENCH_tuner.json:
//  1. EFFICIENCY (Definition 1) and average query latency over the
//     tracked workload, before and after tuning ticks.
//  2. The same pair after the workload *shifts* to the other half of the
//     selective queries: the tracker decays toward the new traffic and
//     further ticks keep adapting.
//  3. Foreground ingest throughput with the daemon off vs running at a
//     tight interval (acceptance target: within ~10%). With no query
//     traffic the tracker carries no signal, so a correctly-gated cost
//     model plans nothing and the daemon costs only its planning passes.
//
// Rows are identity-checked across all tuning: every entity id present
// before must be present after, with tier-1 integrity intact.
//
// Knobs: CINDERELLA_BENCH_ENTITIES (default 4000),
//        CINDERELLA_BENCH_MAX_SIZE (default 250),
//        CINDERELLA_BENCH_TICKS (ticks per phase, default 16),
//        CINDERELLA_BENCH_REPS (latency reps per query, default 3),
//        CINDERELLA_SEED.

#include <cstdint>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "common/env.h"
#include "common/timer.h"
#include "core/cinderella.h"
#include "core/efficiency.h"
#include "mvcc/partition_version.h"
#include "mvcc/versioned_table.h"
#include "query/executor.h"
#include "query/query.h"
#include "tuner/reorganizer.h"
#include "tuner/workload_tracker.h"
#include "workload/dbpedia_generator.h"
#include "workload/query_workload.h"

namespace cinderella {
namespace {

/// Queries more selective than this form the tuner's target workload;
/// broad queries match most of what they scan and carry no repair signal.
constexpr double kMaxSelectivity = 0.15;

std::unique_ptr<Cinderella> MakePartitioner(uint64_t max_size) {
  CinderellaConfig config;
  config.weight = 0.6;  // Tolerant: arrival order forms mixed partitions.
  config.max_size = max_size;
  return std::move(Cinderella::Create(config)).value();
}

std::set<EntityId> ResidentEntities(const CatalogView& view) {
  std::set<EntityId> ids;
  view.ForEachPartition([&](const PartitionVersion& version) {
    version.ForEachRow([&](const RowView& row) { ids.insert(row.id()); });
  });
  return ids;
}

struct Measurement {
  double efficiency = 0.0;
  double avg_query_ms = 0.0;
  double avg_rows_scanned = 0.0;
  size_t partitions = 0;
};

/// Runs every workload query `reps` times against a fresh pinned
/// snapshot, feeding `tracker` (once per query per rep, like production
/// traffic), and reports Definition-1 efficiency of the snapshot for
/// that workload plus the measured scan cost.
Measurement Measure(VersionedTable& table, const std::vector<Query>& workload,
                    WorkloadTracker* tracker, int reps) {
  Measurement m;
  const VersionedTable::Snapshot snapshot = table.snapshot();
  std::vector<Synopsis> synopses;
  synopses.reserve(workload.size());
  for (const Query& query : workload) synopses.push_back(query.attributes());
  m.efficiency =
      ComputeEfficiency(snapshot.view(), synopses, SizeMeasure::kEntityCount)
          .efficiency;
  m.partitions = snapshot->partition_count();

  QueryExecutor executor(snapshot.view());
  if (tracker != nullptr) executor.set_observer(tracker);
  uint64_t rows_scanned = 0;
  uint64_t runs = 0;
  WallTimer timer;
  for (int rep = 0; rep < reps; ++rep) {
    for (const Query& query : workload) {
      rows_scanned += executor.Execute(query).metrics.rows_scanned;
      ++runs;
    }
  }
  const double elapsed_ms = timer.ElapsedSeconds() * 1e3;
  m.avg_query_ms = elapsed_ms / static_cast<double>(runs);
  m.avg_rows_scanned =
      static_cast<double>(rows_scanned) / static_cast<double>(runs);
  return m;
}

/// `ticks` synchronous plan+apply rounds, refreshing the tracker with
/// one pass of workload traffic before each so the planner always sees
/// current counters (the daemon's loop, minus the wall clock).
void Tune(VersionedTable& table, Reorganizer& reorganizer,
          WorkloadTracker& tracker, const std::vector<Query>& workload,
          int ticks) {
  for (int t = 0; t < ticks; ++t) {
    {
      const VersionedTable::Snapshot snapshot = table.snapshot();
      QueryExecutor executor(snapshot.view());
      executor.set_observer(&tracker);
      for (const Query& query : workload) executor.Execute(query);
    }
    reorganizer.TickForTesting();
  }
}

void PrintMeasurement(const char* label, const Measurement& m) {
  std::printf("  %-22s EFFICIENCY %.3f  avg query %8.3f ms  "
              "%7.0f rows scanned  %4zu partitions\n",
              label, m.efficiency, m.avg_query_ms, m.avg_rows_scanned,
              m.partitions);
}

void EmitMeasurement(std::FILE* json, const char* key, const Measurement& m,
                     bool trailing_comma) {
  std::fprintf(json,
               "  \"%s\": {\"efficiency\": %.4f, \"avg_query_ms\": %.4f, "
               "\"avg_rows_scanned\": %.1f, \"partitions\": %zu}%s\n",
               key, m.efficiency, m.avg_query_ms, m.avg_rows_scanned,
               m.partitions, trailing_comma ? "," : "");
}

int Main() {
  const size_t entities = static_cast<size_t>(
      Int64FromEnv("CINDERELLA_BENCH_ENTITIES", 4000));
  const uint64_t max_size = static_cast<uint64_t>(
      Int64FromEnv("CINDERELLA_BENCH_MAX_SIZE", 250));
  const int ticks =
      static_cast<int>(Int64FromEnv("CINDERELLA_BENCH_TICKS", 16));
  const int reps = static_cast<int>(Int64FromEnv("CINDERELLA_BENCH_REPS", 3));

  // The paper's irregular data and workload: arrival order is the damage.
  DbpediaConfig data_config;
  data_config.num_entities = entities;
  data_config.seed = static_cast<uint64_t>(Int64FromEnv("CINDERELLA_SEED", 42));
  AttributeDictionary dictionary;
  DbpediaGenerator generator(data_config, &dictionary);
  const std::vector<Row> rows = generator.Generate();

  // Selective slice of the Section V.B workload, split into two halves
  // (even/odd) so phase 2 can shift the traffic to unseen queries.
  std::vector<Query> phase1;
  std::vector<Query> phase2;
  {
    const std::vector<GeneratedQuery> generated = GenerateQueryWorkload(
        rows, data_config.num_attributes, QueryWorkloadConfig{});
    size_t kept = 0;
    for (const GeneratedQuery& g : generated) {
      if (g.selectivity <= 0.0 || g.selectivity > kMaxSelectivity) continue;
      ((kept++ % 2 == 0) ? phase1 : phase2).push_back(g.query);
    }
  }
  if (phase1.empty() || phase2.empty()) {
    std::fprintf(stderr, "selective workload slice is empty\n");
    return 1;
  }

  VersionedTable table(MakePartitioner(max_size));
  if (!table.InsertBatch(bench::CopyRows(rows)).ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }
  const std::set<EntityId> all_ids = ResidentEntities(table.snapshot().view());

  WorkloadTracker tracker;
  ReorganizerOptions options = ReorganizerOptions::FromEnv();
  Reorganizer reorganizer(&table, &tracker, options);

  // ---- Phase 1: tune for the first half of the selective queries. ----
  bench::PrintHeader("tuner: dbpedia @ w=0.6, selective workload (half 1)");
  const Measurement before1 = Measure(table, phase1, &tracker, reps);
  PrintMeasurement("before tuning", before1);
  Tune(table, reorganizer, tracker, phase1, ticks);
  const Measurement after1 = Measure(table, phase1, nullptr, reps);
  PrintMeasurement("after tuning", after1);

  // ---- Phase 2: the workload shifts to the other half. ----
  bench::PrintHeader("tuner: workload shifts to the other half");
  const Measurement before2 = Measure(table, phase2, &tracker, reps);
  PrintMeasurement("at shift", before2);
  Tune(table, reorganizer, tracker, phase2, ticks);
  const Measurement after2 = Measure(table, phase2, nullptr, reps);
  PrintMeasurement("after more ticks", after2);

  // Row identity: tuning moved rows, never created or destroyed them.
  const bool rows_preserved =
      ResidentEntities(table.snapshot().view()) == all_ids &&
      table.partitioner().VerifyIntegrity().ok();
  const TunerStats stats = reorganizer.stats();
  std::printf("\n  %llu ticks, %llu plans applied (%llu splits, %llu merges, "
              "%llu evictions), %llu rows moved; rows preserved: %s\n",
              static_cast<unsigned long long>(stats.ticks),
              static_cast<unsigned long long>(stats.plans_applied),
              static_cast<unsigned long long>(stats.splits_applied),
              static_cast<unsigned long long>(stats.merges_applied),
              static_cast<unsigned long long>(stats.evictions_applied),
              static_cast<unsigned long long>(stats.rows_moved),
              rows_preserved ? "yes" : "NO");

  // ---- Foreground ingest throughput, daemon off vs on. ----
  bench::PrintHeader("tuner: foreground ingest, daemon off vs on");
  double throughput[2] = {0.0, 0.0};
  for (const bool daemon_on : {false, true}) {
    VersionedTable fresh(MakePartitioner(max_size));
    WorkloadTracker fg_tracker;
    ReorganizerOptions fg_options = options;
    fg_options.interval_ms = 2;  // Aggressive: worst-case interference.
    Reorganizer fg_daemon(&fresh, &fg_tracker, fg_options);
    if (daemon_on) fg_daemon.Start();
    std::vector<Row> stream = bench::CopyRows(rows);
    WallTimer timer;
    size_t cursor = 0;
    while (cursor < stream.size()) {
      const size_t burst = std::min<size_t>(256, stream.size() - cursor);
      std::vector<Row> batch(stream.begin() + cursor,
                             stream.begin() + cursor + burst);
      if (!fresh.InsertBatch(std::move(batch)).ok()) {
        std::fprintf(stderr, "ingest failed\n");
        return 1;
      }
      cursor += burst;
    }
    const double elapsed = timer.ElapsedSeconds();
    if (daemon_on) fg_daemon.Stop();
    throughput[daemon_on ? 1 : 0] =
        static_cast<double>(entities) / elapsed;
    std::printf("  daemon %-3s %9.0f rows/s\n", daemon_on ? "on" : "off",
                throughput[daemon_on ? 1 : 0]);
  }
  const double retention =
      throughput[0] > 0.0 ? throughput[1] / throughput[0] : 0.0;
  std::printf("  foreground retention %.2f (target >= ~0.9)\n", retention);

  // ---- Trajectory point. ----
  std::FILE* json = std::fopen("BENCH_tuner.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_tuner.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"micro_tuner\",\n");
  std::fprintf(json, "  \"entities\": %zu,\n  \"max_size\": %llu,\n"
               "  \"ticks_per_phase\": %d,\n  \"queries\": %zu,\n",
               entities, static_cast<unsigned long long>(max_size), ticks,
               phase1.size() + phase2.size());
  bench::WriteHostMetadata(json);
  EmitMeasurement(json, "phase1_before", before1, true);
  EmitMeasurement(json, "phase1_after", after1, true);
  EmitMeasurement(json, "phase2_at_shift", before2, true);
  EmitMeasurement(json, "phase2_after", after2, true);
  std::fprintf(json,
               "  \"tuner\": {\"ticks\": %llu, \"plans_applied\": %llu, "
               "\"splits\": %llu, \"merges\": %llu, \"evictions\": %llu, "
               "\"rows_moved\": %llu},\n",
               static_cast<unsigned long long>(stats.ticks),
               static_cast<unsigned long long>(stats.plans_applied),
               static_cast<unsigned long long>(stats.splits_applied),
               static_cast<unsigned long long>(stats.merges_applied),
               static_cast<unsigned long long>(stats.evictions_applied),
               static_cast<unsigned long long>(stats.rows_moved));
  std::fprintf(json,
               "  \"foreground\": {\"rows_per_second_off\": %.1f, "
               "\"rows_per_second_on\": %.1f, \"retention\": %.3f},\n",
               throughput[0], throughput[1], retention);
  std::fprintf(json, "  \"rows_preserved\": %s\n}\n",
               rows_preserved ? "true" : "false");
  std::fclose(json);
  std::printf("\nwrote BENCH_tuner.json\n");
  return rows_preserved ? 0 : 1;
}

}  // namespace
}  // namespace cinderella

int main() { return cinderella::Main(); }
