// Google-benchmark microbenchmarks for the hot paths of the library:
// synopsis set algebra, the Section IV rating, insert throughput as a
// function of catalog size (with and without the synopsis index), and the
// query executor's scan rate.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "core/cinderella.h"
#include "core/rating.h"
#include "query/executor.h"
#include "synopsis/synopsis.h"
#include "workload/dbpedia_generator.h"

namespace cinderella {
namespace {

Synopsis RandomSynopsis(Rng& rng, size_t universe, size_t count) {
  Synopsis s;
  for (size_t i = 0; i < count; ++i) {
    s.Add(static_cast<AttributeId>(rng.Uniform(universe)));
  }
  return s;
}

void BM_SynopsisIntersectCount(benchmark::State& state) {
  Rng rng(1);
  const Synopsis a = RandomSynopsis(rng, state.range(0), 10);
  const Synopsis b = RandomSynopsis(rng, state.range(0), 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.IntersectCount(b));
  }
}
BENCHMARK(BM_SynopsisIntersectCount)->Arg(100)->Arg(1000)->Arg(10000);

void BM_SynopsisXorCount(benchmark::State& state) {
  Rng rng(2);
  const Synopsis a = RandomSynopsis(rng, state.range(0), 10);
  const Synopsis b = RandomSynopsis(rng, state.range(0), 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.XorCount(b));
  }
}
BENCHMARK(BM_SynopsisXorCount)->Arg(100)->Arg(10000);

void BM_Rate(benchmark::State& state) {
  Rng rng(3);
  const Synopsis entity = RandomSynopsis(rng, 100, 8);
  const Synopsis partition = RandomSynopsis(rng, 100, 30);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Rate(entity, 1.0, partition, 4000.0, 0.5));
  }
}
BENCHMARK(BM_Rate);

// Insert throughput into a pre-populated table; range(0) = entities
// preloaded, range(1) = synopsis index on/off.
void BM_CinderellaInsert(benchmark::State& state) {
  DbpediaConfig config;
  config.num_entities = static_cast<size_t>(state.range(0));
  AttributeDictionary dictionary;
  DbpediaGenerator generator(config, &dictionary);
  auto rows = generator.Generate();

  CinderellaConfig cc;
  cc.weight = 0.3;
  cc.max_size = 500;
  cc.use_synopsis_index = state.range(1) != 0;
  auto partitioner = std::move(Cinderella::Create(cc)).value();
  for (Row& row : rows) {
    benchmark::DoNotOptimize(partitioner->Insert(std::move(row)));
  }

  // Steady-state: insert/delete a fresh entity per iteration.
  Rng rng(9);
  EntityId next = 1000000;
  for (auto _ : state) {
    Row row(next++);
    for (int i = 0; i < 8; ++i) {
      row.Set(static_cast<AttributeId>(rng.Uniform(100)),
              Value(int64_t{1}));
    }
    benchmark::DoNotOptimize(partitioner->Insert(std::move(row)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CinderellaInsert)
    ->Args({5000, 0})
    ->Args({5000, 1})
    ->Args({20000, 0})
    ->Args({20000, 1});

void BM_QueryExecutorScan(benchmark::State& state) {
  DbpediaConfig config;
  config.num_entities = 20000;
  AttributeDictionary dictionary;
  DbpediaGenerator generator(config, &dictionary);
  auto rows = generator.Generate();
  CinderellaConfig cc;
  cc.weight = 0.5;
  cc.max_size = 5000;
  cc.use_synopsis_index = true;
  auto partitioner = std::move(Cinderella::Create(cc)).value();
  for (Row& row : rows) {
    benchmark::DoNotOptimize(partitioner->Insert(std::move(row)));
  }
  QueryExecutor executor(partitioner->catalog());
  const Query query(Synopsis{2, 3});  // Medium selectivity.
  uint64_t rows_scanned = 0;
  for (auto _ : state) {
    const QueryResult result = executor.Execute(query);
    rows_scanned += result.metrics.rows_scanned;
    benchmark::DoNotOptimize(result.metrics.rows_matched);
  }
  state.SetItemsProcessed(static_cast<int64_t>(rows_scanned));
}
BENCHMARK(BM_QueryExecutorScan);

}  // namespace
}  // namespace cinderella

BENCHMARK_MAIN();
