#include "bench/bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <thread>

#include "common/logging.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "common/timer.h"

extern char** environ;

namespace cinderella {
namespace bench {

std::vector<Row> CopyRows(const std::vector<Row>& rows) { return rows; }

LoadResult LoadRows(Partitioner& partitioner, std::vector<Row> rows,
                    bool record_latencies) {
  LoadResult result;
  if (record_latencies) result.insert_ms.reserve(rows.size());
  WallTimer total;
  for (Row& row : rows) {
    if (record_latencies) {
      WallTimer one;
      const Status status = partitioner.Insert(std::move(row));
      result.insert_ms.push_back(one.ElapsedMillis());
      CINDERELLA_CHECK(status.ok());
    } else {
      CINDERELLA_CHECK(partitioner.Insert(std::move(row)).ok());
    }
  }
  result.total_seconds = total.ElapsedSeconds();
  return result;
}

std::vector<QueryTiming> TimeQueries(const PartitionCatalog& catalog,
                                     const std::vector<GeneratedQuery>& queries,
                                     int repetitions, const CostModel& model) {
  QueryExecutor executor(catalog);
  std::vector<QueryTiming> timings;
  timings.reserve(queries.size());
  for (const GeneratedQuery& generated : queries) {
    QueryTiming t;
    t.selectivity = generated.selectivity;
    QueryResult last;
    WallTimer timer;
    for (int r = 0; r < repetitions; ++r) {
      last = executor.Execute(generated.query);
    }
    t.avg_ms = timer.ElapsedMillis() / repetitions;
    t.modeled_cost = last.ModeledCost(model);
    t.partitions_scanned = last.metrics.partitions_scanned;
    t.partitions_total = last.metrics.partitions_total;
    timings.push_back(t);
  }
  return timings;
}

void PrintSelectivityTable(const std::vector<SelectivitySeries>& series,
                           size_t bins) {
  std::vector<std::string> headers{"selectivity"};
  for (const SelectivitySeries& s : series) {
    headers.push_back(s.label + " ms");
    headers.push_back(s.label + " cost(MB)");
  }
  TablePrinter table(std::move(headers));
  for (size_t bin = 0; bin < bins; ++bin) {
    const double lo = static_cast<double>(bin) / bins;
    const double hi = static_cast<double>(bin + 1) / bins;
    std::vector<std::string> cells;
    char label[32];
    std::snprintf(label, sizeof(label), "%.2f-%.2f", lo, hi);
    cells.push_back(label);
    bool any = false;
    for (const SelectivitySeries& s : series) {
      double ms = 0.0;
      double cost = 0.0;
      size_t count = 0;
      for (const QueryTiming& t : s.timings) {
        if (t.selectivity >= lo && (t.selectivity < hi || hi >= 1.0)) {
          ms += t.avg_ms;
          cost += t.modeled_cost;
          ++count;
        }
      }
      if (count == 0) {
        cells.push_back("-");
        cells.push_back("-");
      } else {
        any = true;
        cells.push_back(
            TablePrinter::FormatDouble(ms / count, 3));
        cells.push_back(
            TablePrinter::FormatDouble(cost / count / 1e6, 3));
      }
    }
    if (any) table.AddRow(std::move(cells));
  }
  std::fputs(table.ToString().c_str(), stdout);
}

void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

namespace {

std::string JsonEscape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out.push_back('\\');
    if (*s == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(*s);
  }
  return out;
}

}  // namespace

void WriteHostMetadata(std::FILE* json) {
// Baked in by bench/CMakeLists.txt at configure time.
#ifndef CINDERELLA_BENCH_BUILD_TYPE
#define CINDERELLA_BENCH_BUILD_TYPE "unknown"
#endif
#ifndef CINDERELLA_BENCH_BUILD_FLAGS
#define CINDERELLA_BENCH_BUILD_FLAGS ""
#endif
#ifndef CINDERELLA_BENCH_SANITIZE
#define CINDERELLA_BENCH_SANITIZE ""
#endif
  std::fprintf(json, "  \"host\": {\n");
  std::fprintf(json, "    \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(json, "    \"build_type\": \"%s\",\n",
               JsonEscape(CINDERELLA_BENCH_BUILD_TYPE).c_str());
  std::fprintf(json, "    \"build_flags\": \"%s\",\n",
               JsonEscape(CINDERELLA_BENCH_BUILD_FLAGS).c_str());
  std::fprintf(json, "    \"sanitizer\": \"%s\",\n",
               JsonEscape(CINDERELLA_BENCH_SANITIZE).c_str());
  // The effective scan morsel size (partitions per claimed chunk) —
  // CINDERELLA_SCAN_CHUNK or the built-in default; recorded explicitly
  // because it shifts every parallel-scan measurement.
  std::fprintf(json, "    \"scan_chunk\": %zu,\n",
               ThreadPool::ResolveScanChunk(0));
  // Every CINDERELLA_* knob in effect, sorted for stable diffs.
  std::vector<std::string> knobs;
  for (char** env = environ; *env != nullptr; ++env) {
    if (std::strncmp(*env, "CINDERELLA_", 11) == 0) knobs.push_back(*env);
  }
  std::sort(knobs.begin(), knobs.end());
  std::fprintf(json, "    \"env\": {");
  for (size_t i = 0; i < knobs.size(); ++i) {
    const size_t eq = knobs[i].find('=');
    const std::string name = knobs[i].substr(0, eq);
    const std::string value = eq == std::string::npos
                                  ? std::string()
                                  : knobs[i].substr(eq + 1);
    std::fprintf(json, "%s\"%s\": \"%s\"", i == 0 ? "" : ", ",
                 JsonEscape(name.c_str()).c_str(),
                 JsonEscape(value.c_str()).c_str());
  }
  std::fprintf(json, "}\n  },\n");
}

}  // namespace bench
}  // namespace cinderella
