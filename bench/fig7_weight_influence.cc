// Reproduces Figure 7: influence of the weight w on the partitioning of
// the DBpedia data set, B = 5000: (a) number of partitions, (b) entities
// per partition, (c) attributes per partition, (d) sparseness per
// partition. Also reports Definition 1 efficiency for the Section V.B
// workload (our addition).
//
// Paper shape: below w = 0.2 the partition count explodes; w = 0 yields
// perfectly homogeneous partitions (sparseness 0); higher weights give
// fewer, fuller, more heterogeneous partitions; with medium weights most
// partitions are far sparser than the raw table (0.94); attributes per
// partition stay well below the table's 100 at every setting.
//
// Env knobs: CINDERELLA_ENTITIES (default 20000 — the w<0.2 explosion
// makes the catalog scan quadratic, see Figure 8 discussion; set 100000
// for the paper-scale run), CINDERELLA_SEED.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/env.h"
#include "common/table_printer.h"
#include "core/cinderella.h"
#include "core/efficiency.h"
#include "core/partitioning_stats.h"
#include "workload/dataset_stats.h"
#include "workload/dbpedia_generator.h"
#include "workload/query_workload.h"

namespace cinderella {
namespace {

int Main() {
  DbpediaConfig config;
  config.num_entities =
      static_cast<size_t>(Int64FromEnv("CINDERELLA_ENTITIES", 20000));
  config.seed = static_cast<uint64_t>(Int64FromEnv("CINDERELLA_SEED", 42));

  AttributeDictionary dictionary;
  DbpediaGenerator generator(config, &dictionary);
  const auto rows = generator.Generate();
  const auto workload =
      GenerateQueryWorkload(rows, config.num_attributes, QueryWorkloadConfig{});
  std::vector<Synopsis> workload_synopses;
  for (const auto& q : workload) workload_synopses.push_back(q.query.attributes());
  std::printf("data set: %zu entities, B=5000\n", rows.size());

  TablePrinter table({"w", "partitions", "entities/part (p25/med/p75/max)",
                      "attrs/part (med/max)", "sparseness (med/max)",
                      "efficiency"});
  for (int wi = 0; wi <= 10; ++wi) {
    const double weight = wi / 10.0;
    CinderellaConfig cc;
    cc.weight = weight;
    cc.max_size = 5000;
    cc.use_synopsis_index = true;
    auto partitioner = std::move(Cinderella::Create(cc)).value();
    bench::LoadRows(*partitioner, bench::CopyRows(rows));
    const PartitioningReport report =
        AnalyzePartitioning(partitioner->catalog());
    const EfficiencyBreakdown eff =
        ComputeEfficiency(partitioner->catalog(), workload_synopses,
                          SizeMeasure::kEntityCount);
    char entities[64];
    std::snprintf(entities, sizeof(entities), "%.0f/%.0f/%.0f/%.0f",
                  report.entities_per_partition.p25,
                  report.entities_per_partition.median,
                  report.entities_per_partition.p75,
                  report.entities_per_partition.max);
    char attrs[32];
    std::snprintf(attrs, sizeof(attrs), "%.0f/%.0f",
                  report.attributes_per_partition.median,
                  report.attributes_per_partition.max);
    char sparse[32];
    std::snprintf(sparse, sizeof(sparse), "%.3f/%.3f",
                  report.sparseness_per_partition.median,
                  report.sparseness_per_partition.max);
    table.AddRow({TablePrinter::FormatDouble(weight, 1),
                  std::to_string(report.partition_count), entities, attrs,
                  sparse, TablePrinter::FormatDouble(eff.efficiency, 4)});
  }
  bench::PrintHeader("Figure 7: influence of the weight w (B=5000)");
  std::fputs(table.ToString().c_str(), stdout);
  const DatasetDistribution d =
      ComputeDatasetDistribution(rows, config.num_attributes);
  std::printf("\nraw table sparseness for reference: %.3f (paper: 0.94)\n",
              d.sparseness);
  return 0;
}

}  // namespace
}  // namespace cinderella

int main() { return cinderella::Main(); }
