// Reproduces Figure 8: insert execution time distribution while loading
// the DBpedia data set, for partition size limits B = 500 / 5000 / 50000
// (weight 0.5).
//
// Paper shape: the majority of inserts finish in 1-10 ms (PostgreSQL
// stored-procedure scale; our in-memory inserts are microseconds — the
// *distribution shape* is the target); a small fraction takes much longer:
// the inserts that trigger a split. Split counts in the paper: 448 at
// B=500, 100 at B=5000, 0 at B=50000; smaller B also means a larger
// partition catalog and slightly slower ordinary inserts, while the cost
// of one split grows with B.
//
// Env knobs: CINDERELLA_ENTITIES (default 100000), CINDERELLA_SEED.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/env.h"
#include "common/histogram.h"
#include "common/stats.h"
#include "core/cinderella.h"
#include "workload/dbpedia_generator.h"

namespace cinderella {
namespace {

int Main() {
  DbpediaConfig config;
  config.num_entities =
      static_cast<size_t>(Int64FromEnv("CINDERELLA_ENTITIES", 100000));
  config.seed = static_cast<uint64_t>(Int64FromEnv("CINDERELLA_SEED", 42));

  AttributeDictionary dictionary;
  DbpediaGenerator generator(config, &dictionary);
  const auto rows = generator.Generate();
  std::printf("data set: %zu entities, w=0.5\n", rows.size());

  for (uint64_t max_size : {uint64_t{500}, uint64_t{5000}, uint64_t{50000}}) {
    CinderellaConfig cc;
    cc.weight = 0.5;
    cc.max_size = max_size;
    // Note: the full catalog scan (no synopsis index) is the paper's
    // algorithm; Figure 8's "inserts take a little longer with a larger
    // catalog" effect only exists without the index. The ablation bench
    // quantifies the index's benefit separately.
    auto partitioner = std::move(Cinderella::Create(cc)).value();
    const auto load = bench::LoadRows(*partitioner, bench::CopyRows(rows),
                                      /*record_latencies=*/true);

    char title[96];
    std::snprintf(title, sizeof(title), "Figure 8: insert latency, B=%llu",
                  static_cast<unsigned long long>(max_size));
    bench::PrintHeader(title);

    LogHistogram histogram(0.0001, 3.1623, 14);  // Half-decades from 0.1us.
    for (double ms : load.insert_ms) histogram.Add(ms);
    std::fputs(histogram.ToString(40).c_str(), stdout);

    const SampleSummary s = Summarize(load.insert_ms);
    const CinderellaStats& stats = partitioner->stats();
    std::printf(
        "total %.2fs; median %.4f ms, p95 %.4f ms, max %.3f ms\n"
        "partitions %zu, splits %llu (paper: 448/100/0 for B=500/5000/50000), "
        "cascades %llu, redistributed %llu, ratings %llu\n",
        load.total_seconds, s.median, s.p95, s.max,
        partitioner->catalog().partition_count(),
        static_cast<unsigned long long>(stats.splits),
        static_cast<unsigned long long>(stats.split_cascades),
        static_cast<unsigned long long>(stats.entities_redistributed),
        static_cast<unsigned long long>(stats.partitions_rated));
  }
  return 0;
}

}  // namespace
}  // namespace cinderella

int main() { return cinderella::Main(); }
