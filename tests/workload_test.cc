// Tests for the workload substrate: the DBpedia-like generator must
// reproduce the Figure 4 distributions; the query workload must cover the
// selectivity range; TPC-H schema/generator/footprints must be consistent.

#include <set>

#include <gtest/gtest.h>

#include "workload/dataset_stats.h"
#include "workload/dbpedia_generator.h"
#include "workload/query_workload.h"
#include "workload/tpch/tpch_generator.h"
#include "workload/tpch/tpch_queries.h"
#include "workload/tpch/tpch_schema.h"

namespace cinderella {
namespace {

// -- DBpedia generator ---------------------------------------------------------

class DbpediaTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    DbpediaConfig config;
    config.num_entities = 20000;  // Enough for tight frequency estimates.
    config.seed = 42;
    dictionary_ = new AttributeDictionary();
    DbpediaGenerator generator(config, dictionary_);
    rows_ = new std::vector<Row>(generator.Generate());
    distribution_ = new DatasetDistribution(
        ComputeDatasetDistribution(*rows_, config.num_attributes));
  }
  static void TearDownTestSuite() {
    delete rows_;
    delete distribution_;
    delete dictionary_;
    rows_ = nullptr;
    distribution_ = nullptr;
    dictionary_ = nullptr;
  }

  static std::vector<Row>* rows_;
  static DatasetDistribution* distribution_;
  static AttributeDictionary* dictionary_;
};

std::vector<Row>* DbpediaTest::rows_ = nullptr;
DatasetDistribution* DbpediaTest::distribution_ = nullptr;
AttributeDictionary* DbpediaTest::dictionary_ = nullptr;

TEST_F(DbpediaTest, GeneratesRequestedCount) {
  EXPECT_EQ(rows_->size(), 20000u);
  EXPECT_EQ(dictionary_->size(), 100u);
}

TEST_F(DbpediaTest, Figure4aTwoNearUniversalAttributes) {
  // "two attributes are extremely common and appear on almost every
  // entity".
  EXPECT_EQ(distribution_->CountAttributesAbove(0.85), 2u);
}

TEST_F(DbpediaTest, Figure4aThirteenCommonAttributes) {
  // 2 universal + "Eleven attributes ... appear on over 30%".
  EXPECT_EQ(distribution_->CountAttributesAbove(0.30), 13u);
}

TEST_F(DbpediaTest, Figure4aLongTail) {
  // "85% of the attributes appear on less than 10% of the entities".
  const size_t below = distribution_->CountAttributesBelow(0.10);
  EXPECT_GE(below, 83u);
  EXPECT_LE(below, 87u);
}

TEST_F(DbpediaTest, Figure4bAttributesPerEntity) {
  // "the majority of entities have between two and 15 attributes, a few
  // entities have up to 27".
  size_t bulk = 0;
  for (size_t k = 2; k <= 15 && k < distribution_->attrs_per_entity_histogram.size();
       ++k) {
    bulk += distribution_->attrs_per_entity_histogram[k];
  }
  EXPECT_GT(static_cast<double>(bulk) / 20000.0, 0.80);
  EXPECT_GE(distribution_->max_attributes_per_entity, 18u);
  EXPECT_LE(distribution_->max_attributes_per_entity, 32u);
}

TEST_F(DbpediaTest, TableIsVerySparse) {
  // The paper quotes 0.94 for its extract.
  EXPECT_GT(distribution_->sparseness, 0.88);
  EXPECT_LT(distribution_->sparseness, 0.96);
}

TEST_F(DbpediaTest, EmpiricalFrequenciesTrackTargets) {
  DbpediaConfig config;
  config.num_entities = 20000;
  config.seed = 42;
  AttributeDictionary dict;
  DbpediaGenerator generator(config, &dict);
  const auto& targets = generator.target_frequencies();
  ASSERT_EQ(targets.size(), 100u);
  for (size_t a = 0; a < 100; ++a) {
    EXPECT_NEAR(distribution_->frequency[a], targets[a],
                0.02 + 0.1 * targets[a])
        << "attribute " << a;
  }
}

TEST_F(DbpediaTest, DeterministicForSeed) {
  DbpediaConfig config;
  config.num_entities = 500;
  config.seed = 7;
  AttributeDictionary d1;
  AttributeDictionary d2;
  auto r1 = DbpediaGenerator(config, &d1).Generate();
  auto r2 = DbpediaGenerator(config, &d2).Generate();
  ASSERT_EQ(r1.size(), r2.size());
  for (size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].AttributeSynopsis(), r2[i].AttributeSynopsis());
  }
  config.seed = 8;
  AttributeDictionary d3;
  auto r3 = DbpediaGenerator(config, &d3).Generate();
  size_t same = 0;
  for (size_t i = 0; i < r1.size(); ++i) {
    same += r1[i].AttributeSynopsis() == r3[i].AttributeSynopsis();
  }
  EXPECT_LT(same, r1.size() / 2);
}

// -- Dataset stats ----------------------------------------------------------------

TEST(DatasetStatsTest, SmallHandComputedExample) {
  std::vector<Row> rows;
  Row a(0);
  a.Set(0, Value(int64_t{1}));
  a.Set(1, Value(int64_t{1}));
  Row b(1);
  b.Set(0, Value(int64_t{1}));
  rows.push_back(std::move(a));
  rows.push_back(std::move(b));
  const DatasetDistribution d = ComputeDatasetDistribution(rows, 3);
  EXPECT_DOUBLE_EQ(d.frequency[0], 1.0);
  EXPECT_DOUBLE_EQ(d.frequency[1], 0.5);
  EXPECT_DOUBLE_EQ(d.frequency[2], 0.0);
  EXPECT_EQ(d.attrs_per_entity_histogram[1], 1u);
  EXPECT_EQ(d.attrs_per_entity_histogram[2], 1u);
  EXPECT_EQ(d.max_attributes_per_entity, 2u);
  EXPECT_DOUBLE_EQ(d.mean_attributes_per_entity, 1.5);
  EXPECT_DOUBLE_EQ(d.sparseness, 1.0 - 3.0 / 6.0);
  EXPECT_DOUBLE_EQ(d.frequency_sorted[0], 1.0);
}

// -- Query workload ------------------------------------------------------------------

TEST(QueryWorkloadTest, CoversSelectivityRange) {
  DbpediaConfig config;
  config.num_entities = 5000;
  AttributeDictionary dict;
  auto rows = DbpediaGenerator(config, &dict).Generate();
  QueryWorkloadConfig wconfig;
  const auto workload = GenerateQueryWorkload(rows, 100, wconfig);
  ASSERT_FALSE(workload.empty());
  // Sorted by selectivity, covering low and high ends.
  for (size_t i = 1; i < workload.size(); ++i) {
    EXPECT_GE(workload[i].selectivity, workload[i - 1].selectivity);
  }
  EXPECT_LT(workload.front().selectivity, 0.05);
  EXPECT_GT(workload.back().selectivity, 0.8);
  // At most queries_per_bin per bin.
  std::vector<size_t> bins(wconfig.selectivity_bins, 0);
  for (const auto& q : workload) {
    size_t bin = std::min(
        static_cast<size_t>(q.selectivity * wconfig.selectivity_bins),
        wconfig.selectivity_bins - 1);
    ++bins[bin];
  }
  for (size_t count : bins) EXPECT_LE(count, wconfig.queries_per_bin);
}

TEST(QueryWorkloadTest, SelectivityMatchesManualCount) {
  std::vector<Row> rows;
  for (EntityId id = 0; id < 10; ++id) {
    Row row(id);
    if (id < 3) row.Set(0, Value(int64_t{1}));
    row.Set(1, Value(int64_t{1}));
    rows.push_back(std::move(row));
  }
  QueryWorkloadConfig config;
  config.top_attributes = 2;
  const auto workload = GenerateQueryWorkload(rows, 2, config);
  // Single-attribute query over attr 0: 3 of 10 rows carry it.
  bool found_single = false;
  // Pair query {0, 1}: per-attribute matching, (3 + 10) / (10 * 2).
  // The old first-match-wins count reported 1.0 here (every row carries
  // attr 1), hiding that attr 0 is rare.
  bool found_pair = false;
  for (const auto& q : workload) {
    if (q.query.attributes() == Synopsis{0}) {
      EXPECT_DOUBLE_EQ(q.selectivity, 0.3);
      found_single = true;
    }
    if (q.query.attributes() == (Synopsis{0, 1})) {
      EXPECT_DOUBLE_EQ(q.selectivity, 0.65);
      found_pair = true;
    }
  }
  EXPECT_TRUE(found_single);
  EXPECT_TRUE(found_pair);
}

// -- TPC-H -----------------------------------------------------------------------------

TEST(TpchSchemaTest, ColumnCounts) {
  EXPECT_EQ(TpchColumns(TpchTable::kRegion).size(), 3u);
  EXPECT_EQ(TpchColumns(TpchTable::kNation).size(), 4u);
  EXPECT_EQ(TpchColumns(TpchTable::kSupplier).size(), 7u);
  EXPECT_EQ(TpchColumns(TpchTable::kCustomer).size(), 8u);
  EXPECT_EQ(TpchColumns(TpchTable::kPart).size(), 9u);
  EXPECT_EQ(TpchColumns(TpchTable::kPartsupp).size(), 5u);
  EXPECT_EQ(TpchColumns(TpchTable::kOrders).size(), 9u);
  EXPECT_EQ(TpchColumns(TpchTable::kLineitem).size(), 16u);
  // 61 distinct columns in total; prefixes keep them disjoint.
  std::set<std::string> all;
  for (TpchTable t : AllTpchTables()) {
    for (const auto& c : TpchColumns(t)) all.insert(c);
  }
  EXPECT_EQ(all.size(), 61u);
}

TEST(TpchSchemaTest, RowCountsScale) {
  EXPECT_EQ(TpchRowCount(TpchTable::kRegion, 0.5), 5u);
  EXPECT_EQ(TpchRowCount(TpchTable::kNation, 0.5), 25u);
  EXPECT_EQ(TpchRowCount(TpchTable::kSupplier, 0.5), 5000u);
  EXPECT_EQ(TpchRowCount(TpchTable::kLineitem, 0.5), 3000000u);
  EXPECT_EQ(TpchRowCount(TpchTable::kOrders, 0.01), 15000u);
}

TEST(TpchSchemaTest, EntityIdRoundTrip) {
  const EntityId id = TpchEntityId(TpchTable::kOrders, 12345);
  EXPECT_EQ(TpchTableOfEntity(id), TpchTable::kOrders);
  EXPECT_EQ(TpchTableOfEntity(TpchEntityId(TpchTable::kRegion, 0)),
            TpchTable::kRegion);
}

TEST(TpchGeneratorTest, RowsHaveExactColumnSets) {
  TpchGeneratorConfig config;
  config.scale_factor = 0.001;
  AttributeDictionary dict;
  TpchGenerator generator(config, &dict);
  const auto rows = generator.Generate();
  EXPECT_EQ(rows.size(), generator.TotalRows());
  for (const Row& row : rows) {
    const TpchTable table = TpchTableOfEntity(row.id());
    EXPECT_EQ(row.attribute_count(), TpchColumns(table).size())
        << TpchTableName(table);
    for (const std::string& column : TpchColumns(table)) {
      EXPECT_TRUE(row.Has(*dict.Find(column)));
    }
  }
}

TEST(TpchGeneratorTest, PerfectlyRegularPerTable) {
  TpchGeneratorConfig config;
  config.scale_factor = 0.001;
  AttributeDictionary dict;
  const auto rows = TpchGenerator(config, &dict).Generate();
  // All rows of one table share one synopsis; synopses differ across
  // tables.
  std::map<TpchTable, Synopsis> schema;
  for (const Row& row : rows) {
    const TpchTable table = TpchTableOfEntity(row.id());
    auto it = schema.find(table);
    if (it == schema.end()) {
      schema.emplace(table, row.AttributeSynopsis());
    } else {
      EXPECT_EQ(it->second, row.AttributeSynopsis());
    }
  }
  EXPECT_EQ(schema.size(), kTpchTableCount);
}

TEST(TpchQueriesTest, AllTwentyTwoFootprints) {
  const auto& footprints = TpchQueryFootprints();
  ASSERT_EQ(footprints.size(), 22u);
  for (size_t i = 0; i < footprints.size(); ++i) {
    EXPECT_EQ(footprints[i].number, static_cast<int>(i + 1));
    EXPECT_FALSE(footprints[i].references.empty());
    // Every referenced column must exist in its table's schema.
    for (const auto& [table, columns] : footprints[i].references) {
      const auto& schema = TpchColumns(table);
      for (const std::string& column : columns) {
        EXPECT_NE(std::find(schema.begin(), schema.end(), column),
                  schema.end())
            << "Q" << footprints[i].number << " references unknown column "
            << column;
      }
    }
  }
}

TEST(TpchQueriesTest, MakeTpchQueryUnionsColumns) {
  AttributeDictionary dict;
  TpchGeneratorConfig config;
  config.scale_factor = 0.001;
  TpchGenerator(config, &dict).Generate();
  // Q6 references 4 lineitem columns.
  const Query q6 = MakeTpchQuery(TpchQueryFootprints()[5], dict);
  EXPECT_EQ(q6.attributes().Count(), 4u);
  // Q1 touches only lineitem: its synopsis is a subset of lineitem's.
  Synopsis lineitem;
  for (const auto& column : TpchColumns(TpchTable::kLineitem)) {
    lineitem.Add(*dict.Find(column));
  }
  const Query q1 = MakeTpchQuery(TpchQueryFootprints()[0], dict);
  EXPECT_TRUE(q1.attributes().IsSubsetOf(lineitem));
}

}  // namespace
}  // namespace cinderella
