// Tests for the epoch-based MVCC read engine (src/mvcc): EpochManager
// reclamation semantics, snapshot isolation across split cascades,
// per-window publication, serial-identical placements, DeleteBatch
// (in-memory and journaled), and executor/estimator equivalence between
// the live catalog and a pinned view.

#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/cinderella.h"
#include "io/durable_table.h"
#include "mvcc/epoch.h"
#include "mvcc/partition_version.h"
#include "mvcc/versioned_table.h"
#include "query/estimator.h"
#include "query/executor.h"
#include "query/predicate.h"

namespace cinderella {
namespace {

Row MakeRow(EntityId id, std::initializer_list<AttributeId> attrs) {
  Row row(id);
  for (AttributeId a : attrs) row.Set(a, Value(int64_t{1}));
  return row;
}

std::unique_ptr<Cinderella> MakePartitioner(uint64_t max_size = 16) {
  CinderellaConfig config;
  config.weight = 0.4;
  config.max_size = max_size;
  config.scan_threads = 1;
  return std::move(Cinderella::Create(config)).value();
}

/// Rows with clustered attribute sets so splits and multiple partitions
/// actually happen.
std::vector<Row> MakeRows(EntityId first, size_t count) {
  std::vector<Row> rows;
  rows.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const EntityId id = first + static_cast<EntityId>(i);
    const AttributeId base = static_cast<AttributeId>((id % 4) * 8);
    rows.push_back(MakeRow(id, {base, base + 1, base + 2}));
  }
  return rows;
}

/// Order-insensitive fingerprint of which entities share partitions.
uint64_t GroupingFingerprint(const Cinderella& c) {
  uint64_t fingerprint = 0;
  c.catalog().ForEachPartition([&](const Partition& partition) {
    uint64_t member_hash = 0;
    for (const Row& row : partition.segment().rows()) {
      member_hash += row.id() * 0x9e3779b97f4a7c15ULL + 1;
    }
    fingerprint ^= member_hash * 0xff51afd7ed558ccdULL;
  });
  return fingerprint;
}

/// Structural invariants every published view must satisfy, whatever
/// instant it was pinned at: strictly ascending partition ids, totals
/// consistent with the versions, every resident row findable.
void CheckViewInvariants(const CatalogView& view) {
  size_t entities = 0;
  PartitionId last_id = 0;
  bool first = true;
  for (const PartitionVersion* version : view.partitions()) {
    if (!first) {
      ASSERT_GT(version->id(), last_id);
    }
    first = false;
    last_id = version->id();
    ASSERT_GT(version->entity_count(), 0u);
    entities += version->entity_count();
    for (size_t i = 0; i < version->entity_count(); ++i) {
      const RowView row = version->row(i);
      const RowView found = version->Find(row.id());
      ASSERT_TRUE(found.valid());
      ASSERT_EQ(found.id(), row.id());
    }
  }
  ASSERT_EQ(view.entity_count(), entities);
}

// -- EpochManager ------------------------------------------------------------

TEST(EpochTest, AdvanceFreesUnpinnedGarbage) {
  EpochManager epochs;
  epochs.Retire(new int(7));
  EXPECT_EQ(epochs.retired_count(), 1u);
  EXPECT_EQ(epochs.Advance(), 1u);
  EXPECT_EQ(epochs.retired_count(), 0u);
  EXPECT_EQ(epochs.reclaimed_count(), 1u);
}

TEST(EpochTest, PinnedReaderBlocksReclamation) {
  EpochManager epochs;
  const size_t slot = epochs.Pin();
  EXPECT_EQ(epochs.pinned_count(), 1u);
  // Retired at the pinned epoch: must survive any number of advances
  // while the reader is pinned.
  epochs.Retire(new int(1));
  EXPECT_EQ(epochs.Advance(), 0u);
  EXPECT_EQ(epochs.Advance(), 0u);
  EXPECT_EQ(epochs.retired_count(), 1u);
  epochs.Unpin(slot);
  EXPECT_EQ(epochs.pinned_count(), 0u);
  EXPECT_EQ(epochs.Advance(), 1u);
  EXPECT_EQ(epochs.retired_count(), 0u);
}

TEST(EpochTest, LateReaderDoesNotBlockOlderGarbage) {
  EpochManager epochs;
  epochs.Retire(new int(1));  // Tagged with the current epoch e.
  epochs.Advance();           // Freed: nobody pinned.
  EXPECT_EQ(epochs.reclaimed_count(), 1u);

  epochs.Retire(new int(2));  // Tagged e+1.
  epochs.Advance();           // Freed too.
  const size_t slot = epochs.Pin();  // Pins e+2.
  epochs.Retire(new int(3));         // Tagged e+2: blocked by the pin.
  EXPECT_EQ(epochs.Advance(), 0u);
  epochs.Unpin(slot);
  EXPECT_EQ(epochs.Advance(), 1u);
}

TEST(EpochTest, GuardPinsForItsLifetime) {
  EpochManager epochs;
  {
    EpochGuard guard(&epochs);
    EXPECT_EQ(epochs.pinned_count(), 1u);
    EpochGuard moved(std::move(guard));
    EXPECT_EQ(epochs.pinned_count(), 1u);
  }
  EXPECT_EQ(epochs.pinned_count(), 0u);
}

TEST(EpochTest, SlotsAreReusedAcrossManyPins) {
  EpochManager epochs;
  for (int i = 0; i < 1000; ++i) {
    const size_t slot = epochs.Pin();
    EXPECT_LT(slot, EpochManager::kMaxReaders);
    epochs.Unpin(slot);
  }
  EXPECT_EQ(epochs.pinned_count(), 0u);
}

// -- VersionedTable basics ---------------------------------------------------

TEST(VersionedTableTest, ServesReadsAfterWrites) {
  VersionedTable table(MakePartitioner());
  EXPECT_EQ(table.entity_count(), 0u);
  ASSERT_TRUE(table.Insert(MakeRow(1, {0, 1})).ok());
  ASSERT_TRUE(table.Insert(MakeRow(2, {0, 2})).ok());

  EXPECT_EQ(table.entity_count(), 2u);
  auto row = table.Get(1);
  ASSERT_TRUE(row.ok());
  EXPECT_TRUE(row->Has(1));
  EXPECT_FALSE(table.Get(99).ok());

  ASSERT_TRUE(table.Update(MakeRow(1, {0, 5})).ok());
  row = table.Get(1);
  ASSERT_TRUE(row.ok());
  EXPECT_TRUE(row->Has(5));
  EXPECT_FALSE(row->Has(1));

  ASSERT_TRUE(table.Delete(2).ok());
  EXPECT_EQ(table.entity_count(), 1u);
  EXPECT_FALSE(table.Get(2).ok());
}

TEST(VersionedTableTest, FailedWritesDoNotChangeTheView) {
  VersionedTable table(MakePartitioner());
  ASSERT_TRUE(table.Insert(MakeRow(1, {0})).ok());
  const uint64_t generation = table.published_generation();
  EXPECT_FALSE(table.Insert(MakeRow(1, {0})).ok());   // Duplicate.
  EXPECT_FALSE(table.Delete(99).ok());                // Unknown.
  EXPECT_FALSE(table.Update(MakeRow(99, {0})).ok());  // Unknown.
  // No catalog mutation happened, so no new view was published.
  EXPECT_EQ(table.published_generation(), generation);
  EXPECT_EQ(table.entity_count(), 1u);
}

TEST(VersionedTableTest, SnapshotIsIsolatedFromSplitCascades) {
  VersionedTable table(MakePartitioner(/*max_size=*/8));
  ASSERT_TRUE(table.InsertBatch(MakeRows(0, 24)).ok());

  const VersionedTable::Snapshot snapshot = table.snapshot();
  const uint64_t generation = snapshot.view().generation();
  const size_t entities = snapshot.view().entity_count();
  const size_t partitions = snapshot.view().partition_count();
  std::vector<size_t> per_partition;
  for (const PartitionVersion* v : snapshot.view().partitions()) {
    per_partition.push_back(v->entity_count());
  }

  // Drive plenty of splits (max_size 8, 72 more rows) while the snapshot
  // stays pinned.
  ASSERT_TRUE(table.InsertBatch(MakeRows(1000, 72)).ok());
  ASSERT_GT(table.partitioner().stats().splits, 0u);

  // The pinned view is bitwise the generation it was taken at: same
  // totals, same per-partition sizes, and internally consistent — no
  // half-applied cascade can ever be observed through it.
  EXPECT_EQ(snapshot.view().generation(), generation);
  EXPECT_EQ(snapshot.view().entity_count(), entities);
  ASSERT_EQ(snapshot.view().partition_count(), partitions);
  for (size_t i = 0; i < per_partition.size(); ++i) {
    EXPECT_EQ(snapshot.view().partitions()[i]->entity_count(),
              per_partition[i]);
  }
  CheckViewInvariants(snapshot.view());

  // A fresh snapshot sees everything.
  const VersionedTable::Snapshot fresh = table.snapshot();
  EXPECT_EQ(fresh.view().entity_count(), entities + 72);
  EXPECT_GT(fresh.view().generation(), generation);
  CheckViewInvariants(fresh.view());
}

TEST(VersionedTableTest, RetiredVersionsReclaimOnceReadersRelease) {
  VersionedTable table(MakePartitioner());
  ASSERT_TRUE(table.Insert(MakeRow(1, {0})).ok());

  const uint64_t reclaimed_before = table.epochs().reclaimed_count();
  {
    const VersionedTable::Snapshot snapshot = table.snapshot();
    // This write supersedes the pinned generation's version of the
    // touched partition and the view object itself; both must be retired,
    // not freed.
    ASSERT_TRUE(table.Insert(MakeRow(2, {0})).ok());
    EXPECT_GE(table.epochs().retired_count(), 2u);
    // The pinned snapshot still reads its own generation.
    EXPECT_EQ(snapshot.view().entity_count(), 1u);
  }
  // Reader released: the next publication's advance frees the garbage.
  ASSERT_TRUE(table.Insert(MakeRow(3, {0})).ok());
  EXPECT_GT(table.epochs().reclaimed_count(), reclaimed_before);
  EXPECT_EQ(table.epochs().retired_count(), 0u);
}

TEST(VersionedTableTest, IngestPublishesOncePerCommittedWindow) {
  VersionedTable::Options options;
  options.ingest.window = 8;
  options.ingest.shards = 2;
  VersionedTable table(MakePartitioner(), std::move(options));

  const uint64_t generation = table.published_generation();
  ASSERT_TRUE(table.InsertBatch(MakeRows(0, 64)).ok());
  // 64 rows at window 8: one publication per committed window, and the
  // facade's trailing publication is a no-op (no pending delta).
  EXPECT_EQ(table.published_generation(), generation + 8);
  EXPECT_EQ(table.entity_count(), 64u);
  CheckViewInvariants(table.snapshot().view());
}

TEST(VersionedTableTest, BatchedPlacementsAreSerialIdentical) {
  // Serial reference: bare Cinderella, one Insert per row.
  auto serial = MakePartitioner(/*max_size=*/8);
  for (Row& row : MakeRows(0, 96)) {
    ASSERT_TRUE(serial->Insert(std::move(row)).ok());
  }

  VersionedTable table(MakePartitioner(/*max_size=*/8));
  ASSERT_TRUE(table.InsertBatch(MakeRows(0, 96)).ok());

  EXPECT_EQ(GroupingFingerprint(table.partitioner()),
            GroupingFingerprint(*serial));
  ASSERT_TRUE(table.partitioner().VerifyIntegrity().ok());
}

TEST(VersionedTableTest, BorrowedEnginePublishesThroughExternalBatches) {
  // The CLI's load path: the partitioner and engine live elsewhere (e.g.
  // inside a UniversalTable); the facade only hooks publication.
  auto cinderella = MakePartitioner();
  Cinderella* raw = cinderella.get();
  auto engine = AttachBatchInserter(raw, BatchInserterOptions{1, 8});

  VersionedTable table(raw, engine.get());
  const uint64_t generation = table.published_generation();
  // Not through the facade: the engine's commit hook still publishes.
  ASSERT_TRUE(raw->InsertBatch(MakeRows(0, 16)).ok());
  EXPECT_EQ(table.published_generation(), generation + 2);
  EXPECT_EQ(table.snapshot().view().entity_count(), 16u);
}

// -- DeleteBatch -------------------------------------------------------------

TEST(DeleteBatchTest, ValidatesBeforeTouchingTheTable) {
  VersionedTable table(MakePartitioner());
  ASSERT_TRUE(table.InsertBatch(MakeRows(0, 10)).ok());
  const uint64_t generation = table.published_generation();

  // Unknown id: nothing deleted, no publication.
  Status status = table.DeleteBatch({3, 99});
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(table.entity_count(), 10u);
  EXPECT_EQ(table.published_generation(), generation);

  // Duplicate id within the batch: same.
  status = table.DeleteBatch({3, 3});
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(table.entity_count(), 10u);

  ASSERT_TRUE(table.DeleteBatch({1, 2, 3}).ok());
  EXPECT_EQ(table.entity_count(), 7u);
  EXPECT_FALSE(table.Get(2).ok());
  EXPECT_TRUE(table.Get(4).ok());
}

TEST(DeleteBatchTest, SnapshotStillSeesDeletedRows) {
  VersionedTable table(MakePartitioner());
  ASSERT_TRUE(table.InsertBatch(MakeRows(0, 12)).ok());
  const VersionedTable::Snapshot snapshot = table.snapshot();

  ASSERT_TRUE(table.DeleteBatch({0, 1, 2, 3}).ok());
  EXPECT_EQ(snapshot.view().entity_count(), 12u);
  EXPECT_TRUE(snapshot.view().Find(0).valid());
  EXPECT_FALSE(table.snapshot().view().Find(0).valid());
}

TEST(DeleteBatchTest, DrainedPartitionsRetireTheirVersions) {
  VersionedTable table(MakePartitioner(/*max_size=*/8));
  ASSERT_TRUE(table.InsertBatch(MakeRows(0, 24)).ok());
  ASSERT_GT(table.partition_count(), 1u);

  std::vector<EntityId> all;
  for (EntityId id = 0; id < 24; ++id) all.push_back(id);
  ASSERT_TRUE(table.DeleteBatch(all).ok());

  // Every partition drained and dropped; the view is empty and every
  // dropped partition's version has already been reclaimed (no reader
  // was pinned).
  EXPECT_EQ(table.entity_count(), 0u);
  EXPECT_EQ(table.partition_count(), 0u);
  EXPECT_EQ(table.epochs().retired_count(), 0u);
  EXPECT_GT(table.partitioner().stats().partitions_dropped, 0u);
  ASSERT_TRUE(table.partitioner().VerifyIntegrity().ok());
}

TEST(DeleteBatchTest, MatchesOneByOneDeletes) {
  auto serial = MakePartitioner(/*max_size=*/8);
  for (Row& row : MakeRows(0, 40)) {
    ASSERT_TRUE(serial->Insert(std::move(row)).ok());
  }
  for (EntityId id = 10; id < 30; ++id) {
    ASSERT_TRUE(serial->Delete(id).ok());
  }

  VersionedTable table(MakePartitioner(/*max_size=*/8));
  ASSERT_TRUE(table.InsertBatch(MakeRows(0, 40)).ok());
  std::vector<EntityId> batch;
  for (EntityId id = 10; id < 30; ++id) batch.push_back(id);
  ASSERT_TRUE(table.DeleteBatch(batch).ok());

  EXPECT_EQ(GroupingFingerprint(table.partitioner()),
            GroupingFingerprint(*serial));
}

TEST(DeleteBatchTest, PublishedViewNeverContainsEmptyVersions) {
  // Regression: a DeleteBatch that drains a partition must drop that
  // partition's version from the published view — an empty version would
  // skew estimator totals and violate the per-view invariants.
  VersionedTable table(MakePartitioner(/*max_size=*/8));
  ASSERT_TRUE(table.InsertBatch(MakeRows(0, 32)).ok());
  ASSERT_GT(table.partition_count(), 2u);

  // Entities 0,4,8,... cluster by (id % 4), so deleting one residue class
  // drains whole partitions while others stay populated.
  std::vector<EntityId> victims;
  for (EntityId id = 0; id < 32; id += 4) victims.push_back(id);
  ASSERT_TRUE(table.DeleteBatch(victims).ok());

  const VersionedTable::Snapshot snapshot = table.snapshot();
  size_t entities = 0;
  for (const PartitionVersion* version : snapshot.view().partitions()) {
    EXPECT_GT(version->entity_count(), 0u);
    entities += version->entity_count();
  }
  EXPECT_EQ(entities, 24u);
  EXPECT_EQ(snapshot.view().entity_count(), 24u);
  CheckViewInvariants(snapshot.view());
}

TEST(VersionedTableTest, RefreshViewSkipsEmptyLivePartitions) {
  // Regression for the publication guard itself: even if the live catalog
  // holds an empty partition (created here directly, bypassing the
  // facade), a full view rebuild must not publish a version for it.
  VersionedTable table(MakePartitioner());
  ASSERT_TRUE(table.InsertBatch(MakeRows(0, 8)).ok());
  const size_t live_partitions =
      table.partitioner().catalog().partition_count();

  table.partitioner().catalog().CreatePartition();
  table.RefreshView();

  const VersionedTable::Snapshot snapshot = table.snapshot();
  EXPECT_EQ(snapshot.view().partition_count(), live_partitions);
  EXPECT_EQ(snapshot.view().entity_count(), 8u);
  CheckViewInvariants(snapshot.view());
}

// -- Pooled snapshot storage -------------------------------------------------

TEST(VersionedTableTest, SteadyStatePublicationRecyclesArenas) {
  VersionedTable table(MakePartitioner());
  ASSERT_TRUE(table.InsertBatch(MakeRows(0, 16)).ok());

  // Warm-up churn establishes the pooled capacity (arena blocks, version
  // shells, view objects). The warm-up runs the same churn pattern as the
  // steady phase: the arena working set converges to the set of arenas the
  // current view references plus the ones cycling through the pool.
  auto churn = [&](int i) {
    const EntityId target = 1 + static_cast<EntityId>(i % 2);
    ASSERT_TRUE(table.Update(MakeRow(target, {0, 1, 2})).ok());
  };
  for (int i = 0; i < 12; ++i) churn(i);
  const VersionedTable::MemoryStats warm = table.memory_stats();
  ASSERT_GT(warm.arenas.blocks_allocated, 0u);

  // Steady state: every further publication reuses a pooled arena, a
  // pooled version shell, and a pooled view — zero new blocks, zero new
  // arenas, zero new shells.
  for (int i = 0; i < 32; ++i) churn(i);
  const VersionedTable::MemoryStats steady = table.memory_stats();
  EXPECT_EQ(steady.arenas.blocks_allocated, warm.arenas.blocks_allocated);
  EXPECT_EQ(steady.arenas.arenas_created, warm.arenas.arenas_created);
  EXPECT_EQ(steady.version_shells.created, warm.version_shells.created);
  EXPECT_EQ(steady.views.created, warm.views.created);
  EXPECT_GT(steady.arenas.arenas_reused, warm.arenas.arenas_reused);
  EXPECT_GT(steady.version_shells.reused, warm.version_shells.reused);

  // The queries still see exactly the right data.
  auto row = table.Get(2);
  ASSERT_TRUE(row.ok());
  EXPECT_TRUE(row->Has(2));
  CheckViewInvariants(table.snapshot().view());
}

TEST(VersionedTableTest, MemoryStatsReportTheLiveFootprint) {
  VersionedTable table(MakePartitioner(/*max_size=*/8));
  ASSERT_TRUE(table.InsertBatch(MakeRows(0, 48)).ok());

  const VersionedTable::MemoryStats stats = table.memory_stats();
  EXPECT_EQ(stats.generation, table.published_generation());
  EXPECT_EQ(stats.live_versions, table.partition_count());
  EXPECT_GT(stats.view_bytes, 0u);
  EXPECT_GT(stats.arenas.live_arenas, 0u);
  // Shells in flight: every live version came from the shell pool.
  EXPECT_GE(stats.version_shells.created + stats.version_shells.reused,
            stats.live_versions);
}

// -- Journaled DeleteBatch (DurableTable) ------------------------------------

std::string FreshDir(const char* name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(DurableDeleteBatchTest, GroupCommitsAndRecovers) {
  const std::string dir = FreshDir("mvcc_durable_delete");
  DurableTable::Options options;
  options.directory = dir;
  options.config.max_size = 8;
  options.config.scan_threads = 1;
  options.group_commit_ops = 100;  // Nothing syncs except batch commits.

  uint64_t fingerprint = 0;
  {
    auto opened = DurableTable::Open(options);
    ASSERT_TRUE(opened.ok());
    DurableTable& table = **opened;
    ASSERT_TRUE(table.InsertBatch(MakeRows(0, 20)).ok());
    const uint64_t syncs = table.journal_syncs();

    // Unknown id: validated away before journal or table are touched.
    EXPECT_EQ(table.DeleteBatch({5, 99}).code(), StatusCode::kNotFound);
    EXPECT_EQ(table.table().entity_count(), 20u);
    EXPECT_EQ(table.journal_syncs(), syncs);

    // One fsync for the whole delete batch (group commit).
    ASSERT_TRUE(table.DeleteBatch({0, 1, 2, 3, 4}).ok());
    EXPECT_EQ(table.table().entity_count(), 15u);
    EXPECT_EQ(table.journal_syncs(), syncs + 1);
    fingerprint = GroupingFingerprint(table.cinderella());
  }

  // Recovery replays the deletes and reproduces the exact partitioning.
  auto reopened = DurableTable::Open(options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->table().entity_count(), 15u);
  EXPECT_FALSE((*reopened)->table().Get(3).ok());
  EXPECT_TRUE((*reopened)->table().Get(10).ok());
  EXPECT_EQ(GroupingFingerprint((*reopened)->cinderella()), fingerprint);
}

// -- Query stack over a pinned view ------------------------------------------

TEST(ViewQueryTest, ExecutorAndEstimatorMatchTheLiveCatalog) {
  VersionedTable table(MakePartitioner(/*max_size=*/8));
  ASSERT_TRUE(table.InsertBatch(MakeRows(0, 64)).ok());

  const Query query(Synopsis{0, 8});
  const VersionedTable::Snapshot snapshot = table.snapshot();

  QueryExecutor live(table.partitioner().catalog());
  QueryExecutor pinned(snapshot.view());

  const QueryResult from_catalog = live.Execute(query);
  const QueryResult from_view = pinned.Execute(query);
  EXPECT_EQ(from_view.metrics.partitions_total,
            from_catalog.metrics.partitions_total);
  EXPECT_EQ(from_view.metrics.partitions_scanned,
            from_catalog.metrics.partitions_scanned);
  EXPECT_EQ(from_view.metrics.partitions_pruned,
            from_catalog.metrics.partitions_pruned);
  EXPECT_EQ(from_view.metrics.rows_scanned, from_catalog.metrics.rows_scanned);
  EXPECT_EQ(from_view.metrics.rows_matched, from_catalog.metrics.rows_matched);
  EXPECT_EQ(from_view.metrics.cells_read, from_catalog.metrics.cells_read);
  EXPECT_EQ(from_view.metrics.bytes_read, from_catalog.metrics.bytes_read);
  EXPECT_EQ(from_view.cells_materialized, from_catalog.cells_materialized);
  EXPECT_EQ(from_view.selectivity, from_catalog.selectivity);

  const PredicatePtr predicate = IsNotNull(8);
  const QueryResult pred_catalog = live.ExecutePredicate(*predicate);
  const QueryResult pred_view = pinned.ExecutePredicate(*predicate);
  EXPECT_EQ(pred_view.metrics.rows_matched, pred_catalog.metrics.rows_matched);
  EXPECT_EQ(pred_view.metrics.partitions_pruned,
            pred_catalog.metrics.partitions_pruned);

  const SelectivityEstimate est_catalog =
      EstimateSelectivity(table.partitioner().catalog(), query);
  const SelectivityEstimate est_view =
      EstimateSelectivity(snapshot.view(), query);
  EXPECT_EQ(est_view.table_entities, est_catalog.table_entities);
  EXPECT_EQ(est_view.partitions_scanned, est_catalog.partitions_scanned);
  EXPECT_EQ(est_view.partitions_pruned, est_catalog.partitions_pruned);
  EXPECT_EQ(est_view.rows_lower_bound, est_catalog.rows_lower_bound);
  EXPECT_EQ(est_view.rows_upper_bound, est_catalog.rows_upper_bound);
  EXPECT_DOUBLE_EQ(est_view.rows_estimate, est_catalog.rows_estimate);

  EXPECT_EQ(ExplainQuery(snapshot.view(), query),
            ExplainQuery(table.partitioner().catalog(), query));
}

TEST(ViewQueryTest, ParallelScanOverViewMatchesSerial) {
  VersionedTable table(MakePartitioner(/*max_size=*/8));
  ASSERT_TRUE(table.InsertBatch(MakeRows(0, 64)).ok());
  const VersionedTable::Snapshot snapshot = table.snapshot();

  const Query query(Synopsis{0, 16});
  QueryExecutor serial(snapshot.view(), /*scan_threads=*/1);
  QueryExecutor parallel(snapshot.view(), /*scan_threads=*/4);
  const QueryResult a = serial.Execute(query);
  const QueryResult b = parallel.Execute(query);
  EXPECT_EQ(a.metrics.rows_matched, b.metrics.rows_matched);
  EXPECT_EQ(a.metrics.partitions_scanned, b.metrics.partitions_scanned);
  EXPECT_EQ(a.cells_materialized, b.cells_materialized);
  EXPECT_EQ(a.selectivity, b.selectivity);
}

}  // namespace
}  // namespace cinderella
