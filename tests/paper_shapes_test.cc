// Regression gates for the paper's qualitative claims, run at reduced
// scale so they stay fast in CI. Each test encodes one "shape" the
// evaluation (Section V) reports; if a core change breaks a shape, the
// reproduction has regressed even when all unit tests still pass.
//
// Shapes are asserted on the deterministic cost counters (cells read,
// partitions scanned), never on wall time.

#include <memory>

#include <gtest/gtest.h>

#include "baseline/single_partitioner.h"
#include "core/cinderella.h"
#include "core/partitioning_stats.h"
#include "query/executor.h"
#include "workload/dataset_stats.h"
#include "workload/dbpedia_generator.h"
#include "workload/query_workload.h"
#include "workload/tpch/tpch_generator.h"
#include "workload/tpch/tpch_queries.h"

namespace cinderella {
namespace {

class PaperShapesTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    DbpediaConfig config;
    config.num_entities = 10000;
    config.seed = 42;
    dictionary_ = new AttributeDictionary();
    DbpediaGenerator generator(config, dictionary_);
    rows_ = new std::vector<Row>(generator.Generate());
    workload_ = new std::vector<GeneratedQuery>(
        GenerateQueryWorkload(*rows_, 100, QueryWorkloadConfig{}));
  }
  static void TearDownTestSuite() {
    delete rows_;
    delete workload_;
    delete dictionary_;
    rows_ = nullptr;
    workload_ = nullptr;
    dictionary_ = nullptr;
  }

  static std::unique_ptr<Cinderella> Load(double weight, uint64_t max_size) {
    CinderellaConfig config;
    config.weight = weight;
    config.max_size = max_size;
    auto c = std::move(Cinderella::Create(config)).value();
    for (const Row& row : *rows_) {
      EXPECT_TRUE(c->Insert(row).ok());
    }
    return c;
  }

  // `GeneratedQuery::selectivity` is per attribute (matched cells over
  // rows × |q|), which lower-bounds the row-match fraction: a value s
  // admits queries touching up to |q|·s of the rows. The "selective"
  // band is therefore tighter than Figure 5's per-row 10% bucket.
  static constexpr double kSelectiveBand = 0.05;

  // Average cells read per query within a selectivity band.
  static double CellsRead(const PartitionCatalog& catalog, double lo,
                          double hi) {
    QueryExecutor executor(catalog);
    uint64_t cells = 0;
    size_t count = 0;
    for (const GeneratedQuery& q : *workload_) {
      if (q.selectivity < lo || q.selectivity >= hi) continue;
      cells += executor.Execute(q.query).metrics.cells_read;
      ++count;
    }
    EXPECT_GT(count, 0u) << "no queries in band " << lo << "-" << hi;
    return static_cast<double>(cells) / static_cast<double>(count);
  }

  static std::vector<Row>* rows_;
  static std::vector<GeneratedQuery>* workload_;
  static AttributeDictionary* dictionary_;
};

std::vector<Row>* PaperShapesTest::rows_ = nullptr;
std::vector<GeneratedQuery>* PaperShapesTest::workload_ = nullptr;
AttributeDictionary* PaperShapesTest::dictionary_ = nullptr;

// Figure 5's headline: selective queries read far less data under
// Cinderella than on the universal table.
TEST_F(PaperShapesTest, Fig5SelectiveQueriesSpeedUp) {
  auto cinderella = Load(0.5, 500);
  SinglePartitioner universal;
  for (const Row& row : *rows_) {
    ASSERT_TRUE(universal.Insert(row).ok());
  }
  const double partitioned =
      CellsRead(cinderella->catalog(), 0.0, kSelectiveBand);
  const double unpartitioned =
      CellsRead(universal.catalog(), 0.0, kSelectiveBand);
  EXPECT_LT(partitioned * 2.0, unpartitioned)
      << "expected >= 2x cell saving on selective queries";
}

// Figure 5's B-ordering on selective queries: smaller B reads less.
TEST_F(PaperShapesTest, Fig5SmallerLimitHelpsSelectiveQueries) {
  auto b_small = Load(0.5, 500);
  auto b_large = Load(0.5, 5000);
  EXPECT_LT(CellsRead(b_small->catalog(), 0.0, kSelectiveBand),
            CellsRead(b_large->catalog(), 0.0, kSelectiveBand));
}

// Figure 5's overhead side: smaller B needs more partitions united on
// unselective queries.
TEST_F(PaperShapesTest, Fig5SmallerLimitCostsUnselectiveQueries) {
  auto b_small = Load(0.5, 500);
  auto b_large = Load(0.5, 5000);
  auto united = [&](const PartitionCatalog& catalog) {
    QueryExecutor executor(catalog);
    uint64_t scans = 0;
    for (const GeneratedQuery& q : *workload_) {
      if (q.selectivity < 0.5) continue;
      scans += executor.Execute(q.query).metrics.partitions_scanned;
    }
    return scans;
  };
  EXPECT_GT(united(b_small->catalog()), 3 * united(b_large->catalog()));
}

// Figure 6: the lower weight wins on very selective queries.
TEST_F(PaperShapesTest, Fig6LowerWeightHelpsSelectiveQueries) {
  auto w_low = Load(0.2, 5000);
  auto w_high = Load(0.8, 5000);
  EXPECT_LT(CellsRead(w_low->catalog(), 0.0, kSelectiveBand),
            CellsRead(w_high->catalog(), 0.0, kSelectiveBand));
}

// Figure 7(a): partition count explodes below w = 0.2 and collapses at
// medium weights.
TEST_F(PaperShapesTest, Fig7PartitionCountExplosion) {
  const size_t at_0 = Load(0.0, 5000)->catalog().partition_count();
  const size_t at_02 = Load(0.2, 5000)->catalog().partition_count();
  const size_t at_05 = Load(0.5, 5000)->catalog().partition_count();
  EXPECT_GT(at_0, 20 * at_02);
  EXPECT_GT(at_02, at_05);
  EXPECT_LT(at_05, 20u);
}

// Figure 7(c)+(d): every partition carries far fewer attributes than the
// table, and medium weights keep partitions much denser than the raw set.
TEST_F(PaperShapesTest, Fig7AttributesAndSparsenessPerPartition) {
  auto c = Load(0.4, 5000);
  const PartitioningReport report = AnalyzePartitioning(c->catalog());
  EXPECT_LT(report.attributes_per_partition.max, 100.0);
  const DatasetDistribution d = ComputeDatasetDistribution(*rows_, 100);
  EXPECT_LT(report.sparseness_per_partition.median, d.sparseness);
}

// Figure 8: split frequency falls as B grows.
TEST_F(PaperShapesTest, Fig8SplitCountsFallWithB) {
  const uint64_t splits_500 = Load(0.5, 500)->stats().splits;
  const uint64_t splits_5000 = Load(0.5, 5000)->stats().splits;
  const uint64_t splits_50000 = Load(0.5, 50000)->stats().splits;
  EXPECT_GT(splits_500, splits_5000);
  EXPECT_GE(splits_5000, splits_50000);
  EXPECT_EQ(splits_50000, 0u);  // 10k entities never fill B=50000.
}

// Table I: on perfectly regular TPC-H data Cinderella recovers the table
// schema exactly, at every tested B.
TEST(PaperShapesTpchTest, TableISchemaRecovery) {
  TpchGeneratorConfig config;
  config.scale_factor = 0.002;
  AttributeDictionary dictionary;
  TpchGenerator generator(config, &dictionary);
  const auto rows = generator.Generate();
  for (uint64_t max_size : {uint64_t{200}, uint64_t{2000}}) {
    CinderellaConfig cc;
    cc.weight = 0.5;
    cc.max_size = max_size;
    cc.use_synopsis_index = true;
    auto c = std::move(Cinderella::Create(cc)).value();
    for (const Row& row : rows) {
      ASSERT_TRUE(c->Insert(row).ok());
    }
    c->catalog().ForEachPartition([&](const Partition& partition) {
      TpchTable first = TpchTableOfEntity(
          partition.segment().rows().front().id());
      for (const Row& row : partition.segment().rows()) {
        EXPECT_EQ(TpchTableOfEntity(row.id()), first)
            << "mixed-table partition at B=" << max_size;
      }
    });
  }
}

// Table I: shuffled arrival order must not break schema recovery (the
// paper loads table by table; online means order-independence matters).
TEST(PaperShapesTpchTest, SchemaRecoveryIsOrderIndependent) {
  TpchGeneratorConfig config;
  config.scale_factor = 0.002;
  config.shuffle = true;
  AttributeDictionary dictionary;
  TpchGenerator generator(config, &dictionary);
  const auto rows = generator.Generate();
  CinderellaConfig cc;
  cc.weight = 0.5;
  cc.max_size = 2000;
  cc.use_synopsis_index = true;
  auto c = std::move(Cinderella::Create(cc)).value();
  for (const Row& row : rows) {
    ASSERT_TRUE(c->Insert(row).ok());
  }
  c->catalog().ForEachPartition([&](const Partition& partition) {
    TpchTable first =
        TpchTableOfEntity(partition.segment().rows().front().id());
    for (const Row& row : partition.segment().rows()) {
      EXPECT_EQ(TpchTableOfEntity(row.id()), first);
    }
  });
}

}  // namespace
}  // namespace cinderella
