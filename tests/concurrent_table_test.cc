// Stress tests for the thread-safe table wrapper: one ingestion thread,
// several query threads, consistency of the final state.

#include <atomic>
#include <memory>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/cinderella.h"
#include "core/concurrent_table.h"
#include "query/executor.h"

namespace cinderella {
namespace {

Row MakeRow(EntityId id, std::initializer_list<AttributeId> attrs) {
  Row row(id);
  for (AttributeId a : attrs) row.Set(a, Value(int64_t{1}));
  return row;
}

std::unique_ptr<ConcurrentTable> MakeTable() {
  CinderellaConfig config;
  config.weight = 0.4;
  config.max_size = 64;
  return std::make_unique<ConcurrentTable>(
      std::move(Cinderella::Create(config)).value());
}

TEST(ConcurrentTableTest, BasicOperations) {
  auto table = MakeTable();
  ASSERT_TRUE(table->Insert(MakeRow(1, {0, 1})).ok());
  ASSERT_TRUE(table->Update(MakeRow(1, {0, 2})).ok());
  auto row = table->Get(1);
  ASSERT_TRUE(row.ok());
  EXPECT_TRUE(row->Has(2));
  EXPECT_EQ(table->entity_count(), 1u);
  ASSERT_TRUE(table->Delete(1).ok());
  EXPECT_FALSE(table->Get(1).ok());
}

TEST(ConcurrentTableTest, QueryUnderReadLock) {
  auto table = MakeTable();
  for (EntityId id = 0; id < 40; ++id) {
    ASSERT_TRUE(
        table->Insert(MakeRow(id, {id % 2 == 0 ? AttributeId{0}
                                               : AttributeId{10}}))
            .ok());
  }
  const QueryResult result =
      table->WithReadLock([&](const PartitionCatalog& catalog) {
        QueryExecutor executor(catalog);
        return executor.Execute(Query(Synopsis{0}));
      });
  EXPECT_EQ(result.metrics.rows_matched, 20u);
}

TEST(ConcurrentTableTest, WriterAndReadersStress) {
  auto table = MakeTable();
  constexpr EntityId kTotal = 4000;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> reads{0};

  std::thread writer([&] {
    for (EntityId id = 0; id < kTotal; ++id) {
      const AttributeId base = static_cast<AttributeId>((id % 4) * 10);
      ASSERT_TRUE(table->Insert(MakeRow(id, {base, base + 1})).ok());
      if (id % 7 == 6) {
        ASSERT_TRUE(table->Delete(id - 3).ok());
      }
      if (id % 11 == 10) {
        ASSERT_TRUE(table->Update(MakeRow(id, {base, base + 2})).ok());
      }
    }
    done = true;
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      uint64_t local = 0;
      while (!done.load(std::memory_order_relaxed)) {
        const Query query(
            Synopsis{static_cast<AttributeId>((r % 4) * 10)});
        const QueryResult result =
            table->WithReadLock([&](const PartitionCatalog& catalog) {
              QueryExecutor executor(catalog);
              return executor.Execute(query);
            });
        // Sanity under concurrency: matches never exceed scanned rows.
        ASSERT_LE(result.metrics.rows_matched, result.metrics.rows_scanned);
        (void)table->Get(static_cast<EntityId>(local % kTotal));
        ++local;
        // Back off so continuous shared locks cannot starve the writer
        // (pthread rwlocks may prefer readers).
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      reads += local;
    });
  }

  writer.join();
  for (auto& reader : readers) reader.join();
  EXPECT_GT(reads.load(), 0u);

  // Final state is exactly what the writer built.
  const EntityId deletions = kTotal / 7;
  EXPECT_EQ(table->entity_count(), kTotal - deletions);
  // And structurally sound: every partition non-empty, bindings match.
  table->WithReadLock([&](const PartitionCatalog& catalog) {
    size_t rows = 0;
    catalog.ForEachPartition([&](const Partition& partition) {
      EXPECT_GT(partition.entity_count(), 0u);
      rows += partition.entity_count();
    });
    EXPECT_EQ(rows, catalog.entity_count());
    return 0;
  });
}

TEST(ConcurrentTableTest, ParallelReadersShareTheLock) {
  auto table = MakeTable();
  for (EntityId id = 0; id < 100; ++id) {
    ASSERT_TRUE(table->Insert(MakeRow(id, {0, 1})).ok());
  }
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      table->WithReadLock([&](const PartitionCatalog& catalog) {
        const int now = ++concurrent;
        int expected = peak.load();
        while (now > expected &&
               !peak.compare_exchange_weak(expected, now)) {
        }
        // Hold the shared lock until another reader overlaps (bounded):
        // with an exclusive lock this would deadlock-free still pass via
        // the timeout, but peak would stay 1 and fail the assertion.
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(2);
        while (peak.load() < 2 &&
               std::chrono::steady_clock::now() < deadline) {
          std::this_thread::yield();
        }
        EXPECT_GT(catalog.entity_count(), 0u);
        --concurrent;
        return 0;
      });
    });
  }
  for (auto& reader : readers) reader.join();
  // At least two readers overlapped (shared lock admits them together).
  EXPECT_GE(peak.load(), 2);
}

// Regression for the WithReadLock lifetime hazard: `const Row*` collected
// under the shared lock dangle once a writer reshuffles the segments.
// QueryOwnedRows copies while the lock is held, so its rows stay valid
// through arbitrary later mutations.
TEST(ConcurrentTableTest, QueryOwnedRowsSurvivesLaterWrites) {
  auto table = MakeTable();
  for (EntityId id = 0; id < 60; ++id) {
    ASSERT_TRUE(
        table->Insert(MakeRow(id, {0, static_cast<AttributeId>(id % 5)}))
            .ok());
  }

  const PredicatePtr predicate = IsNotNull(0);
  const OwnedQueryResult owned = QueryOwnedRows(*table, *predicate);
  ASSERT_EQ(owned.result.metrics.rows_matched, 60u);
  ASSERT_EQ(owned.rows.size(), 60u);

  // Mutate heavily: deletes force row moves and partition drops; inserts
  // reallocate segment storage. Borrowed pointers from the scan would now
  // dangle; the owned copies must not.
  for (EntityId id = 0; id < 60; id += 2) {
    ASSERT_TRUE(table->Delete(id).ok());
  }
  for (EntityId id = 100; id < 200; ++id) {
    ASSERT_TRUE(table->Insert(MakeRow(id, {0, 1, 2})).ok());
  }

  // Every copied row still carries the state captured at scan time,
  // including rows whose originals were since deleted.
  for (const Row& row : owned.rows) {
    EXPECT_LT(row.id(), 60u);
    EXPECT_TRUE(row.Has(0));
    EXPECT_TRUE(row.Has(static_cast<AttributeId>(row.id() % 5)));
  }
}

}  // namespace
}  // namespace cinderella
