// Tests for the fixed worker pool behind the parallel scan engine:
// exactly-once chunk coverage, deterministic chunk indexing, the inline
// serial fallback at degree 1, reuse across batches, and degree
// resolution from config/environment.

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace cinderella {
namespace {

TEST(ThreadPoolTest, NumChunks) {
  EXPECT_EQ(ThreadPool::NumChunks(0, 16), 0u);
  EXPECT_EQ(ThreadPool::NumChunks(1, 16), 1u);
  EXPECT_EQ(ThreadPool::NumChunks(16, 16), 1u);
  EXPECT_EQ(ThreadPool::NumChunks(17, 16), 2u);
  EXPECT_EQ(ThreadPool::NumChunks(100, 1), 100u);
  EXPECT_EQ(ThreadPool::NumChunks(5, 0), 5u);  // chunk 0 behaves as 1.
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  for (int degree : {1, 2, 4, 8}) {
    ThreadPool pool(degree);
    EXPECT_EQ(pool.degree(), degree);
    const size_t items = 1237;
    std::vector<std::atomic<int>> hits(items);
    for (auto& h : hits) h.store(0);
    pool.ParallelFor(items, 10, [&](size_t begin, size_t end, size_t) {
      for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (size_t i = 0; i < items; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " degree " << degree;
    }
  }
}

TEST(ThreadPoolTest, ChunkIndexIdentifiesRange) {
  ThreadPool pool(4);
  const size_t items = 103;
  const size_t chunk = 8;
  const size_t num_chunks = ThreadPool::NumChunks(items, chunk);
  std::vector<std::pair<size_t, size_t>> ranges(num_chunks);
  pool.ParallelFor(items, chunk,
                   [&](size_t begin, size_t end, size_t chunk_index) {
                     ASSERT_LT(chunk_index, num_chunks);
                     ranges[chunk_index] = {begin, end};
                   });
  for (size_t c = 0; c < num_chunks; ++c) {
    EXPECT_EQ(ranges[c].first, c * chunk);
    EXPECT_EQ(ranges[c].second, std::min(items, (c + 1) * chunk));
  }
}

TEST(ThreadPoolTest, DegreeOneRunsInlineInOrder) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<size_t> order;
  pool.ParallelFor(50, 7, [&](size_t begin, size_t, size_t chunk_index) {
    // Inline execution: same thread, ascending chunk order, so unprotected
    // access to `order` is safe by construction.
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(begin, chunk_index * 7);
    order.push_back(chunk_index);
  });
  ASSERT_EQ(order.size(), ThreadPool::NumChunks(50, 7));
  for (size_t c = 0; c < order.size(); ++c) EXPECT_EQ(order[c], c);
}

TEST(ThreadPoolTest, ReusableAcrossManyBatches) {
  ThreadPool pool(3);
  std::atomic<uint64_t> total{0};
  for (int batch = 0; batch < 200; ++batch) {
    pool.ParallelFor(64, 4, [&](size_t begin, size_t end, size_t) {
      uint64_t local = 0;
      for (size_t i = begin; i < end; ++i) local += i;
      total.fetch_add(local);
    });
  }
  EXPECT_EQ(total.load(), 200u * (64u * 63u / 2));
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.ParallelFor(0, 8, [&](size_t, size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelReductionViaPerChunkSlots) {
  // The merge pattern used by the scan engine: per-chunk outputs merged in
  // ascending chunk order after the batch.
  ThreadPool pool(4);
  const size_t items = 1000;
  const size_t chunk = 32;
  std::vector<uint64_t> partial(ThreadPool::NumChunks(items, chunk), 0);
  pool.ParallelFor(items, chunk, [&](size_t begin, size_t end, size_t c) {
    for (size_t i = begin; i < end; ++i) partial[c] += i;
  });
  const uint64_t total = std::accumulate(partial.begin(), partial.end(),
                                         uint64_t{0});
  EXPECT_EQ(total, uint64_t{items} * (items - 1) / 2);
}

TEST(ThreadPoolTest, ResolveDegreeConfiguredWins) {
  EXPECT_EQ(ThreadPool::ResolveDegree(3), 3);
  EXPECT_EQ(ThreadPool::ResolveDegree(1), 1);
}

TEST(ThreadPoolTest, ResolveDegreeFromEnvironment) {
  ASSERT_EQ(setenv("CINDERELLA_SCAN_THREADS", "5", /*overwrite=*/1), 0);
  EXPECT_EQ(ThreadPool::ResolveDegree(0), 5);
  // Explicit configuration still beats the environment.
  EXPECT_EQ(ThreadPool::ResolveDegree(2), 2);
  ASSERT_EQ(unsetenv("CINDERELLA_SCAN_THREADS"), 0);
  EXPECT_GE(ThreadPool::ResolveDegree(0), 1);  // Falls back to hardware.
}

}  // namespace
}  // namespace cinderella
