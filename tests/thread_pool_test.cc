// Tests for the fixed worker pool behind the parallel scan engine:
// exactly-once chunk coverage, deterministic chunk indexing, the inline
// serial fallback at degree 1, reuse across batches, and degree
// resolution from config/environment.

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace cinderella {
namespace {

TEST(ThreadPoolTest, NumChunks) {
  EXPECT_EQ(ThreadPool::NumChunks(0, 16), 0u);
  EXPECT_EQ(ThreadPool::NumChunks(1, 16), 1u);
  EXPECT_EQ(ThreadPool::NumChunks(16, 16), 1u);
  EXPECT_EQ(ThreadPool::NumChunks(17, 16), 2u);
  EXPECT_EQ(ThreadPool::NumChunks(100, 1), 100u);
  EXPECT_EQ(ThreadPool::NumChunks(5, 0), 5u);  // chunk 0 behaves as 1.
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  for (int degree : {1, 2, 4, 8}) {
    ThreadPool pool(degree);
    EXPECT_EQ(pool.degree(), degree);
    const size_t items = 1237;
    std::vector<std::atomic<int>> hits(items);
    for (auto& h : hits) h.store(0);
    pool.ParallelFor(items, 10, [&](size_t begin, size_t end, size_t) {
      for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (size_t i = 0; i < items; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " degree " << degree;
    }
  }
}

TEST(ThreadPoolTest, ChunkIndexIdentifiesRange) {
  ThreadPool pool(4);
  const size_t items = 103;
  const size_t chunk = 8;
  const size_t num_chunks = ThreadPool::NumChunks(items, chunk);
  std::vector<std::pair<size_t, size_t>> ranges(num_chunks);
  pool.ParallelFor(items, chunk,
                   [&](size_t begin, size_t end, size_t chunk_index) {
                     ASSERT_LT(chunk_index, num_chunks);
                     ranges[chunk_index] = {begin, end};
                   });
  for (size_t c = 0; c < num_chunks; ++c) {
    EXPECT_EQ(ranges[c].first, c * chunk);
    EXPECT_EQ(ranges[c].second, std::min(items, (c + 1) * chunk));
  }
}

TEST(ThreadPoolTest, DegreeOneRunsInlineInOrder) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<size_t> order;
  pool.ParallelFor(50, 7, [&](size_t begin, size_t, size_t chunk_index) {
    // Inline execution: same thread, ascending chunk order, so unprotected
    // access to `order` is safe by construction.
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(begin, chunk_index * 7);
    order.push_back(chunk_index);
  });
  ASSERT_EQ(order.size(), ThreadPool::NumChunks(50, 7));
  for (size_t c = 0; c < order.size(); ++c) EXPECT_EQ(order[c], c);
}

TEST(ThreadPoolTest, ReusableAcrossManyBatches) {
  ThreadPool pool(3);
  std::atomic<uint64_t> total{0};
  for (int batch = 0; batch < 200; ++batch) {
    pool.ParallelFor(64, 4, [&](size_t begin, size_t end, size_t) {
      uint64_t local = 0;
      for (size_t i = begin; i < end; ++i) local += i;
      total.fetch_add(local);
    });
  }
  EXPECT_EQ(total.load(), 200u * (64u * 63u / 2));
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.ParallelFor(0, 8, [&](size_t, size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelReductionViaPerChunkSlots) {
  // The merge pattern used by the scan engine: per-chunk outputs merged in
  // ascending chunk order after the batch.
  ThreadPool pool(4);
  const size_t items = 1000;
  const size_t chunk = 32;
  std::vector<uint64_t> partial(ThreadPool::NumChunks(items, chunk), 0);
  pool.ParallelFor(items, chunk, [&](size_t begin, size_t end, size_t c) {
    for (size_t i = begin; i < end; ++i) partial[c] += i;
  });
  const uint64_t total = std::accumulate(partial.begin(), partial.end(),
                                         uint64_t{0});
  EXPECT_EQ(total, uint64_t{items} * (items - 1) / 2);
}

TEST(ThreadPoolTest, ResolveDegreeConfiguredWins) {
  EXPECT_EQ(ThreadPool::ResolveDegree(3), 3);
  EXPECT_EQ(ThreadPool::ResolveDegree(1), 1);
}

TEST(ThreadPoolTest, ResolveDegreeFromEnvironment) {
  // Resolution is cached per process; drop the cache around every env
  // change so this test sees fresh reads.
  ThreadPool::ResetResolutionCacheForTesting();
  ASSERT_EQ(setenv("CINDERELLA_SCAN_THREADS", "5", /*overwrite=*/1), 0);
  EXPECT_EQ(ThreadPool::ResolveDegree(0), 5);
  // Explicit configuration still beats the environment.
  EXPECT_EQ(ThreadPool::ResolveDegree(2), 2);
  ASSERT_EQ(unsetenv("CINDERELLA_SCAN_THREADS"), 0);
  ThreadPool::ResetResolutionCacheForTesting();
  EXPECT_GE(ThreadPool::ResolveDegree(0), 1);  // Falls back to hardware.
}

TEST(ThreadPoolTest, ResolveDegreeIsCachedUntilReset) {
  ThreadPool::ResetResolutionCacheForTesting();
  ASSERT_EQ(unsetenv("CINDERELLA_SCAN_THREADS"), 0);
  const int resolved = ThreadPool::ResolveDegree(0);
  // A later env change is invisible until the cache is dropped: the hot
  // path (per-query executor construction) never re-reads the env.
  ASSERT_EQ(setenv("CINDERELLA_SCAN_THREADS", "7", /*overwrite=*/1), 0);
  EXPECT_EQ(ThreadPool::ResolveDegree(0), resolved);
  ThreadPool::ResetResolutionCacheForTesting();
  EXPECT_EQ(ThreadPool::ResolveDegree(0), 7);
  ASSERT_EQ(unsetenv("CINDERELLA_SCAN_THREADS"), 0);
  ThreadPool::ResetResolutionCacheForTesting();
}

TEST(ThreadPoolTest, ResolveScanChunk) {
  ThreadPool::ResetResolutionCacheForTesting();
  ASSERT_EQ(unsetenv("CINDERELLA_SCAN_CHUNK"), 0);
  EXPECT_EQ(ThreadPool::ResolveScanChunk(9), 9u);  // Configured wins.
  EXPECT_EQ(ThreadPool::ResolveScanChunk(0), ThreadPool::kDefaultScanChunk);
  ASSERT_EQ(setenv("CINDERELLA_SCAN_CHUNK", "32", /*overwrite=*/1), 0);
  ThreadPool::ResetResolutionCacheForTesting();
  EXPECT_EQ(ThreadPool::ResolveScanChunk(0), 32u);
  ASSERT_EQ(unsetenv("CINDERELLA_SCAN_CHUNK"), 0);
  ThreadPool::ResetResolutionCacheForTesting();
}

TEST(ThreadPoolTest, DynamicChunkBoundsAreAGuidedSchedule) {
  // Pure function of (items, min_chunk, degree): ascending, ends at
  // items, early chunks large, no chunk below min_chunk except possibly
  // the implicit tail remainder.
  const std::vector<size_t> bounds =
      ThreadPool::DynamicChunkBounds(1000, 4, 4);
  ASSERT_FALSE(bounds.empty());
  EXPECT_EQ(bounds.back(), 1000u);
  EXPECT_EQ(bounds.size(), ThreadPool::NumDynamicChunks(1000, 4, 4));
  size_t prev = 0;
  size_t prev_size = bounds[0];
  for (const size_t b : bounds) {
    ASSERT_GT(b, prev);
    const size_t size = b - prev;
    // Guided: chunk sizes never grow along the schedule.
    EXPECT_LE(size, prev_size);
    prev_size = size;
    prev = b;
  }
  // First chunk is ~items / (2 * degree).
  EXPECT_EQ(bounds[0], 1000u / 8);

  // Degree 1 degenerates to one chunk; so does a tiny range.
  EXPECT_EQ(ThreadPool::DynamicChunkBounds(1000, 4, 1).size(), 1u);
  EXPECT_EQ(ThreadPool::DynamicChunkBounds(3, 4, 8).size(), 1u);
  EXPECT_EQ(ThreadPool::DynamicChunkBounds(0, 4, 4).size(), 0u);
}

TEST(ThreadPoolTest, ParallelForDynamicCoversEveryIndexExactlyOnce) {
  for (int degree : {1, 2, 4, 8}) {
    ThreadPool pool(degree);
    const size_t items = 1237;
    std::vector<std::atomic<int>> hits(items);
    for (auto& h : hits) h.store(0);
    pool.ParallelForDynamic(items, 4,
                            [&](size_t begin, size_t end, size_t) {
                              for (size_t i = begin; i < end; ++i) {
                                hits[i].fetch_add(1);
                              }
                            });
    for (size_t i = 0; i < items; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " degree " << degree;
    }
  }
}

TEST(ThreadPoolTest, ParallelForDynamicChunkIndexMatchesSchedule) {
  ThreadPool pool(4);
  const size_t items = 511;
  const std::vector<size_t> bounds =
      ThreadPool::DynamicChunkBounds(items, 4, 4);
  std::vector<std::pair<size_t, size_t>> ranges(bounds.size());
  pool.ParallelForDynamic(items, 4,
                          [&](size_t begin, size_t end, size_t c) {
                            ASSERT_LT(c, ranges.size());
                            ranges[c] = {begin, end};
                          });
  size_t prev = 0;
  for (size_t c = 0; c < bounds.size(); ++c) {
    EXPECT_EQ(ranges[c].first, prev);
    EXPECT_EQ(ranges[c].second, bounds[c]);
    prev = bounds[c];
  }
}

TEST(ThreadPoolTest, ParallelForDynamicReductionIsDeterministic) {
  // The scan engine's merge pattern on the dynamic schedule: per-chunk
  // slots keyed by the deterministic chunk index, merged in order, must
  // equal the serial result at any degree.
  const size_t items = 2000;
  std::vector<uint64_t> expected;
  for (size_t i = 0; i < items; ++i) expected.push_back(i * 31 + 7);

  for (int degree : {2, 4, 8}) {
    ThreadPool pool(degree);
    const size_t num_chunks =
        ThreadPool::NumDynamicChunks(items, 4, pool.degree());
    std::vector<std::vector<uint64_t>> slots(num_chunks);
    pool.ParallelForDynamic(items, 4,
                            [&](size_t begin, size_t end, size_t c) {
                              for (size_t i = begin; i < end; ++i) {
                                slots[c].push_back(i * 31 + 7);
                              }
                            });
    std::vector<uint64_t> merged;
    for (const auto& slot : slots) {
      merged.insert(merged.end(), slot.begin(), slot.end());
    }
    EXPECT_EQ(merged, expected) << "degree " << degree;
  }
}

}  // namespace
}  // namespace cinderella
