// Tests for the metadata-only selectivity estimator and EXPLAIN: exact
// bounds, single-attribute exactness, and estimate quality on generated
// data (property sweep against the real executor).

#include <memory>

#include <gtest/gtest.h>

#include "core/cinderella.h"
#include "query/estimator.h"
#include "query/executor.h"
#include "workload/dbpedia_generator.h"
#include "workload/query_workload.h"

namespace cinderella {
namespace {

Row MakeRow(EntityId id, std::initializer_list<AttributeId> attrs) {
  Row row(id);
  for (AttributeId a : attrs) row.Set(a, Value(int64_t{1}));
  return row;
}

TEST(EstimatorTest, SingleAttributeIsExact) {
  CinderellaConfig config;
  config.weight = 0.5;
  config.max_size = 100;
  auto c = std::move(Cinderella::Create(config)).value();
  for (EntityId id = 0; id < 30; ++id) {
    ASSERT_TRUE(
        c->Insert(MakeRow(id, {id % 3 == 0 ? AttributeId{0} : AttributeId{1}}))
            .ok());
  }
  const Query query(Synopsis{0});
  const SelectivityEstimate estimate =
      EstimateSelectivity(c->catalog(), query);
  QueryExecutor executor(c->catalog());
  const QueryResult actual = executor.Execute(query);
  EXPECT_EQ(estimate.rows_lower_bound, actual.metrics.rows_matched);
  EXPECT_EQ(estimate.rows_upper_bound, actual.metrics.rows_matched);
  EXPECT_DOUBLE_EQ(estimate.rows_estimate,
                   static_cast<double>(actual.metrics.rows_matched));
  EXPECT_EQ(estimate.table_entities, 30u);
}

TEST(EstimatorTest, PruningCountsMatchExecutor) {
  CinderellaConfig config;
  config.weight = 0.3;
  config.max_size = 100;
  auto c = std::move(Cinderella::Create(config)).value();
  for (EntityId id = 0; id < 40; ++id) {
    const AttributeId base = static_cast<AttributeId>((id % 2) * 10);
    ASSERT_TRUE(c->Insert(MakeRow(id, {base, base + 1})).ok());
  }
  const Query query(Synopsis{10});
  const SelectivityEstimate estimate =
      EstimateSelectivity(c->catalog(), query);
  QueryExecutor executor(c->catalog());
  const QueryResult actual = executor.Execute(query);
  EXPECT_EQ(estimate.partitions_scanned, actual.metrics.partitions_scanned);
  EXPECT_EQ(estimate.partitions_pruned, actual.metrics.partitions_pruned);
}

TEST(EstimatorTest, EmptyCatalog) {
  PartitionCatalog catalog;
  const SelectivityEstimate estimate =
      EstimateSelectivity(catalog, Query(Synopsis{0}));
  EXPECT_EQ(estimate.table_entities, 0u);
  EXPECT_DOUBLE_EQ(estimate.selectivity_estimate(), 0.0);
}

TEST(EstimatorTest, BoundsAlwaysHoldOnGeneratedWorkload) {
  DbpediaConfig config;
  config.num_entities = 5000;
  config.seed = 11;
  AttributeDictionary dictionary;
  DbpediaGenerator generator(config, &dictionary);
  const auto rows = generator.Generate();

  CinderellaConfig cc;
  cc.weight = 0.2;
  cc.max_size = 500;
  auto c = std::move(Cinderella::Create(cc)).value();
  for (const Row& row : rows) {
    ASSERT_TRUE(c->Insert(row).ok());
  }
  QueryExecutor executor(c->catalog());

  const auto workload = GenerateQueryWorkload(rows, 100, QueryWorkloadConfig{});
  double total_error = 0.0;
  for (const GeneratedQuery& q : workload) {
    const SelectivityEstimate estimate =
        EstimateSelectivity(c->catalog(), q.query);
    const QueryResult actual = executor.Execute(q.query);
    const uint64_t matched = actual.metrics.rows_matched;
    EXPECT_LE(estimate.rows_lower_bound, matched) << q.query.ToString();
    EXPECT_GE(estimate.rows_upper_bound, matched) << q.query.ToString();
    EXPECT_GE(estimate.rows_estimate,
              static_cast<double>(estimate.rows_lower_bound) - 1e-6);
    EXPECT_LE(estimate.rows_estimate,
              static_cast<double>(estimate.rows_upper_bound) + 1e-6);
    total_error += std::abs(estimate.rows_estimate -
                            static_cast<double>(matched));
  }
  // The independence estimate should be decent on average (within 5% of
  // the table size across the workload).
  EXPECT_LT(total_error / workload.size(), 0.05 * rows.size());
}

TEST(GroupCardinalityTest, BoundsHoldAndPruningMatches) {
  CinderellaConfig config;
  config.weight = 0.3;
  config.max_size = 100;
  auto c = std::move(Cinderella::Create(config)).value();
  // 40 entities: even ids carry attribute 0 (20 carriers), odd ids a
  // disjoint schema.
  for (EntityId id = 0; id < 40; ++id) {
    const AttributeId base = static_cast<AttributeId>((id % 2) * 10);
    ASSERT_TRUE(c->Insert(MakeRow(id, {base, base + 1})).ok());
  }
  const GroupCardinalityEstimate estimate =
      EstimateGroupCardinality(c->catalog(), /*attribute=*/0);
  EXPECT_EQ(estimate.table_entities, 40u);
  EXPECT_EQ(estimate.carrier_rows, 20u);  // Exactly the carriers.
  EXPECT_EQ(estimate.groups_upper_bound(), 20u);
  EXPECT_GT(estimate.partitions_carrying, 0u);
  EXPECT_GE(estimate.carrier_rows, estimate.max_partition_carriers);
}

TEST(GroupCardinalityTest, AbsentAttributeHasZeroBound) {
  CinderellaConfig config;
  config.weight = 0.5;
  config.max_size = 100;
  auto c = std::move(Cinderella::Create(config)).value();
  for (EntityId id = 0; id < 10; ++id) {
    ASSERT_TRUE(c->Insert(MakeRow(id, {1, 2})).ok());
  }
  const GroupCardinalityEstimate estimate =
      EstimateGroupCardinality(c->catalog(), /*attribute=*/99);
  EXPECT_EQ(estimate.carrier_rows, 0u);
  EXPECT_EQ(estimate.partitions_carrying, 0u);
  EXPECT_EQ(estimate.table_entities, 10u);
}

TEST(ExplainTest, RendersPlan) {
  CinderellaConfig config;
  config.weight = 0.3;
  config.max_size = 100;
  auto c = std::move(Cinderella::Create(config)).value();
  for (EntityId id = 0; id < 20; ++id) {
    const AttributeId base = static_cast<AttributeId>((id % 2) * 10);
    ASSERT_TRUE(c->Insert(MakeRow(id, {base, base + 1})).ok());
  }
  const std::string plan = ExplainQuery(c->catalog(), Query(Synopsis{10}));
  EXPECT_NE(plan.find("scan 1 partitions, prune 1"), std::string::npos)
      << plan;
  EXPECT_NE(plan.find("scan partition"), std::string::npos);
  EXPECT_NE(plan.find("selectivity"), std::string::npos);
}

TEST(ExplainTest, CapsPartitionListing) {
  CinderellaConfig config;
  config.weight = 0.0;  // One partition per distinct schema.
  config.max_size = 100;
  auto c = std::move(Cinderella::Create(config)).value();
  for (EntityId id = 0; id < 30; ++id) {
    // Every entity shares attr 0 but has a unique second attr.
    ASSERT_TRUE(
        c->Insert(MakeRow(id, {0, static_cast<AttributeId>(1 + id)})).ok());
  }
  const std::string plan =
      ExplainQuery(c->catalog(), Query(Synopsis{0}), /*max_partitions=*/5);
  EXPECT_NE(plan.find("... 25 more partitions"), std::string::npos) << plan;
}

}  // namespace
}  // namespace cinderella
