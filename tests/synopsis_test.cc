// Unit and property tests for the Synopsis bitset algebra and the
// attribute dictionary.

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "synopsis/attribute_dictionary.h"
#include "synopsis/synopsis.h"

namespace cinderella {
namespace {

TEST(SynopsisTest, StartsEmpty) {
  Synopsis s;
  EXPECT_TRUE(s.Empty());
  EXPECT_EQ(s.Count(), 0u);
  EXPECT_FALSE(s.Contains(0));
}

TEST(SynopsisTest, AddContainsRemove) {
  Synopsis s;
  s.Add(3);
  s.Add(70);  // Crosses a word boundary.
  EXPECT_TRUE(s.Contains(3));
  EXPECT_TRUE(s.Contains(70));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_EQ(s.Count(), 2u);
  s.Remove(3);
  EXPECT_FALSE(s.Contains(3));
  EXPECT_EQ(s.Count(), 1u);
}

TEST(SynopsisTest, AddIsIdempotent) {
  Synopsis s;
  s.Add(5);
  s.Add(5);
  EXPECT_EQ(s.Count(), 1u);
}

TEST(SynopsisTest, RemoveAbsentIsNoop) {
  Synopsis s{1, 2};
  s.Remove(99);
  EXPECT_EQ(s.Count(), 2u);
}

TEST(SynopsisTest, InitializerListAndFromIds) {
  Synopsis a{1, 5, 9};
  Synopsis b = Synopsis::FromIds({1, 5, 9});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Count(), 3u);
}

TEST(SynopsisTest, SetCardinalities) {
  Synopsis e{0, 1, 2, 3};
  Synopsis p{2, 3, 4, 5, 6};
  EXPECT_EQ(e.IntersectCount(p), 2u);  // {2,3}
  EXPECT_EQ(e.UnionCount(p), 7u);      // {0..6}
  EXPECT_EQ(e.XorCount(p), 5u);        // {0,1,4,5,6}
  EXPECT_EQ(e.AndNotCount(p), 2u);     // {0,1}
  EXPECT_EQ(p.AndNotCount(e), 3u);     // {4,5,6}
}

TEST(SynopsisTest, OperationsAcrossDifferentLengths) {
  Synopsis small{1};
  Synopsis large{1, 200};
  EXPECT_EQ(small.IntersectCount(large), 1u);
  EXPECT_EQ(small.UnionCount(large), 2u);
  EXPECT_EQ(large.AndNotCount(small), 1u);
  EXPECT_EQ(small.AndNotCount(large), 0u);
  EXPECT_EQ(small.XorCount(large), 1u);
  EXPECT_TRUE(small.IsSubsetOf(large));
  EXPECT_FALSE(large.IsSubsetOf(small));
}

TEST(SynopsisTest, IntersectsFastPath) {
  Synopsis a{10, 90};
  Synopsis b{90};
  Synopsis c{11};
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_FALSE(Synopsis().Intersects(a));
}

TEST(SynopsisTest, UnionWithAccumulates) {
  Synopsis a{1, 2};
  Synopsis b{2, 300};
  a.UnionWith(b);
  EXPECT_EQ(a.Count(), 3u);
  EXPECT_TRUE(a.Contains(300));
}

TEST(SynopsisTest, ToIdsSortedAscending) {
  Synopsis s{300, 2, 65, 7};
  const std::vector<AttributeId> ids = s.ToIds();
  EXPECT_EQ(ids, (std::vector<AttributeId>{2, 7, 65, 300}));
}

TEST(SynopsisTest, ToStringFormat) {
  EXPECT_EQ(Synopsis({1, 5}).ToString(), "{1, 5}");
  EXPECT_EQ(Synopsis().ToString(), "{}");
}

TEST(SynopsisTest, EqualityIgnoresTrailingZeroWords) {
  Synopsis a{1};
  Synopsis b{1, 500};
  b.Remove(500);
  EXPECT_EQ(a, b);
  b.Add(2);
  EXPECT_NE(a, b);
}

TEST(SynopsisTest, ClearEmpties) {
  Synopsis s{1, 2, 3};
  s.Clear();
  EXPECT_TRUE(s.Empty());
}

// Regression for the O(1) Empty(): removing the last id must report empty
// even when the set once spanned many words (the trailing-zero-word shrink
// invariant is what makes the words_.empty() check valid).
TEST(SynopsisTest, EmptyAfterRemovingHighIds) {
  Synopsis s;
  EXPECT_TRUE(s.Empty());
  s.Add(1000);  // ~16 words of capacity.
  EXPECT_FALSE(s.Empty());
  s.Remove(1000);
  EXPECT_TRUE(s.Empty());
  s.Add(3);
  s.Add(700);
  s.Remove(700);
  EXPECT_FALSE(s.Empty());  // {3} survives in word 0.
  s.Remove(3);
  EXPECT_TRUE(s.Empty());
  // Union with an empty synopsis keeps emptiness observable.
  Synopsis other;
  s.UnionWith(other);
  EXPECT_TRUE(s.Empty());
}

TEST(SynopsisTest, RateCountsMatchesHandComputedSets) {
  Synopsis e{0, 1, 2, 3};
  Synopsis p{2, 3, 4, 5, 6};
  const Synopsis::RatingCounts counts = e.RateCounts(p);
  EXPECT_EQ(counts.intersect, 2u);   // {2,3}
  EXPECT_EQ(counts.only_this, 2u);   // {0,1}
  EXPECT_EQ(counts.only_other, 3u);  // {4,5,6}
  EXPECT_EQ(counts.union_count(), e.UnionCount(p));
}

// The fused kernel must agree with the three separate count methods for
// every operand shape, in particular synopses of different word lengths
// (including empty operands and ids far beyond the other's capacity).
TEST(SynopsisPropertyTest, RateCountsEquivalentToThreePasses) {
  Rng rng(2024);
  for (int trial = 0; trial < 300; ++trial) {
    Synopsis a;
    Synopsis b;
    // Deliberately mismatched universes so one side regularly owns tail
    // words the other lacks.
    const size_t universe_a = 1 + rng.Uniform(800);
    const size_t universe_b = 1 + rng.Uniform(800);
    const int na = static_cast<int>(rng.Uniform(60));
    const int nb = static_cast<int>(rng.Uniform(60));
    for (int i = 0; i < na; ++i) {
      a.Add(static_cast<AttributeId>(rng.Uniform(universe_a)));
    }
    for (int i = 0; i < nb; ++i) {
      b.Add(static_cast<AttributeId>(rng.Uniform(universe_b)));
    }
    const Synopsis::RatingCounts ab = a.RateCounts(b);
    EXPECT_EQ(ab.intersect, a.IntersectCount(b));
    EXPECT_EQ(ab.only_this, a.AndNotCount(b));
    EXPECT_EQ(ab.only_other, b.AndNotCount(a));
    EXPECT_EQ(ab.union_count(), a.UnionCount(b));
    // Symmetry: swapping operands swaps the exclusive counts.
    const Synopsis::RatingCounts ba = b.RateCounts(a);
    EXPECT_EQ(ba.intersect, ab.intersect);
    EXPECT_EQ(ba.only_this, ab.only_other);
    EXPECT_EQ(ba.only_other, ab.only_this);
  }
}

// Property test: bitset algebra agrees with std::set reference across
// random synopsis pairs.
TEST(SynopsisPropertyTest, AgreesWithSetReference) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::set<AttributeId> sa;
    std::set<AttributeId> sb;
    Synopsis a;
    Synopsis b;
    const int na = static_cast<int>(rng.Uniform(40));
    const int nb = static_cast<int>(rng.Uniform(40));
    for (int i = 0; i < na; ++i) {
      const AttributeId id = static_cast<AttributeId>(rng.Uniform(150));
      sa.insert(id);
      a.Add(id);
    }
    for (int i = 0; i < nb; ++i) {
      const AttributeId id = static_cast<AttributeId>(rng.Uniform(150));
      sb.insert(id);
      b.Add(id);
    }
    std::vector<AttributeId> tmp;
    std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                          std::back_inserter(tmp));
    EXPECT_EQ(a.IntersectCount(b), tmp.size());
    EXPECT_EQ(a.Intersects(b), !tmp.empty());
    tmp.clear();
    std::set_union(sa.begin(), sa.end(), sb.begin(), sb.end(),
                   std::back_inserter(tmp));
    EXPECT_EQ(a.UnionCount(b), tmp.size());
    tmp.clear();
    std::set_symmetric_difference(sa.begin(), sa.end(), sb.begin(), sb.end(),
                                  std::back_inserter(tmp));
    EXPECT_EQ(a.XorCount(b), tmp.size());
    tmp.clear();
    std::set_difference(sa.begin(), sa.end(), sb.begin(), sb.end(),
                        std::back_inserter(tmp));
    EXPECT_EQ(a.AndNotCount(b), tmp.size());
    EXPECT_EQ(a.IsSubsetOf(b), tmp.empty());
    EXPECT_EQ(a.ToIds(),
              std::vector<AttributeId>(sa.begin(), sa.end()));
  }
}

// Identity: |a ⊕ b| = |a ∨ b| − |a ∧ b| (used implicitly by the rating).
TEST(SynopsisPropertyTest, XorIsUnionMinusIntersection) {
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    Synopsis a;
    Synopsis b;
    for (int i = 0; i < 30; ++i) {
      if (rng.Bernoulli(0.4)) a.Add(static_cast<AttributeId>(rng.Uniform(100)));
      if (rng.Bernoulli(0.4)) b.Add(static_cast<AttributeId>(rng.Uniform(100)));
    }
    EXPECT_EQ(a.XorCount(b), a.UnionCount(b) - a.IntersectCount(b));
  }
}

// -- AttributeDictionary -----------------------------------------------------

TEST(AttributeDictionaryTest, InternAssignsDenseIds) {
  AttributeDictionary dict;
  EXPECT_EQ(dict.GetOrCreate("name"), 0u);
  EXPECT_EQ(dict.GetOrCreate("weight"), 1u);
  EXPECT_EQ(dict.GetOrCreate("name"), 0u);  // Idempotent.
  EXPECT_EQ(dict.size(), 2u);
}

TEST(AttributeDictionaryTest, FindAndName) {
  AttributeDictionary dict;
  const AttributeId id = dict.GetOrCreate("aperture");
  EXPECT_EQ(dict.Find("aperture"), std::optional<AttributeId>(id));
  EXPECT_EQ(dict.Find("missing"), std::nullopt);
  auto name = dict.Name(id);
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(name.value(), "aperture");
  EXPECT_FALSE(dict.Name(99).ok());
}

TEST(AttributeDictionaryTest, MakeSynopsis) {
  AttributeDictionary dict;
  const Synopsis s = dict.MakeSynopsis({"a", "b", "a"});
  EXPECT_EQ(s.Count(), 2u);
  EXPECT_TRUE(s.Contains(*dict.Find("a")));
  EXPECT_TRUE(s.Contains(*dict.Find("b")));
}

}  // namespace
}  // namespace cinderella
