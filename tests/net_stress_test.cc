// Concurrency stress for the server path, designed for the TSan side
// build (tools/tier1.sh): several client threads hammer one NodeServer
// with queries, stats, and pings while a writer keeps mutating the table
// and republishing MVCC snapshots. Every response must be internally
// consistent (a complete batch sequence and counters from one pinned
// generation) — no torn reads, no data races, no crashes.

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/cinderella.h"
#include "mvcc/versioned_table.h"
#include "net/coordinator.h"
#include "net/node_server.h"

namespace cinderella {
namespace net {
namespace {

Row MakeRow(EntityId id, AttributeId family) {
  Row row(id);
  const AttributeId base = family * 8;
  row.Set(base, Value(static_cast<int64_t>(id)));
  row.Set(base + 1, Value(static_cast<int64_t>(id) * 2));
  return row;
}

TEST(NetStressTest, ConcurrentClientsWhileSnapshotsRepublish) {
  CinderellaConfig config;
  config.weight = 0.3;
  config.max_size = 50;
  auto partitioner = std::move(Cinderella::Create(config)).value();
  VersionedTable table(std::move(partitioner));

  // Seed rows across four families.
  std::vector<Row> seed;
  for (EntityId id = 0; id < 400; ++id) {
    seed.push_back(MakeRow(id, static_cast<AttributeId>(id % 4)));
  }
  ASSERT_TRUE(table.InsertBatch(std::move(seed)).ok());

  NodeServerOptions server_options;
  server_options.threads = 3;
  server_options.batch_rows = 32;  // Many frames per response.
  NodeServer server(&table, server_options);
  ASSERT_TRUE(server.Start().ok());

  CoordinatorOptions client_options;
  client_options.timeout_ms = 10000;
  client_options.retries = 1;

  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 25;
  std::atomic<bool> stop_writer{false};
  std::atomic<int> failures{0};

  // Writer: inserts and deletes republish a fresh view continuously.
  std::thread writer([&] {
    EntityId next = 10000;
    while (!stop_writer.load(std::memory_order_acquire)) {
      std::vector<Row> batch;
      for (int i = 0; i < 20; ++i) {
        batch.push_back(MakeRow(next++, static_cast<AttributeId>(i % 4)));
      }
      if (!table.InsertBatch(std::move(batch)).ok()) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
      std::vector<EntityId> victims;
      for (EntityId id = next - 20; id < next - 10; ++id) {
        victims.push_back(id);
      }
      if (!table.DeleteBatch(victims).ok()) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      // One coordinator per client thread (Execute is thread-safe, but a
      // private instance also exercises independent connections).
      Coordinator coordinator({Endpoint{"127.0.0.1", server.port()}},
                              client_options);
      for (int q = 0; q < kQueriesPerClient; ++q) {
        const AttributeId family = static_cast<AttributeId>((c + q) % 4);
        const Query query(Synopsis{family * 8, family * 8 + 1});
        GatherResult result = coordinator.Execute(query);
        if (!result.complete) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        // Consistency within one pinned snapshot: the gathered rows are
        // exactly the matched rows the node counted.
        if (result.rows.size() != result.rows_matched) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
        // The seed guarantees a floor of matches regardless of what the
        // writer is doing.
        if (result.rows_matched < 100) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
        if (q % 5 == 0) {
          if (!coordinator.Ping(0).ok() || !coordinator.FetchStats(0).ok()) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  for (std::thread& client : clients) client.join();
  stop_writer.store(true, std::memory_order_release);
  writer.join();
  server.Stop();

  EXPECT_EQ(failures.load(), 0);
  const NodeServer::Stats stats = server.stats();
  EXPECT_GE(stats.queries_served, uint64_t{kClients * kQueriesPerClient});
  EXPECT_EQ(stats.frames_rejected, 0u);
}

TEST(NetStressTest, StopWhileClientsInFlightIsPrompt) {
  CinderellaConfig config;
  config.max_size = 50;
  auto partitioner = std::move(Cinderella::Create(config)).value();
  VersionedTable table(std::move(partitioner));
  std::vector<Row> seed;
  for (EntityId id = 0; id < 200; ++id) {
    seed.push_back(MakeRow(id, static_cast<AttributeId>(id % 2)));
  }
  ASSERT_TRUE(table.InsertBatch(std::move(seed)).ok());

  NodeServer server(&table);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> stop_clients{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&] {
      CoordinatorOptions options;
      options.timeout_ms = 200;
      options.retries = 0;
      Coordinator coordinator({Endpoint{"127.0.0.1", server.port()}},
                              options);
      while (!stop_clients.load(std::memory_order_acquire)) {
        (void)coordinator.Execute(Query(Synopsis{0, 8}));
      }
    });
  }

  // Let traffic flow briefly, then stop the server under load.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server.Stop();  // Must not hang on in-flight connections.
  stop_clients.store(true, std::memory_order_release);
  for (std::thread& client : clients) client.join();
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace net
}  // namespace cinderella
