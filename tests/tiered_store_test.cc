// Tests for the two-tier storage integration: the TieredStore cold tier
// and its chain lifecycle, the TierController spill policy, cold
// residency in the live engine and in MVCC snapshots, hybrid pruned
// scans over mixed-residency catalogs, tiered crash recovery through the
// kind-6 journal records, and the bulk-bottom-up synopsis tree rebuild.

#include <algorithm>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/cinderella.h"
#include "io/durable_table.h"
#include "mvcc/versioned_table.h"
#include "query/executor.h"
#include "query/predicate.h"
#include "query/query.h"
#include "storage/tiered_store.h"
#include "synopsis/synopsis_tree.h"

namespace cinderella {
namespace {

Row MakeRow(EntityId id, std::initializer_list<AttributeId> attrs) {
  Row row(id);
  for (AttributeId a : attrs) row.Set(a, Value(int64_t{1}));
  return row;
}

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

TieredStoreOptions SmallTier(const char* name) {
  TieredStoreOptions options;
  options.path = TempPath(name);
  options.page_size = 1024;
  options.pool_frames = 4;
  return options;
}

/// partition id -> sorted resident entity ids, regardless of residency.
using Placement = std::map<PartitionId, std::vector<EntityId>>;

Placement PlacementOf(const Cinderella& engine) {
  Placement placement;
  engine.catalog().ForEachPartition([&](const Partition& partition) {
    std::vector<EntityId>& ids = placement[partition.id()];
    const Status status = engine.ForEachRowOf(
        partition, [&](const Row& row) { ids.push_back(row.id()); });
    EXPECT_TRUE(status.ok()) << status.ToString();
    std::sort(ids.begin(), ids.end());
  });
  return placement;
}

std::vector<PartitionId> AllPartitionIds(const Cinderella& engine) {
  std::vector<PartitionId> ids;
  engine.catalog().ForEachPartition(
      [&](const Partition& partition) { ids.push_back(partition.id()); });
  return ids;
}

// -- TieredStore chain lifecycle ---------------------------------------------

TEST(TieredStoreTest, ChainRoundTripPreservesRowsAndOrder) {
  auto tier = std::move(TieredStore::Open(SmallTier("chain_rt.pages"))).value();
  std::vector<Row> rows;
  for (EntityId id = 10; id < 60; ++id) {
    rows.push_back(MakeRow(id, {0, 1, static_cast<AttributeId>(id % 7)}));
  }
  auto chain = tier->WriteChain(rows);
  ASSERT_TRUE(chain.ok()) << chain.status().ToString();
  EXPECT_EQ((*chain)->entities, rows.size());
  EXPECT_EQ((*chain)->representative, 10u);
  EXPECT_GT((*chain)->pages, 0u);
  EXPECT_EQ((*chain)->tier, tier.get());

  std::vector<Row> read;
  ASSERT_TRUE(
      tier->ReadChain(**chain, [&](Row&& row) { read.push_back(std::move(row)); })
          .ok());
  ASSERT_EQ(read.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(read[i].id(), rows[i].id()) << "chain order differs at " << i;
    EXPECT_EQ(read[i].attribute_count(), rows[i].attribute_count());
  }
  const TieredStoreStats stats = tier->stats();
  EXPECT_EQ(stats.chains, 1u);
  EXPECT_EQ(stats.cold_entities, rows.size());
}

TEST(TieredStoreTest, ReleasingLastChainReferenceFreesItsPages) {
  auto tier = std::move(TieredStore::Open(SmallTier("chain_free.pages"))).value();
  std::vector<Row> rows;
  for (EntityId id = 0; id < 80; ++id) rows.push_back(MakeRow(id, {0, 1, 2}));
  {
    auto chain = std::move(tier->WriteChain(rows)).value();
    EXPECT_EQ(tier->stats().chains, 1u);
    EXPECT_EQ(tier->stats().free_pages, 0u);
  }
  const TieredStoreStats stats = tier->stats();
  EXPECT_EQ(stats.chains, 0u);
  EXPECT_EQ(stats.chains_dropped, 1u);
  EXPECT_EQ(stats.cold_entities, 0u);
  EXPECT_GT(stats.free_pages, 0u);  // Pages went back to the free list.
}

TEST(TieredStoreTest, ChainMayOutliveTheTier) {
  std::shared_ptr<const ColdChain> survivor;
  {
    auto tier =
        std::move(TieredStore::Open(SmallTier("chain_late.pages"))).value();
    survivor =
        std::move(tier->WriteChain({MakeRow(1, {0}), MakeRow(2, {1})})).value();
  }
  // Releasing after the tier died must be a safe no-op.
  survivor.reset();
}

TEST(TieredStoreTest, EmptySpillRejected) {
  auto tier = std::move(TieredStore::Open(SmallTier("chain_empty.pages"))).value();
  EXPECT_EQ(tier->WriteChain({}).status().code(), StatusCode::kInvalidArgument);
}

// -- Cold residency in the live engine ---------------------------------------

class ColdEngineTest : public testing::Test {
 protected:
  static std::unique_ptr<Cinderella> NewEngine() {
    CinderellaConfig config;
    config.weight = 0.4;
    config.max_size = 16;
    return std::move(Cinderella::Create(config)).value();
  }

  /// Three disjoint attribute families so the rating separates the rows
  /// into distinct partition groups.
  static Row FamilyRow(EntityId id) {
    const AttributeId base = static_cast<AttributeId>((id % 3) * 20);
    return MakeRow(id, {base, static_cast<AttributeId>(base + 1),
                        static_cast<AttributeId>(base + 1 + id % 2)});
  }
};

TEST_F(ColdEngineTest, PlacementsBitIdenticalUnderSpillAndFault) {
  auto tiered = NewEngine();
  auto reference = NewEngine();
  auto tier = std::move(TieredStore::Open(SmallTier("cold_ident.pages"))).value();
  tiered->set_cold_tier(tier.get());

  for (EntityId id = 0; id < 150; ++id) {
    ASSERT_TRUE(tiered->Insert(FamilyRow(id)).ok());
    ASSERT_TRUE(reference->Insert(FamilyRow(id)).ok());
  }
  // Evict everything, then keep mutating: inserts must rate identically
  // against cold partitions (synopses stay resident) and mutations that
  // land in one must fault it back.
  for (PartitionId id : AllPartitionIds(*tiered)) {
    ASSERT_TRUE(tiered->SpillPartition(id).ok());
  }
  EXPECT_GT(tiered->stats().spills, 0u);

  for (EntityId id = 150; id < 300; ++id) {
    ASSERT_TRUE(tiered->Insert(FamilyRow(id)).ok());
    ASSERT_TRUE(reference->Insert(FamilyRow(id)).ok());
  }
  for (EntityId id = 0; id < 300; id += 7) {
    ASSERT_TRUE(tiered->Delete(id).ok());
    ASSERT_TRUE(reference->Delete(id).ok());
  }
  for (EntityId id = 1; id < 300; id += 11) {
    if (id % 7 == 0) continue;
    const Row updated = MakeRow(id, {50, 51, 52});
    ASSERT_TRUE(tiered->Update(updated).ok());
    ASSERT_TRUE(reference->Update(MakeRow(id, {50, 51, 52})).ok());
  }
  EXPECT_GT(tiered->stats().faults, 0u);

  EXPECT_EQ(PlacementOf(*tiered), PlacementOf(*reference));
  EXPECT_TRUE(tiered->VerifyIntegrity().ok());
  EXPECT_TRUE(reference->VerifyIntegrity().ok());
}

TEST_F(ColdEngineTest, HybridScanMatchesAllHotAndPrunesWithoutIo) {
  auto engine = NewEngine();
  for (EntityId id = 0; id < 240; ++id) {
    ASSERT_TRUE(engine->Insert(FamilyRow(id)).ok());
  }
  QueryExecutor executor(engine->catalog(), 1);
  const PredicatePtr family0 = IsNotNull(0);
  const PredicatePtr match_all = And(std::vector<PredicatePtr>{});

  const QueryResult hot_family = executor.ExecutePredicate(*family0);
  const QueryResult hot_all = executor.ExecutePredicate(*match_all);
  const QueryResult hot_query = executor.Execute(Query(Synopsis{20}));
  std::set<EntityId> hot_ids;
  executor.ScanMatches(*family0,
                       [&](const RowView& row) { hot_ids.insert(row.id()); });

  auto tier = std::move(TieredStore::Open(SmallTier("cold_scan.pages"))).value();
  engine->set_cold_tier(tier.get());
  for (PartitionId id : AllPartitionIds(*engine)) {
    ASSERT_TRUE(engine->SpillPartition(id).ok());
  }

  // Identical results through the hybrid scan, rows now fetched from
  // page chains.
  const QueryResult cold_family = executor.ExecutePredicate(*family0);
  EXPECT_EQ(cold_family.metrics.partitions_scanned,
            hot_family.metrics.partitions_scanned);
  EXPECT_EQ(cold_family.metrics.partitions_pruned,
            hot_family.metrics.partitions_pruned);
  EXPECT_EQ(cold_family.metrics.rows_scanned, hot_family.metrics.rows_scanned);
  EXPECT_EQ(cold_family.metrics.rows_matched, hot_family.metrics.rows_matched);

  const QueryResult cold_all = executor.ExecutePredicate(*match_all);
  EXPECT_EQ(cold_all.metrics.rows_matched, hot_all.metrics.rows_matched);

  const QueryResult cold_query = executor.Execute(Query(Synopsis{20}));
  EXPECT_EQ(cold_query.metrics.rows_matched, hot_query.metrics.rows_matched);
  EXPECT_EQ(cold_query.cells_materialized, hot_query.cells_materialized);

  std::set<EntityId> cold_ids;
  executor.ScanMatches(*family0,
                       [&](const RowView& row) { cold_ids.insert(row.id()); });
  EXPECT_EQ(cold_ids, hot_ids);

  // A query whose synopsis prunes every cold partition must not touch
  // the tier at all: same pool traffic before and after.
  const TieredStoreStats before = tier->stats();
  const QueryResult pruned = executor.ExecutePredicate(*IsNotNull(99));
  EXPECT_EQ(pruned.metrics.rows_matched, 0u);
  EXPECT_EQ(pruned.metrics.partitions_scanned, 0u);
  const TieredStoreStats after = tier->stats();
  EXPECT_EQ(after.pool.hits + after.pool.misses,
            before.pool.hits + before.pool.misses);
  EXPECT_EQ(after.pager_pages_read, before.pager_pages_read);
}

// -- TierController policy ---------------------------------------------------

TEST(TierControllerTest, MinIdleDelaysSpillUntilPartitionsGoQuiet) {
  CinderellaConfig config;
  config.weight = 0.4;
  config.max_size = 16;
  auto engine = std::move(Cinderella::Create(config)).value();
  auto tier = std::move(TieredStore::Open(SmallTier("ctl_idle.pages"))).value();
  engine->set_cold_tier(tier.get());
  TierController controller(engine.get(),
                            TierControllerOptions{/*budget_bytes=*/1,
                                                  /*min_idle=*/2});
  for (EntityId id = 0; id < 120; ++id) {
    ASSERT_TRUE(
        engine
            ->Insert(MakeRow(id, {static_cast<AttributeId>((id % 3) * 10),
                                  static_cast<AttributeId>((id % 3) * 10 + 1)}))
            .ok());
  }
  // Tick 1 absorbs the inserts: everything was just touched.
  EXPECT_EQ(std::move(controller.EvaluateAndSpill()).value(), 0u);
  // Tick 2: idle for 1 evaluation, still below min_idle.
  EXPECT_EQ(std::move(controller.EvaluateAndSpill()).value(), 0u);
  // Tick 3: idle long enough; the 1-byte budget evicts everything.
  const size_t spilled = std::move(controller.EvaluateAndSpill()).value();
  EXPECT_GT(spilled, 0u);
  size_t cold = 0;
  engine->catalog().ForEachPartition(
      [&](const Partition& partition) { cold += partition.cold() ? 1 : 0; });
  EXPECT_EQ(cold, spilled);
  EXPECT_EQ(controller.HotBytes(), 0u);
  EXPECT_TRUE(engine->VerifyIntegrity().ok());
}

TEST(TierControllerTest, ActivityProbeKeepsTheHotPartitionResident) {
  CinderellaConfig config;
  config.weight = 0.4;
  config.max_size = 16;
  auto engine = std::move(Cinderella::Create(config)).value();
  auto tier = std::move(TieredStore::Open(SmallTier("ctl_probe.pages"))).value();
  engine->set_cold_tier(tier.get());
  for (EntityId id = 0; id < 120; ++id) {
    ASSERT_TRUE(
        engine
            ->Insert(MakeRow(id, {static_cast<AttributeId>((id % 3) * 10),
                                  static_cast<AttributeId>((id % 3) * 10 + 1)}))
            .ok());
  }
  const std::vector<PartitionId> ids = AllPartitionIds(*engine);
  ASSERT_GT(ids.size(), 1u);
  const PartitionId favorite = ids.front();
  const Partition* hot = engine->catalog().GetPartition(favorite);
  ASSERT_NE(hot, nullptr);
  // Budget fits exactly the favorite: spilling every other partition
  // satisfies it, so the activity ordering (coldest first) must leave the
  // favorite resident.
  TierController controller(
      engine.get(),
      TierControllerOptions{hot->Size(SizeMeasure::kByteSize), /*min_idle=*/1});
  controller.set_activity_probe(
      [favorite](PartitionId id) { return id == favorite ? 100.0 : 0.0; });
  // The partitions predate the controller, so they are untracked —
  // maximally idle — and eligible on the very first evaluation.
  const size_t spilled = std::move(controller.EvaluateAndSpill()).value();
  EXPECT_EQ(spilled, ids.size() - 1);
  engine->catalog().ForEachPartition([&](const Partition& partition) {
    EXPECT_EQ(partition.cold(), partition.id() != favorite)
        << "partition " << partition.id();
  });
}

TEST(TierControllerTest, ForcedSpillSkipsColdAndVanishedIds) {
  CinderellaConfig config;
  config.weight = 0.4;
  config.max_size = 16;
  auto engine = std::move(Cinderella::Create(config)).value();
  auto tier = std::move(TieredStore::Open(SmallTier("ctl_forced.pages"))).value();
  engine->set_cold_tier(tier.get());
  for (EntityId id = 0; id < 60; ++id) {
    ASSERT_TRUE(engine->Insert(MakeRow(id, {0, 1})).ok());
  }
  TierController controller(engine.get(), TierControllerOptions{0, 1});
  std::vector<PartitionId> targets = AllPartitionIds(*engine);
  targets.push_back(9999);  // Vanished id: skipped, not an error.
  const size_t first = std::move(controller.SpillPartitions(targets)).value();
  EXPECT_EQ(first, targets.size() - 1);
  // Everything already cold: a repeat spills nothing.
  EXPECT_EQ(std::move(controller.SpillPartitions(targets)).value(), 0u);
}

// -- MVCC residency ----------------------------------------------------------

TEST(VersionedTableTieredTest, SnapshotsCarryResidencyAndServeColdReads) {
  CinderellaConfig config;
  config.weight = 0.4;
  config.max_size = 16;
  VersionedTable table(std::move(Cinderella::Create(config)).value());

  // Spilling without a tier attached must fail cleanly.
  EXPECT_EQ(table.SpillPartitions({0}).code(), StatusCode::kFailedPrecondition);

  auto tier = std::move(TieredStore::Open(SmallTier("mvcc_tier.pages"))).value();
  table.partitioner().set_cold_tier(tier.get());

  std::vector<Row> rows;
  for (EntityId id = 0; id < 200; ++id) {
    rows.push_back(MakeRow(id, {static_cast<AttributeId>((id % 4) * 10),
                                static_cast<AttributeId>((id % 4) * 10 + 1)}));
  }
  ASSERT_TRUE(table.InsertBatch(rows).ok());

  size_t spilled = 0;
  ASSERT_TRUE(
      table.SpillPartitions(AllPartitionIds(table.partitioner()), &spilled)
          .ok());
  ASSERT_GT(spilled, 0u);

  const VersionedTable::MemoryStats stats = table.memory_stats();
  EXPECT_EQ(stats.cold_versions, spilled);
  EXPECT_EQ(stats.hot_versions + stats.cold_versions, stats.live_versions);
  EXPECT_GT(stats.cold_pages, 0u);

  // Point reads fall back to a chain scan on cold partitions.
  for (EntityId id = 0; id < 200; id += 17) {
    auto row = table.Get(id);
    ASSERT_TRUE(row.ok()) << "entity " << id;
    EXPECT_EQ(row->id(), id);
    EXPECT_TRUE(row->Has(static_cast<AttributeId>((id % 4) * 10)));
  }

  // Snapshot scans over the all-cold view read every row back.
  const PredicatePtr match_all = And(std::vector<PredicatePtr>{});
  VersionedTable::Snapshot cold_snapshot = table.snapshot();
  {
    QueryExecutor executor(cold_snapshot.view(), 1);
    const QueryResult result = executor.ExecutePredicate(*match_all);
    EXPECT_EQ(result.metrics.rows_matched, cold_snapshot.view().entity_count());
  }

  // Fault a cold partition back by updating one of its rows; the pinned
  // snapshot keeps its chain alive and keeps reading it.
  ASSERT_TRUE(table.Update(MakeRow(0, {0, 1, 2})).ok());
  EXPECT_GT(table.partitioner().stats().faults, 0u);
  {
    QueryExecutor executor(cold_snapshot.view(), 1);
    const QueryResult result = executor.ExecutePredicate(*match_all);
    EXPECT_EQ(result.metrics.rows_matched, cold_snapshot.view().entity_count());
  }
}

// -- Tiered crash recovery (the ISSUE's acceptance shape) --------------------

TEST(DurableTieredTest, OutOfCoreDatasetSurvivesCrashBitIdenticalToAllHot) {
  const std::string dir = TempPath("durable_tiered");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  DurableTable::Options options;
  options.directory = dir;
  options.config.weight = 0.4;
  options.config.max_size = 32;
  options.spill.page_size = 1024;
  options.spill.pool_frames = 4;  // Pool budget: 4 KiB.
  options.spill.budget_bytes = 8192;
  options.spill.min_idle = 1;

  CinderellaConfig reference_config = options.config;
  auto reference = std::move(Cinderella::Create(reference_config)).value();

  auto family_row = [](EntityId id) {
    const AttributeId base = static_cast<AttributeId>((id % 6) * 10);
    Row row(id);
    row.Set(base, Value(int64_t{1}));
    row.Set(base + 1, Value(static_cast<int64_t>(id)));
    row.Set(base + 2, Value(std::string("payload-") + std::to_string(id)));
    return row;
  };

  {
    auto table = DurableTable::Open(options);
    ASSERT_TRUE(table.ok()) << table.status().ToString();
    ASSERT_TRUE((*table)->tiering_enabled());
    EntityId next = 0;
    for (int batch = 0; batch < 6; ++batch) {
      std::vector<Row> rows;
      for (int r = 0; r < 200; ++r) rows.push_back(family_row(next++));
      for (const Row& row : rows) {
        ASSERT_TRUE(reference->Insert(family_row(row.id())).ok());
      }
      ASSERT_TRUE((*table)->InsertBatch(std::move(rows)).ok());
    }
    for (EntityId id = 3; id < next; id += 97) {
      ASSERT_TRUE((*table)->Delete(id).ok());
      ASSERT_TRUE(reference->Delete(id).ok());
    }
    // The live table spilled under its budget while the reference stayed
    // all-hot; the dataset dwarfs the buffer-pool budget (>= 4x).
    EXPECT_GT((*table)->cinderella().stats().spills, 0u);
    ASSERT_NE((*table)->tier(), nullptr);
    EXPECT_GT((*table)->tier()->stats().chains, 0u);
    uint64_t dataset_bytes = 0;
    reference->catalog().ForEachPartition([&](const Partition& partition) {
      dataset_bytes += partition.Size(SizeMeasure::kByteSize);
    });
    EXPECT_GE(dataset_bytes,
              4 * options.spill.page_size * options.spill.pool_frames);
    // Results over the mixed-residency table match the all-hot engine.
    EXPECT_EQ(PlacementOf((*table)->cinderella()), PlacementOf(*reference));
    // "Crash": destructors only, no checkpoint.
  }

  auto recovered = DurableTable::Open(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE((*recovered)->cinderella().VerifyIntegrity().ok());
  // Recovery replayed the journal AND the kind-6 tier placement: data and
  // placements are bit-identical to the all-hot reference, and the cold
  // set was re-established on the fresh page file.
  EXPECT_EQ(PlacementOf((*recovered)->cinderella()), PlacementOf(*reference));
  size_t cold = 0;
  (*recovered)->cinderella().catalog().ForEachPartition(
      [&](const Partition& partition) { cold += partition.cold() ? 1 : 0; });
  EXPECT_GT(cold, 0u);
  QueryExecutor executor((*recovered)->cinderella().catalog(), 1);
  const QueryResult result =
      executor.ExecutePredicate(*And(std::vector<PredicatePtr>{}));
  EXPECT_EQ(result.metrics.rows_matched,
            (*recovered)->table().entity_count());
}

// -- Bulk-bottom-up synopsis tree rebuild (snapshot load path) ---------------

TEST(SynopsisTreeBulkBuildTest, PropertyMatchesIncrementalUpsertPath) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t fanout = 2 + rng.Uniform(15);
    const size_t leaves = 1 + rng.Uniform(200);
    std::map<uint64_t, Synopsis> by_key;
    for (size_t i = 0; i < leaves; ++i) {
      const uint64_t key = rng.Uniform(4000);
      Synopsis synopsis;
      const size_t attrs = 1 + rng.Uniform(8);
      for (size_t a = 0; a < attrs; ++a) {
        synopsis.Add(static_cast<AttributeId>(rng.Uniform(300)));
      }
      by_key[key] = synopsis;
    }

    SynopsisTree incremental(fanout);
    for (const auto& [key, synopsis] : by_key) {
      incremental.Upsert(key, synopsis);
    }
    SynopsisTree bulk(fanout);
    std::vector<std::pair<uint64_t, const Synopsis*>> pairs;
    for (const auto& [key, synopsis] : by_key) {
      pairs.emplace_back(key, &synopsis);
    }
    bulk.BulkBuild(std::move(pairs));

    std::string error;
    ASSERT_TRUE(bulk.CheckInvariants(&error)) << "trial " << trial << ": "
                                              << error;
    EXPECT_EQ(bulk.live_count(), incremental.live_count());
    EXPECT_EQ(bulk.depth(), incremental.depth());
    EXPECT_EQ(bulk.internal_node_count(), incremental.internal_node_count());
    ASSERT_NE(bulk.root_union(), nullptr);
    EXPECT_EQ(*bulk.root_union(), *incremental.root_union());

    // Identical leaf sequences...
    std::vector<std::pair<uint64_t, Synopsis>> got, want;
    bulk.ForEachLeaf([&](uint64_t key, const Synopsis& synopsis) {
      got.emplace_back(key, synopsis);
    });
    incremental.ForEachLeaf([&](uint64_t key, const Synopsis& synopsis) {
      want.emplace_back(key, synopsis);
    });
    EXPECT_EQ(got, want) << "trial " << trial;

    // ...and identical candidate sets for random probes.
    for (int probe = 0; probe < 10; ++probe) {
      Synopsis query;
      query.Add(static_cast<AttributeId>(rng.Uniform(300)));
      if (rng.Uniform(2) == 0) {
        query.Add(static_cast<AttributeId>(rng.Uniform(300)));
      }
      std::vector<uint64_t> bulk_hits, inc_hits;
      const std::vector<uint64_t>& words = query.words();
      bulk.ForEachCandidate(words.data(), words.size(),
                            [&](uint64_t key) { bulk_hits.push_back(key); });
      incremental.ForEachCandidate(
          words.data(), words.size(),
          [&](uint64_t key) { inc_hits.push_back(key); });
      EXPECT_EQ(bulk_hits, inc_hits) << "trial " << trial;
    }
  }
}

TEST(SynopsisTreeBulkBuildTest, EmptyAndSingleLeafEdgeCases) {
  SynopsisTree tree(4);
  tree.BulkBuild({});
  EXPECT_EQ(tree.live_count(), 0u);
  EXPECT_EQ(tree.root_union(), nullptr);

  const Synopsis only{3, 5};
  tree.BulkBuild({{7, &only}});
  EXPECT_EQ(tree.live_count(), 1u);
  std::string error;
  EXPECT_TRUE(tree.CheckInvariants(&error)) << error;
  std::vector<uint64_t> hits;
  const std::vector<uint64_t>& words = only.words();
  tree.ForEachCandidate(words.data(), words.size(),
                        [&](uint64_t key) { hits.push_back(key); });
  EXPECT_EQ(hits, (std::vector<uint64_t>{7}));
}

}  // namespace
}  // namespace cinderella
