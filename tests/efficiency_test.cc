// Tests for Definition 1 (partitioning efficiency) and the Figure-7
// partitioning statistics.

#include <gtest/gtest.h>

#include "core/cinderella.h"
#include "core/efficiency.h"
#include "core/partitioning_stats.h"

namespace cinderella {
namespace {

Row MakeRow(EntityId id, std::initializer_list<AttributeId> attrs) {
  Row row(id);
  for (AttributeId a : attrs) row.Set(a, Value(int64_t{1}));
  return row;
}

// Builds a catalog by hand: one partition per entity group.
struct ManualCatalog {
  PartitionCatalog catalog;
  void AddPartition(std::vector<Row> rows) {
    Partition& p = catalog.CreatePartition();
    for (Row& row : rows) {
      const Synopsis s = row.AttributeSynopsis();
      const EntityId id = row.id();
      ASSERT_TRUE(p.AddRow(std::move(row), s).ok());
      catalog.BindEntity(id, p.id());
    }
  }
};

TEST(EfficiencyTest, PerfectPartitioningScoresOne) {
  ManualCatalog m;
  std::vector<Row> cameras;
  cameras.push_back(MakeRow(1, {0, 1}));
  cameras.push_back(MakeRow(2, {0, 1}));
  std::vector<Row> disks;
  disks.push_back(MakeRow(3, {5, 6}));
  m.AddPartition(std::move(cameras));
  m.AddPartition(std::move(disks));

  // One query per schema: every scanned partition is fully relevant.
  const std::vector<Synopsis> workload{Synopsis{0}, Synopsis{5}};
  const EfficiencyBreakdown e =
      ComputeEfficiency(m.catalog, workload, SizeMeasure::kEntityCount);
  EXPECT_DOUBLE_EQ(e.relevant, 3.0);
  EXPECT_DOUBLE_EQ(e.read, 3.0);
  EXPECT_DOUBLE_EQ(e.efficiency, 1.0);
}

TEST(EfficiencyTest, UniversalTableReadsEverything) {
  ManualCatalog m;
  std::vector<Row> all;
  all.push_back(MakeRow(1, {0, 1}));
  all.push_back(MakeRow(2, {0, 1}));
  all.push_back(MakeRow(3, {5, 6}));
  all.push_back(MakeRow(4, {5, 6}));
  m.AddPartition(std::move(all));

  // Query touching only the camera schema reads the whole table.
  const std::vector<Synopsis> workload{Synopsis{0}};
  const EfficiencyBreakdown e =
      ComputeEfficiency(m.catalog, workload, SizeMeasure::kEntityCount);
  EXPECT_DOUBLE_EQ(e.relevant, 2.0);
  EXPECT_DOUBLE_EQ(e.read, 4.0);
  EXPECT_DOUBLE_EQ(e.efficiency, 0.5);
}

TEST(EfficiencyTest, PrunedPartitionsNotCounted) {
  ManualCatalog m;
  std::vector<Row> a;
  a.push_back(MakeRow(1, {0}));
  std::vector<Row> b;
  b.push_back(MakeRow(2, {9}));
  m.AddPartition(std::move(a));
  m.AddPartition(std::move(b));
  const std::vector<Synopsis> workload{Synopsis{0}};
  const EfficiencyBreakdown e =
      ComputeEfficiency(m.catalog, workload, SizeMeasure::kEntityCount);
  EXPECT_DOUBLE_EQ(e.read, 1.0);  // Partition {9} pruned.
  EXPECT_DOUBLE_EQ(e.efficiency, 1.0);
}

TEST(EfficiencyTest, EmptyWorkloadIsPerfect) {
  ManualCatalog m;
  std::vector<Row> a;
  a.push_back(MakeRow(1, {0}));
  m.AddPartition(std::move(a));
  const EfficiencyBreakdown e =
      ComputeEfficiency(m.catalog, {}, SizeMeasure::kEntityCount);
  EXPECT_DOUBLE_EQ(e.efficiency, 1.0);
  EXPECT_DOUBLE_EQ(e.read, 0.0);
}

TEST(EfficiencyTest, ByteMeasureWeighsBigRows) {
  ManualCatalog m;
  std::vector<Row> mixed;
  mixed.push_back(MakeRow(1, {0}));             // Relevant.
  Row fat(2);
  fat.Set(9, Value(std::string(100, 'x')));     // Irrelevant, large.
  mixed.push_back(std::move(fat));
  m.AddPartition(std::move(mixed));
  const std::vector<Synopsis> workload{Synopsis{0}};
  const EfficiencyBreakdown e =
      ComputeEfficiency(m.catalog, workload, SizeMeasure::kByteSize);
  EXPECT_LT(e.efficiency, 0.2);  // Most bytes read are irrelevant.
}

TEST(EfficiencyTest, CinderellaBeatsSinglePartitionOnHeterogeneousData) {
  // Two schema families; Cinderella separates them, so a per-family
  // workload scores higher than on the unpartitioned table.
  CinderellaConfig config;
  config.weight = 0.3;
  config.max_size = 100;
  auto c = std::move(Cinderella::Create(config)).value();
  ManualCatalog universal;
  std::vector<Row> all_rows;
  for (EntityId id = 0; id < 40; ++id) {
    const bool camera = id % 2 == 0;
    Row row = camera ? MakeRow(id, {0, 1, 2}) : MakeRow(id, {10, 11, 12});
    all_rows.push_back(row);
    ASSERT_TRUE(c->Insert(std::move(row)).ok());
  }
  universal.AddPartition(std::move(all_rows));

  const std::vector<Synopsis> workload{Synopsis{0}, Synopsis{10}};
  const double partitioned =
      ComputeEfficiency(c->catalog(), workload, SizeMeasure::kEntityCount)
          .efficiency;
  const double unpartitioned =
      ComputeEfficiency(universal.catalog, workload,
                        SizeMeasure::kEntityCount)
          .efficiency;
  EXPECT_DOUBLE_EQ(partitioned, 1.0);
  EXPECT_DOUBLE_EQ(unpartitioned, 0.5);
}

// -- PartitioningReport ---------------------------------------------------------

TEST(PartitioningStatsTest, ComputesFigure7Metrics) {
  ManualCatalog m;
  std::vector<Row> a;
  a.push_back(MakeRow(1, {0, 1}));
  a.push_back(MakeRow(2, {0}));
  std::vector<Row> b;
  b.push_back(MakeRow(3, {5, 6, 7}));
  m.AddPartition(std::move(a));
  m.AddPartition(std::move(b));

  const PartitioningReport report = AnalyzePartitioning(m.catalog);
  EXPECT_EQ(report.partition_count, 2u);
  EXPECT_EQ(report.entity_count, 3u);
  EXPECT_EQ(report.table_attribute_count, 5u);
  EXPECT_DOUBLE_EQ(report.entities_per_partition.mean, 1.5);
  EXPECT_DOUBLE_EQ(report.attributes_per_partition.min, 2.0);
  EXPECT_DOUBLE_EQ(report.attributes_per_partition.max, 3.0);
  // Partition a: 3 cells over 2x2 slots -> sparseness 0.25; b: 0.
  EXPECT_DOUBLE_EQ(report.sparseness_per_partition.max, 0.25);
  EXPECT_DOUBLE_EQ(report.sparseness_per_partition.min, 0.0);
  // Table: 6 cells over 3x5 slots -> 1 - 6/15.
  EXPECT_NEAR(report.table_sparseness, 1.0 - 6.0 / 15.0, 1e-12);
  EXPECT_FALSE(report.ToString().empty());
}

TEST(PartitioningStatsTest, EmptyCatalog) {
  PartitionCatalog catalog;
  const PartitioningReport report = AnalyzePartitioning(catalog);
  EXPECT_EQ(report.partition_count, 0u);
  EXPECT_EQ(report.entity_count, 0u);
  EXPECT_DOUBLE_EQ(report.table_sparseness, 0.0);
}

}  // namespace
}  // namespace cinderella
