// Concurrency tests for the batched ingest pipeline: multiple threads
// issuing InsertBatch against one Cinderella instance. Placements under a
// concurrent interleaving are some serialization of the batches (windows
// commit atomically under the engine's commit lock); what must hold is
// that every row lands exactly once and every structural invariant
// survives. Run under ThreadSanitizer by tools/tier1.sh.

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/cinderella.h"
#include "ingest/batch_inserter.h"
#include "workload/dbpedia_generator.h"

namespace cinderella {
namespace {

std::vector<Row> TestRows(size_t n, uint64_t seed) {
  AttributeDictionary dictionary;
  DbpediaConfig config;
  config.num_entities = n;
  config.seed = seed;
  DbpediaGenerator generator(config, &dictionary);
  return generator.Generate();
}

TEST(IngestConcurrencyTest, ParallelBatchesDisjointIds) {
  const size_t kThreads = 4;
  const size_t kRowsPerThread = 400;
  std::vector<Row> rows = TestRows(kThreads * kRowsPerThread, 11);

  CinderellaConfig config;
  config.weight = 0.3;
  config.max_size = 150;
  auto c = std::move(Cinderella::Create(config)).value();
  BatchInserterOptions options;
  options.shards = 4;
  options.window = 64;
  const std::unique_ptr<BatchInserter> engine =
      AttachBatchInserter(c.get(), options);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Two batches per thread to exercise repeated scan/commit cycles.
      for (int half = 0; half < 2; ++half) {
        const size_t begin =
            t * kRowsPerThread + half * (kRowsPerThread / 2);
        const size_t end = begin + kRowsPerThread / 2;
        std::vector<Row> batch(rows.begin() + begin, rows.begin() + end);
        if (!c->InsertBatch(std::move(batch)).ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(c->catalog().entity_count(), kThreads * kRowsPerThread);
  for (EntityId id = 0; id < kThreads * kRowsPerThread; ++id) {
    EXPECT_TRUE(c->catalog().FindEntity(id).has_value()) << id;
  }
  EXPECT_TRUE(c->VerifyIntegrity().ok());
  EXPECT_EQ(engine->stats().rows, kThreads * kRowsPerThread);
}

TEST(IngestConcurrencyTest, ConflictingBatchesFailAtomically) {
  // All threads race to insert the SAME id range: exactly one writer wins
  // each id, losers get AlreadyExists, and the catalog never tears.
  const size_t kThreads = 4;
  const size_t kRows = 300;
  std::vector<Row> rows = TestRows(kRows, 13);

  CinderellaConfig config;
  config.weight = 0.3;
  config.max_size = 100;
  auto c = std::move(Cinderella::Create(config)).value();
  BatchInserterOptions options;
  options.shards = 2;
  options.window = 32;
  const std::unique_ptr<BatchInserter> engine =
      AttachBatchInserter(c.get(), options);

  std::atomic<int> ok_count{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      // Small batches so several threads interleave validation/commit.
      for (size_t begin = 0; begin < kRows; begin += 50) {
        std::vector<Row> batch(rows.begin() + begin,
                               rows.begin() + begin + 50);
        const Status status = c->InsertBatch(std::move(batch));
        if (status.ok()) {
          ok_count.fetch_add(1, std::memory_order_relaxed);
        } else {
          EXPECT_EQ(status.code(), StatusCode::kAlreadyExists);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Each of the six 50-row sub-batches was won exactly once.
  EXPECT_EQ(ok_count.load(), 6);
  EXPECT_EQ(c->catalog().entity_count(), kRows);
  EXPECT_TRUE(c->VerifyIntegrity().ok());
}

}  // namespace
}  // namespace cinderella
