// End-to-end integration tests across modules: the full pipeline
// (generate -> partition -> snapshot -> reopen -> query -> CSV round trip)
// and a paged-store differential test against the in-memory engine.

#include <filesystem>
#include <set>
#include <string>
#include <memory>
#include <sstream>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/cinderella.h"
#include "core/efficiency.h"
#include "core/snapshot.h"
#include "core/universal_table.h"
#include "io/csv.h"
#include "pagestore/buffer_pool.h"
#include "pagestore/paged_store.h"
#include "pagestore/pager.h"
#include "query/executor.h"
#include "workload/dbpedia_generator.h"
#include "workload/query_workload.h"

namespace cinderella {
namespace {

TEST(IntegrationTest, FullPipeline) {
  // 1. Generate a small irregular data set.
  DbpediaConfig config;
  config.num_entities = 3000;
  config.seed = 99;
  auto dictionary = std::make_unique<AttributeDictionary>();
  DbpediaGenerator generator(config, dictionary.get());
  const auto rows = generator.Generate();

  // 2. Partition it online.
  CinderellaConfig cc;
  cc.weight = 0.2;
  cc.max_size = 300;
  auto partitioner = std::move(Cinderella::Create(cc)).value();
  for (const Row& row : rows) {
    ASSERT_TRUE(partitioner->Insert(row).ok());
  }
  const Cinderella* cinderella = partitioner.get();

  // 3. Pick a selective query from the generated workload and measure.
  const auto workload = GenerateQueryWorkload(rows, 100, QueryWorkloadConfig{});
  ASSERT_FALSE(workload.empty());
  const GeneratedQuery& selective = workload.front();
  QueryExecutor executor(cinderella->catalog());
  const QueryResult before = executor.Execute(selective.query);
  EXPECT_GT(before.metrics.partitions_pruned, 0u);

  // 4. Snapshot and reopen; the query behaves identically.
  std::stringstream buffer;
  ASSERT_TRUE(SaveSnapshot(*cinderella, *dictionary, buffer).ok());
  auto restored = LoadSnapshot(buffer);
  ASSERT_TRUE(restored.ok());
  QueryExecutor restored_executor(restored->partitioner->catalog());
  const QueryResult after = restored_executor.Execute(selective.query);
  EXPECT_EQ(after.metrics.rows_matched, before.metrics.rows_matched);
  EXPECT_EQ(after.metrics.partitions_scanned,
            before.metrics.partitions_scanned);

  // 5. CSV round trip through a fresh table preserves the data and keeps
  //    Definition-1 efficiency within the same ballpark (the arrival
  //    order differs, so the partitioning may differ slightly).
  UniversalTable exported(std::move(restored->partitioner),
                          std::move(*restored->dictionary));
  std::stringstream csv;
  ASSERT_TRUE(ExportCsv(exported, csv).ok());

  auto reloaded_partitioner = std::move(Cinderella::Create(cc)).value();
  const Cinderella* reloaded_cinderella = reloaded_partitioner.get();
  UniversalTable reloaded(std::move(reloaded_partitioner));
  ASSERT_TRUE(ImportCsv(csv, &reloaded).ok());
  ASSERT_EQ(reloaded.entity_count(), rows.size());

  std::vector<Synopsis> query_synopses;
  for (const auto& q : workload) query_synopses.push_back(q.query.attributes());
  const double original_efficiency =
      ComputeEfficiency(cinderella->catalog(), query_synopses,
                        SizeMeasure::kEntityCount)
          .efficiency;
  const double reloaded_efficiency =
      ComputeEfficiency(reloaded_cinderella->catalog(), query_synopses,
                        SizeMeasure::kEntityCount)
          .efficiency;
  EXPECT_NEAR(reloaded_efficiency, original_efficiency, 0.15);

  // Every entity survived with its attribute set intact. Dictionary ids
  // differ after the round trip (interning order follows row contents),
  // so compare attribute *names*.
  auto names_of = [](const Row& row, const AttributeDictionary& dict) {
    std::set<std::string> names;
    for (const Row::Cell& cell : row.cells()) {
      names.insert(dict.Name(cell.attribute).value());
    }
    return names;
  };
  Rng rng(5);
  for (int probe = 0; probe < 50; ++probe) {
    const EntityId id = static_cast<EntityId>(rng.Uniform(rows.size()));
    auto row = reloaded.Get(id);
    ASSERT_TRUE(row.ok());
    EXPECT_EQ(names_of(*row, reloaded.dictionary()),
              names_of(rows[id], exported.dictionary()));
  }
}

TEST(IntegrationTest, PagedStoreMatchesInMemoryEngine) {
  // Differential test: the paged layout must return exactly the counts of
  // the in-memory executor for every workload query.
  DbpediaConfig config;
  config.num_entities = 2000;
  config.seed = 123;
  AttributeDictionary dictionary;
  DbpediaGenerator generator(config, &dictionary);
  const auto rows = generator.Generate();

  CinderellaConfig cc;
  cc.weight = 0.3;
  cc.max_size = 200;
  auto partitioner = std::move(Cinderella::Create(cc)).value();
  for (const Row& row : rows) {
    ASSERT_TRUE(partitioner->Insert(row).ok());
  }

  const std::string path = testing::TempDir() + "/integration_paged.db";
  auto pager = Pager::Open(path, 4096, true);
  ASSERT_TRUE(pager.ok());
  BufferPool pool(pager->get(), 8);  // Tiny pool: forces real paging.
  PagedStore store(pager->get(), &pool);
  partitioner->catalog().ForEachPartition([&](const Partition& partition) {
    ASSERT_TRUE(store.AddPartition(partition).ok());
  });

  QueryExecutor executor(partitioner->catalog());
  const auto workload = GenerateQueryWorkload(rows, 100, QueryWorkloadConfig{});
  for (const GeneratedQuery& q : workload) {
    const QueryResult memory = executor.Execute(q.query);
    auto paged = store.ExecuteQuery(q.query);
    ASSERT_TRUE(paged.ok());
    EXPECT_EQ(paged->rows_matched, memory.metrics.rows_matched)
        << q.query.ToString();
    EXPECT_EQ(paged->rows_scanned, memory.metrics.rows_scanned);
    EXPECT_EQ(paged->partitions_pruned, memory.metrics.partitions_pruned);
  }
}

}  // namespace
}  // namespace cinderella
