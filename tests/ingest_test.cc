// Tests for the batched ingest pipeline (src/ingest): the sharded packed
// catalog mirror, and — the core guarantee — that BatchInserter places
// every row exactly where serial single-row inserts would, at any batch
// size and shard count, across configurations (index, workload mode,
// unnormalized rating) and through interleavings with serial mutations.

#include <algorithm>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/cinderella.h"
#include "core/efficiency.h"
#include "ingest/batch_inserter.h"
#include "ingest/sharded_catalog.h"
#include "workload/dbpedia_generator.h"

namespace cinderella {
namespace {

// -- ShardedCatalog -----------------------------------------------------------

Synopsis MakeSynopsis(std::vector<AttributeId> ids) {
  return Synopsis::FromIds(ids);
}

TEST(ShardedCatalogTest, AssignsByIdModuloShards) {
  ShardedCatalog catalog(4);
  EXPECT_EQ(catalog.shard_count(), 4u);
  for (PartitionId id = 0; id < 16; ++id) {
    EXPECT_EQ(catalog.ShardOf(id), id % 4);
  }
}

TEST(ShardedCatalogTest, UpsertRemoveContains) {
  ShardedCatalog catalog(3);
  catalog.Upsert(5, 10, MakeSynopsis({1, 2}));
  catalog.Upsert(2, 7, MakeSynopsis({3}));
  EXPECT_TRUE(catalog.Contains(5));
  EXPECT_TRUE(catalog.Contains(2));
  EXPECT_FALSE(catalog.Contains(8));  // Same shard as 2, absent.
  EXPECT_EQ(catalog.partition_count(), 2u);

  // Upsert refreshes in place.
  catalog.Upsert(5, 11, MakeSynopsis({1, 2, 4}));
  EXPECT_EQ(catalog.partition_count(), 2u);
  bool seen = false;
  catalog.WithEntry(5, [&](const ShardedCatalog::EntryView& e) {
    seen = true;
    EXPECT_EQ(e.size, 11u);
    EXPECT_EQ(e.count, 3u);
  });
  EXPECT_TRUE(seen);

  EXPECT_TRUE(catalog.Remove(5));
  EXPECT_FALSE(catalog.Remove(5));
  EXPECT_FALSE(catalog.Contains(5));
  EXPECT_EQ(catalog.partition_count(), 1u);
}

TEST(ShardedCatalogTest, ScanIsAscendingAndStrideWidens) {
  ShardedCatalog catalog(2);
  // All even ids land in shard 0; insert out of order.
  catalog.Upsert(8, 1, MakeSynopsis({0}));
  catalog.Upsert(2, 1, MakeSynopsis({1}));
  // Wide synopsis (bit 300) forces the shard stride to grow; the earlier
  // narrow entries must survive, zero-padded.
  catalog.Upsert(4, 1, MakeSynopsis({300}));
  std::vector<PartitionId> order;
  catalog.ScanShard(0, [&](const ShardedCatalog::EntryView& e) {
    order.push_back(e.id);
    ASSERT_GE(e.num_words, 5u);  // ceil(301/64) words after widening.
    uint32_t bits = 0;
    for (size_t w = 0; w < e.num_words; ++w) {
      bits += static_cast<uint32_t>(__builtin_popcountll(e.words[w]));
    }
    EXPECT_EQ(bits, e.count);  // Padding is zero, counts stay exact.
  });
  EXPECT_EQ(order, (std::vector<PartitionId>{2, 4, 8}));
}

// -- Placement determinism ----------------------------------------------------

std::vector<Row> TestRows(size_t n, AttributeDictionary* dictionary,
                          uint64_t seed = 42) {
  DbpediaConfig config;
  config.num_entities = n;
  config.seed = seed;
  DbpediaGenerator generator(config, dictionary);
  return generator.Generate();
}

// Canonical partitioning fingerprint: partition id -> sorted resident ids.
// Identical fingerprints mean identical partitionings including the ids
// the partitions were created under (i.e. identical creation order).
std::map<PartitionId, std::vector<EntityId>> Fingerprint(
    const PartitionCatalog& catalog) {
  std::map<PartitionId, std::vector<EntityId>> fingerprint;
  catalog.ForEachPartition([&](const Partition& partition) {
    std::vector<EntityId>& residents = fingerprint[partition.id()];
    for (const Row& row : partition.segment().rows()) {
      residents.push_back(row.id());
    }
    std::sort(residents.begin(), residents.end());
  });
  return fingerprint;
}

// A small probe workload for the EFFICIENCY comparison: single-attribute
// queries over the first 24 attributes.
std::vector<Synopsis> ProbeWorkload() {
  std::vector<Synopsis> workload;
  for (AttributeId a = 0; a < 24; ++a) {
    workload.push_back(MakeSynopsis({a}));
  }
  return workload;
}

std::unique_ptr<Cinderella> SerialReference(const CinderellaConfig& config,
                                            const std::vector<Row>& rows) {
  auto reference = std::move(Cinderella::Create(config)).value();
  for (const Row& row : rows) {
    Row copy = row;
    EXPECT_TRUE(reference->Insert(std::move(copy)).ok());
  }
  return reference;
}

void ExpectBatchedMatchesSerial(const CinderellaConfig& config,
                                const std::vector<Row>& rows,
                                size_t batch_rows, int shards) {
  const std::unique_ptr<Cinderella> reference = SerialReference(config, rows);

  auto batched = std::move(Cinderella::Create(config)).value();
  BatchInserterOptions options;
  options.shards = shards;
  const std::unique_ptr<BatchInserter> engine =
      AttachBatchInserter(batched.get(), options);
  for (size_t begin = 0; begin < rows.size(); begin += batch_rows) {
    const size_t end = std::min(rows.size(), begin + batch_rows);
    std::vector<Row> batch(rows.begin() + begin, rows.begin() + end);
    ASSERT_TRUE(batched->InsertBatch(std::move(batch)).ok());
  }

  ASSERT_TRUE(batched->VerifyIntegrity().ok());
  EXPECT_EQ(batched->catalog().partition_count(),
            reference->catalog().partition_count());
  EXPECT_EQ(Fingerprint(batched->catalog()),
            Fingerprint(reference->catalog()))
      << "batch=" << batch_rows << " shards=" << shards;
  // Identical partitionings score identical EFFICIENCY.
  const std::vector<Synopsis> workload = ProbeWorkload();
  EXPECT_DOUBLE_EQ(
      ComputeEfficiency(batched->catalog(), workload, config.measure)
          .efficiency,
      ComputeEfficiency(reference->catalog(), workload, config.measure)
          .efficiency);
}

TEST(BatchInserterTest, MatchesSerialAcrossBatchSizesAndShards) {
  AttributeDictionary dictionary;
  const std::vector<Row> rows = TestRows(1500, &dictionary);
  CinderellaConfig config;
  config.weight = 0.3;
  config.max_size = 200;
  for (const size_t batch : {size_t{1}, size_t{7}, size_t{256}}) {
    for (const int shards : {1, 3, 8}) {
      SCOPED_TRACE(testing::Message() << "batch=" << batch
                                      << " shards=" << shards);
      ExpectBatchedMatchesSerial(config, rows, batch, shards);
    }
  }
}

TEST(BatchInserterTest, MatchesSerialWithLargeBatches) {
  AttributeDictionary dictionary;
  const std::vector<Row> rows = TestRows(2000, &dictionary);
  CinderellaConfig config;
  config.weight = 0.4;
  config.max_size = 500;
  ExpectBatchedMatchesSerial(config, rows, 1024, 4);
}

TEST(BatchInserterTest, MatchesSerialWithSynopsisIndex) {
  AttributeDictionary dictionary;
  const std::vector<Row> rows = TestRows(800, &dictionary);
  CinderellaConfig config;
  config.weight = 0.3;
  config.max_size = 150;
  config.use_synopsis_index = true;
  ExpectBatchedMatchesSerial(config, rows, 128, 4);
}

TEST(BatchInserterTest, MatchesSerialUnnormalized) {
  AttributeDictionary dictionary;
  const std::vector<Row> rows = TestRows(600, &dictionary);
  CinderellaConfig config;
  config.weight = 0.3;
  config.max_size = 120;
  config.normalize_rating = false;
  ExpectBatchedMatchesSerial(config, rows, 64, 3);
}

TEST(BatchInserterTest, MatchesSerialWithDissolution) {
  AttributeDictionary dictionary;
  const std::vector<Row> rows = TestRows(600, &dictionary);
  CinderellaConfig config;
  config.weight = 0.3;
  config.max_size = 100;
  config.dissolve_threshold = 0.2;
  ExpectBatchedMatchesSerial(config, rows, 100, 2);
}

TEST(BatchInserterTest, MatchesSerialInWorkloadMode) {
  AttributeDictionary dictionary;
  const std::vector<Row> rows = TestRows(500, &dictionary);
  std::vector<Synopsis> workload;
  for (AttributeId a = 0; a < 40; a += 2) {
    workload.push_back(MakeSynopsis({a, static_cast<AttributeId>(a + 1)}));
  }
  CinderellaConfig config;
  config.weight = 0.3;
  config.max_size = 100;
  config.mode = SynopsisMode::kWorkloadBased;

  auto reference =
      std::move(Cinderella::Create(config, workload)).value();
  for (const Row& row : rows) {
    Row copy = row;
    ASSERT_TRUE(reference->Insert(std::move(copy)).ok());
  }

  auto batched = std::move(Cinderella::Create(config, workload)).value();
  BatchInserterOptions options;
  options.shards = 3;
  const std::unique_ptr<BatchInserter> engine =
      AttachBatchInserter(batched.get(), options);
  std::vector<Row> copy = rows;
  ASSERT_TRUE(batched->InsertBatch(std::move(copy)).ok());

  ASSERT_TRUE(batched->VerifyIntegrity().ok());
  EXPECT_EQ(Fingerprint(batched->catalog()),
            Fingerprint(reference->catalog()));
}

// -- Validation and mixed use -------------------------------------------------

TEST(BatchInserterTest, EmptyBatchIsANoOp) {
  CinderellaConfig config;
  auto c = std::move(Cinderella::Create(config)).value();
  const std::unique_ptr<BatchInserter> engine =
      AttachBatchInserter(c.get());
  EXPECT_TRUE(c->InsertBatch({}).ok());
  EXPECT_EQ(c->catalog().partition_count(), 0u);
  EXPECT_EQ(engine->stats().rows, 0u);
}

TEST(BatchInserterTest, RejectsDuplicatesBeforeMutating) {
  AttributeDictionary dictionary;
  std::vector<Row> rows = TestRows(50, &dictionary);
  CinderellaConfig config;
  config.max_size = 40;
  auto c = std::move(Cinderella::Create(config)).value();
  const std::unique_ptr<BatchInserter> engine =
      AttachBatchInserter(c.get());

  std::vector<Row> first(rows.begin(), rows.begin() + 30);
  ASSERT_TRUE(c->InsertBatch(std::move(first)).ok());
  const auto before = Fingerprint(c->catalog());

  // A batch whose 11th row duplicates a stored entity: rejected as a
  // whole, nothing applied.
  std::vector<Row> dup_existing(rows.begin() + 30, rows.begin() + 40);
  dup_existing.push_back(rows[5]);
  const Status stored = c->InsertBatch(std::move(dup_existing));
  EXPECT_EQ(stored.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Fingerprint(c->catalog()), before);

  // A batch that duplicates an id within itself: also rejected whole.
  std::vector<Row> dup_internal(rows.begin() + 30, rows.begin() + 40);
  dup_internal.push_back(rows[32]);
  const Status internal = c->InsertBatch(std::move(dup_internal));
  EXPECT_EQ(internal.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Fingerprint(c->catalog()), before);
  EXPECT_TRUE(c->VerifyIntegrity().ok());
}

TEST(BatchInserterTest, MixedSerialAndBatchedMatchesAllSerial) {
  AttributeDictionary dictionary;
  const std::vector<Row> rows = TestRows(900, &dictionary);
  CinderellaConfig config;
  config.weight = 0.3;
  config.max_size = 120;

  // Deletes + re-inserts applied identically to both instances.
  auto scrub = [&](Cinderella& c) {
    for (EntityId id = 100; id < 140; ++id) {
      ASSERT_TRUE(c.Delete(id).ok());
    }
    for (EntityId id = 100; id < 140; ++id) {
      Row copy = rows[id];
      ASSERT_TRUE(c.Insert(std::move(copy)).ok());
    }
  };

  // Reference: the same operation sequence, all single-row inserts.
  auto reference = std::move(Cinderella::Create(config)).value();
  for (size_t i = 0; i < 700; ++i) {
    Row copy = rows[i];
    ASSERT_TRUE(reference->Insert(std::move(copy)).ok());
  }
  scrub(*reference);
  for (size_t i = 700; i < rows.size(); ++i) {
    Row copy = rows[i];
    ASSERT_TRUE(reference->Insert(std::move(copy)).ok());
  }

  // Mixed: batch, then serial inserts (which dirty the catalog behind the
  // engine's back), then another batch (mirror rebuild path), then the
  // delete/re-insert scrub, then a final batch.
  auto mixed = std::move(Cinderella::Create(config)).value();
  BatchInserterOptions options;
  options.shards = 4;
  const std::unique_ptr<BatchInserter> engine =
      AttachBatchInserter(mixed.get(), options);
  std::vector<Row> first(rows.begin(), rows.begin() + 300);
  ASSERT_TRUE(mixed->InsertBatch(std::move(first)).ok());
  for (size_t i = 300; i < 450; ++i) {
    Row copy = rows[i];
    ASSERT_TRUE(mixed->Insert(std::move(copy)).ok());
  }
  std::vector<Row> second(rows.begin() + 450, rows.begin() + 700);
  ASSERT_TRUE(mixed->InsertBatch(std::move(second)).ok());
  EXPECT_GE(engine->stats().rebuilds, 1u);  // Serial inserts forced one.
  scrub(*mixed);
  std::vector<Row> tail(rows.begin() + 700, rows.end());
  ASSERT_TRUE(mixed->InsertBatch(std::move(tail)).ok());

  ASSERT_TRUE(mixed->VerifyIntegrity().ok());
  EXPECT_EQ(Fingerprint(mixed->catalog()), Fingerprint(reference->catalog()));
}

TEST(BatchInserterTest, StatsCountRowsAndWindows) {
  AttributeDictionary dictionary;
  std::vector<Row> rows = TestRows(300, &dictionary);
  CinderellaConfig config;
  config.max_size = 100;
  auto c = std::move(Cinderella::Create(config)).value();
  BatchInserterOptions options;
  options.window = 64;
  const std::unique_ptr<BatchInserter> engine =
      AttachBatchInserter(c.get(), options);
  ASSERT_TRUE(c->InsertBatch(std::move(rows)).ok());
  const BatchInserter::Stats stats = engine->stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.rows, 300u);
  EXPECT_EQ(stats.windows, (300u + 63u) / 64u);
  EXPECT_GT(stats.ratings, 0u);
}

TEST(BatchInserterTest, DetachRestoresSerialFallback) {
  AttributeDictionary dictionary;
  std::vector<Row> rows = TestRows(60, &dictionary);
  CinderellaConfig config;
  config.max_size = 50;
  auto c = std::move(Cinderella::Create(config)).value();
  {
    const std::unique_ptr<BatchInserter> engine =
        AttachBatchInserter(c.get());
    EXPECT_EQ(c->batch_engine(), engine.get());
    std::vector<Row> first(rows.begin(), rows.begin() + 30);
    ASSERT_TRUE(c->InsertBatch(std::move(first)).ok());
  }
  // Engine destroyed: InsertBatch falls back to the serial loop.
  EXPECT_EQ(c->batch_engine(), nullptr);
  std::vector<Row> second(rows.begin() + 30, rows.end());
  ASSERT_TRUE(c->InsertBatch(std::move(second)).ok());
  EXPECT_EQ(c->catalog().entity_count(), rows.size());
  EXPECT_TRUE(c->VerifyIntegrity().ok());
}

// -- Regressions --------------------------------------------------------------

// RestorePartition must reject duplicate ids within the restored batch
// before creating the partition (it bypasses the rating path).
TEST(BatchInserterTest, RestorePartitionRejectsIntraBatchDuplicates) {
  CinderellaConfig config;
  auto c = std::move(Cinderella::Create(config)).value();
  Row a(1);
  a.Set(0, Value(int64_t{1}));
  Row b(1);  // Same entity id.
  b.Set(1, Value(int64_t{2}));
  std::vector<Row> batch;
  batch.push_back(std::move(a));
  batch.push_back(std::move(b));
  const Status status = c->RestorePartition(std::move(batch));
  EXPECT_EQ(status.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(c->catalog().partition_count(), 0u);
  EXPECT_TRUE(c->VerifyIntegrity().ok());
}

// Split cascades must never leave empty partitions in the catalog (the
// eager sweep in SplitPartition): drive a load hot enough to cascade and
// lean on VerifyIntegrity's no-empty-partition invariant.
TEST(BatchInserterTest, SplitCascadesLeaveNoEmptyPartitions) {
  AttributeDictionary dictionary;
  std::vector<Row> rows = TestRows(1200, &dictionary, /*seed=*/7);
  CinderellaConfig config;
  config.weight = 0.5;  // Aggressive merging -> frequent splits.
  config.max_size = 24;
  auto c = std::move(Cinderella::Create(config)).value();
  const std::unique_ptr<BatchInserter> engine =
      AttachBatchInserter(c.get());
  ASSERT_TRUE(c->InsertBatch(std::move(rows)).ok());
  EXPECT_GT(c->stats().splits, 0u);
  size_t empties = 0;
  c->catalog().ForEachPartition([&](const Partition& partition) {
    if (partition.segment().rows().empty()) ++empties;
  });
  EXPECT_EQ(empties, 0u);
  EXPECT_TRUE(c->VerifyIntegrity().ok());
}

}  // namespace
}  // namespace cinderella
