// Tests for Partition (refcounted synopses, sizes, starters, sparseness)
// and RefcountedSynopsis.

#include <gtest/gtest.h>

#include "core/partition.h"
#include "core/refcounted_synopsis.h"

namespace cinderella {
namespace {

Row MakeRow(EntityId id, std::initializer_list<AttributeId> attrs) {
  Row row(id);
  for (AttributeId a : attrs) row.Set(a, Value(int64_t{1}));
  return row;
}

// -- RefcountedSynopsis --------------------------------------------------------

TEST(RefcountedSynopsisTest, AddRemoveMaintainsCounts) {
  RefcountedSynopsis rs;
  rs.Add(Synopsis{1, 2});
  rs.Add(Synopsis{2, 3});
  EXPECT_EQ(rs.RefCount(1), 1u);
  EXPECT_EQ(rs.RefCount(2), 2u);
  EXPECT_EQ(rs.RefCount(3), 1u);
  EXPECT_EQ(rs.synopsis().Count(), 3u);

  rs.Remove(Synopsis{2, 3});
  EXPECT_EQ(rs.RefCount(2), 1u);
  EXPECT_EQ(rs.RefCount(3), 0u);
  EXPECT_TRUE(rs.synopsis().Contains(2));
  EXPECT_FALSE(rs.synopsis().Contains(3));
}

TEST(RefcountedSynopsisTest, ReportsTransitions) {
  RefcountedSynopsis rs;
  std::vector<AttributeId> added;
  rs.Add(Synopsis{1, 2}, &added);
  EXPECT_EQ(added, (std::vector<AttributeId>{1, 2}));
  added.clear();
  rs.Add(Synopsis{2, 3}, &added);
  EXPECT_EQ(added, (std::vector<AttributeId>{3}));  // 2 was already present.

  std::vector<AttributeId> removed;
  rs.Remove(Synopsis{1, 2}, &removed);
  EXPECT_EQ(removed, (std::vector<AttributeId>{1}));  // 2 still referenced.
}

TEST(RefcountedSynopsisTest, ClearResets) {
  RefcountedSynopsis rs;
  rs.Add(Synopsis{5});
  rs.Clear();
  EXPECT_TRUE(rs.synopsis().Empty());
  EXPECT_EQ(rs.RefCount(5), 0u);
}

// -- Partition -------------------------------------------------------------------

TEST(PartitionTest, AddRowBuildsSynopsis) {
  Partition p(0, /*separate_rating_synopsis=*/false);
  ASSERT_TRUE(p.AddRow(MakeRow(1, {0, 1}), Synopsis{0, 1}).ok());
  ASSERT_TRUE(p.AddRow(MakeRow(2, {1, 2}), Synopsis{1, 2}).ok());
  EXPECT_EQ(p.entity_count(), 2u);
  EXPECT_EQ(p.attribute_synopsis(), (Synopsis{0, 1, 2}));
  // Entity-based: rating synopsis aliases the attribute synopsis.
  EXPECT_EQ(p.rating_synopsis(), p.attribute_synopsis());
}

TEST(PartitionTest, RemoveRowShrinksSynopsisWithLastCarrier) {
  Partition p(0, false);
  ASSERT_TRUE(p.AddRow(MakeRow(1, {0, 1}), Synopsis{0, 1}).ok());
  ASSERT_TRUE(p.AddRow(MakeRow(2, {1}), Synopsis{1}).ok());
  ASSERT_TRUE(p.RemoveRow(1, Synopsis{0, 1}).ok());
  EXPECT_EQ(p.attribute_synopsis(), Synopsis{1});
}

TEST(PartitionTest, SizesPerMeasure) {
  Partition p(0, false);
  Row r1 = MakeRow(1, {0, 1});
  Row r2 = MakeRow(2, {1, 2, 3});
  const uint64_t bytes = r1.byte_size() + r2.byte_size();
  ASSERT_TRUE(p.AddRow(std::move(r1), Synopsis{0, 1}).ok());
  ASSERT_TRUE(p.AddRow(std::move(r2), Synopsis{1, 2, 3}).ok());
  EXPECT_EQ(p.Size(SizeMeasure::kEntityCount), 2u);
  EXPECT_EQ(p.Size(SizeMeasure::kAttributeCount), 5u);
  EXPECT_EQ(p.Size(SizeMeasure::kByteSize), bytes);
}

TEST(PartitionTest, SeparateRatingSynopsis) {
  Partition p(0, /*separate_rating_synopsis=*/true);
  // Workload-based mode: rating ids are query ids, unrelated to attrs.
  ASSERT_TRUE(p.AddRow(MakeRow(1, {0, 1}), Synopsis{7}).ok());
  EXPECT_EQ(p.attribute_synopsis(), (Synopsis{0, 1}));
  EXPECT_EQ(p.rating_synopsis(), Synopsis{7});
  ASSERT_TRUE(p.RemoveRow(1, Synopsis{7}).ok());
  EXPECT_TRUE(p.rating_synopsis().Empty());
  EXPECT_TRUE(p.attribute_synopsis().Empty());
}

TEST(PartitionTest, RemoveRowClearsMatchingStarter) {
  Partition p(0, false);
  ASSERT_TRUE(p.AddRow(MakeRow(1, {0}), Synopsis{0}).ok());
  ASSERT_TRUE(p.AddRow(MakeRow(2, {1}), Synopsis{1}).ok());
  p.set_starter_a(Partition::Starter{1, Synopsis{0}});
  p.set_starter_b(Partition::Starter{2, Synopsis{1}});
  ASSERT_TRUE(p.RemoveRow(1, Synopsis{0}).ok());
  EXPECT_FALSE(p.starter_a().has_value());
  EXPECT_TRUE(p.starter_b().has_value());
}

TEST(PartitionTest, ReplaceRowUpdatesSynopsisAndStarter) {
  Partition p(0, false);
  ASSERT_TRUE(p.AddRow(MakeRow(1, {0, 1}), Synopsis{0, 1}).ok());
  p.set_starter_a(Partition::Starter{1, Synopsis{0, 1}});
  ASSERT_TRUE(p.ReplaceRow(MakeRow(1, {2}), Synopsis{0, 1}, Synopsis{2}).ok());
  EXPECT_EQ(p.attribute_synopsis(), Synopsis{2});
  ASSERT_TRUE(p.starter_a().has_value());
  EXPECT_EQ(p.starter_a()->synopsis, Synopsis{2});
  EXPECT_EQ(p.segment().Find(1)->attribute_count(), 1u);
}

TEST(PartitionTest, ReplaceMissingRowFails) {
  Partition p(0, false);
  EXPECT_EQ(p.ReplaceRow(MakeRow(9, {0}), Synopsis{}, Synopsis{0}).code(),
            StatusCode::kNotFound);
}

TEST(PartitionTest, SparsenessComputation) {
  Partition p(0, false);
  // Two entities over synopsis {0,1,2}: 2*3 = 6 slots, 4 cells -> 1/3.
  ASSERT_TRUE(p.AddRow(MakeRow(1, {0, 1, 2}), Synopsis{0, 1, 2}).ok());
  ASSERT_TRUE(p.AddRow(MakeRow(2, {0}), Synopsis{0}).ok());
  EXPECT_NEAR(p.Sparseness(), 1.0 - 4.0 / 6.0, 1e-12);
}

TEST(PartitionTest, SparsenessOfHomogeneousPartitionIsZero) {
  Partition p(0, false);
  ASSERT_TRUE(p.AddRow(MakeRow(1, {0, 1}), Synopsis{0, 1}).ok());
  ASSERT_TRUE(p.AddRow(MakeRow(2, {0, 1}), Synopsis{0, 1}).ok());
  EXPECT_DOUBLE_EQ(p.Sparseness(), 0.0);
}

TEST(PartitionTest, EmptyPartitionSparsenessZero) {
  Partition p(0, false);
  EXPECT_DOUBLE_EQ(p.Sparseness(), 0.0);
}

TEST(PartitionTest, ClearStarters) {
  Partition p(0, false);
  p.set_starter_a(Partition::Starter{1, Synopsis{0}});
  p.set_starter_b(Partition::Starter{2, Synopsis{1}});
  p.ClearStarters();
  EXPECT_FALSE(p.starter_a().has_value());
  EXPECT_FALSE(p.starter_b().has_value());
}

}  // namespace
}  // namespace cinderella
