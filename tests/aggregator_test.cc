// Tests for the morsel-driven adaptive GROUP BY engine
// (query/aggregator.h): reference correctness on mixed-type data, the
// determinism contract (bit-identical results across all three
// strategies, thread counts, schedules, and live-vs-snapshot sources),
// WHERE integration, shared-table overflow fallback, and the adaptive
// chooser's decisions. The cross-strategy property test also runs under
// TSan (tools/tier1.sh) to exercise the shared table's atomics.

#include <cstdio>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/cinderella.h"
#include "mvcc/partition_version.h"
#include "mvcc/versioned_table.h"
#include "query/aggregator.h"
#include "query/predicate.h"

namespace cinderella {
namespace {

constexpr AttributeId kGroup = 0;
constexpr AttributeId kValue = 1;

std::unique_ptr<Cinderella> MakePartitioner(uint64_t max_size = 64) {
  CinderellaConfig config;
  config.weight = 0.4;
  config.max_size = max_size;
  config.scan_threads = 1;
  return std::move(Cinderella::Create(config)).value();
}

/// Rows with a group key, an optional mixed-type value cell, and
/// clustered noise attributes so the catalog actually splits into many
/// partitions.
std::vector<Row> MakeRows(size_t count, uint64_t seed, int64_t groups) {
  std::mt19937_64 rng(seed);
  std::vector<Row> rows;
  rows.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Row row(static_cast<EntityId>(i));
    const int64_t g = static_cast<int64_t>(rng() % groups);
    if (g % 7 == 3) {
      // snprintf instead of string concatenation: GCC 12's Release-mode
      // string inlining misreports the "g" + to_string(...) form as
      // -Werror=restrict.
      char buf[32];
      std::snprintf(buf, sizeof(buf), "g%lld", static_cast<long long>(g));
      row.Set(kGroup, Value(std::string(buf)));
    } else {
      row.Set(kGroup, Value(g));
    }
    switch (rng() % 4) {
      case 0:
        row.Set(kValue, Value(static_cast<int64_t>(rng() % 1000) - 500));
        break;
      case 1:
        row.Set(kValue,
                Value(static_cast<double>(rng() % 1000) / 3.0 - 100.0));
        break;
      case 2:
        row.Set(kValue, Value("not-a-number"));
        break;
      default:
        break;  // Missing value cell.
    }
    const AttributeId base = static_cast<AttributeId>(2 + (i % 5) * 6);
    row.Set(base, Value(int64_t{1}));
    row.Set(base + 1, Value(int64_t{1}));
    rows.push_back(std::move(row));
  }
  return rows;
}

struct ValueOrder {
  bool operator()(const Value& a, const Value& b) const {
    return ValueLess(a, b);
  }
};

/// Serial reference aggregation straight off the row set, mirroring the
/// documented semantics: rows participate when the group attribute is
/// present and WHERE matches; int64/double cells feed the value
/// aggregates (doubles truncated), strings and missing cells do not.
std::vector<GroupResult> Reference(const std::vector<Row>& rows,
                                   const AggregateSpec& spec) {
  std::map<Value, GroupResult, ValueOrder> groups;
  for (const Row& row : rows) {
    const RowView view(row);
    const Value* key = view.Get(spec.group_by);
    if (key == nullptr) continue;
    if (spec.where != nullptr && !spec.where->Matches(view)) continue;
    auto [it, inserted] = groups.try_emplace(*key);
    GroupResult& g = it->second;
    if (inserted) g.key = *key;
    ++g.count;
    if (spec.value == AggregateSpec::kNoValue) continue;
    const Value* cell = view.Get(spec.value);
    if (cell == nullptr || cell->is_string()) continue;
    const int64_t v = cell->is_int64()
                          ? cell->as_int64()
                          : static_cast<int64_t>(cell->as_double());
    ++g.value_count;
    g.sum += v;
    g.min = std::min(g.min, v);
    g.max = std::max(g.max, v);
  }
  std::vector<GroupResult> out;
  out.reserve(groups.size());
  for (auto& [key, g] : groups) out.push_back(g);
  return out;
}

void ExpectSameGroups(const std::vector<GroupResult>& expected,
                      const std::vector<GroupResult>& actual,
                      const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_TRUE(expected[i] == actual[i])
        << label << ": group " << i << " key "
        << actual[i].key.ToString();
  }
}

TEST(AggregatorTest, MatchesHandBuiltAggregates) {
  auto c = MakePartitioner();
  std::vector<Row> rows;
  auto add = [&](EntityId id, Value group, const Value* value) {
    Row row(id);
    row.Set(kGroup, std::move(group));
    if (value != nullptr) row.Set(kValue, *value);
    rows.push_back(row);
    ASSERT_TRUE(c->Insert(rows.back()).ok());
  };
  const Value v7(int64_t{7});
  const Value v3(int64_t{-3});
  const Value vd(2.9);  // Truncates to 2.
  const Value vs(std::string("text"));
  add(0, Value(int64_t{1}), &v7);
  add(1, Value(int64_t{1}), &v3);
  add(2, Value(int64_t{1}), nullptr);
  add(3, Value(int64_t{2}), &vd);
  add(4, Value(int64_t{2}), &vs);  // Counted, excluded from value aggs.
  add(5, Value(std::string("one")), &v7);

  AggregateSpec spec;
  spec.group_by = kGroup;
  spec.value = kValue;
  Aggregator aggregator(c->catalog());
  const AggregationResult result = aggregator.Aggregate(spec);
  ASSERT_EQ(result.groups.size(), 3u);

  // Canonical order: int64 keys first (1, 2), then the string key.
  EXPECT_EQ(result.groups[0].key, Value(int64_t{1}));
  EXPECT_EQ(result.groups[0].count, 3u);
  EXPECT_EQ(result.groups[0].value_count, 2u);
  EXPECT_EQ(result.groups[0].sum, 4);
  EXPECT_EQ(result.groups[0].min, -3);
  EXPECT_EQ(result.groups[0].max, 7);

  EXPECT_EQ(result.groups[1].key, Value(int64_t{2}));
  EXPECT_EQ(result.groups[1].count, 2u);
  EXPECT_EQ(result.groups[1].value_count, 1u);
  EXPECT_EQ(result.groups[1].sum, 2);

  EXPECT_EQ(result.groups[2].key, Value(std::string("one")));
  EXPECT_EQ(result.groups[2].count, 1u);
  EXPECT_EQ(result.groups[2].sum, 7);
}

// AVG is not a separate accumulator: GroupResult::avg() derives it from
// the exact integer SUM/COUNT pair, so wherever those are bit-identical
// (every strategy and thread count) the quotient is too.
TEST(AggregatorTest, AvgDerivesExactlyFromSumAndCount) {
  const std::vector<Row> rows = MakeRows(1200, /*seed=*/5, /*groups=*/11);
  auto c = MakePartitioner();
  for (const Row& row : rows) ASSERT_TRUE(c->Insert(row).ok());

  AggregateSpec spec;
  spec.group_by = kGroup;
  spec.value = kValue;
  Aggregator reference(c->catalog());
  const AggregationResult base = reference.Aggregate(spec);
  ASSERT_FALSE(base.groups.empty());
  for (const GroupResult& g : base.groups) {
    if (g.value_count == 0) {
      EXPECT_EQ(g.avg(), 0.0);
    } else {
      EXPECT_EQ(g.avg(), static_cast<double>(g.sum) /
                             static_cast<double>(g.value_count));
    }
  }

  const AggregateStrategy strategies[] = {AggregateStrategy::kTwoPhase,
                                          AggregateStrategy::kRadix,
                                          AggregateStrategy::kSharedTable};
  for (const AggregateStrategy strategy : strategies) {
    AggregatorOptions options;
    options.scan_threads = 4;
    options.strategy = strategy;
    Aggregator aggregator(c->catalog(), options);
    const AggregationResult result = aggregator.Aggregate(spec);
    ASSERT_EQ(result.groups.size(), base.groups.size());
    for (size_t i = 0; i < base.groups.size(); ++i) {
      // Exact double equality on purpose: the derivation contract is
      // bit-identity, not approximation.
      EXPECT_EQ(result.groups[i].avg(), base.groups[i].avg());
    }
  }
}

// The determinism contract, as a randomized property: every strategy,
// thread count, schedule, and source yields the byte-for-byte same
// groups as the serial reference.
TEST(AggregatorTest, StrategiesThreadsAndSourcesAreBitIdentical) {
  const std::vector<Row> rows = MakeRows(3000, /*seed=*/17, /*groups=*/37);
  auto c = MakePartitioner();
  for (const Row& row : rows) ASSERT_TRUE(c->Insert(row).ok());
  VersionedTable table(MakePartitioner());
  {
    std::vector<Row> copy = rows;
    ASSERT_TRUE(table.InsertBatch(std::move(copy)).ok());
  }
  const VersionedTable::Snapshot snapshot = table.snapshot();

  AggregateSpec spec;
  spec.group_by = kGroup;
  spec.value = kValue;
  const std::vector<GroupResult> expected = Reference(rows, spec);
  ASSERT_FALSE(expected.empty());

  const AggregateStrategy strategies[] = {
      AggregateStrategy::kAdaptive, AggregateStrategy::kTwoPhase,
      AggregateStrategy::kRadix, AggregateStrategy::kSharedTable};
  for (const AggregateStrategy strategy : strategies) {
    for (const int threads : {1, 2, 8}) {
      for (const bool fixed : {false, true}) {
        AggregatorOptions options;
        options.scan_threads = threads;
        options.strategy = strategy;
        options.fixed_chunks = fixed;
        const std::string label =
            std::string(AggregateStrategyName(strategy)) + "/t" +
            std::to_string(threads) + (fixed ? "/fixed" : "/morsel");

        Aggregator live(c->catalog(), options);
        const AggregationResult from_live = live.Aggregate(spec);
        ExpectSameGroups(expected, from_live.groups, label + "/live");

        Aggregator pinned(snapshot.view(), options);
        const AggregationResult from_view = pinned.Aggregate(spec);
        ExpectSameGroups(expected, from_view.groups, label + "/view");

        // Participating-row count is part of the contract too.
        uint64_t participating = 0;
        for (const GroupResult& g : expected) participating += g.count;
        EXPECT_EQ(from_live.metrics.rows_matched, participating) << label;
        EXPECT_EQ(from_view.metrics.rows_matched, participating) << label;
      }
    }
  }
}

TEST(AggregatorTest, WherePredicateFiltersRows) {
  const std::vector<Row> rows = MakeRows(1500, /*seed=*/23, /*groups=*/12);
  auto c = MakePartitioner();
  for (const Row& row : rows) ASSERT_TRUE(c->Insert(row).ok());

  const PredicatePtr where = Compare(kValue, CompareOp::kGt, Value(int64_t{0}));
  AggregateSpec spec;
  spec.group_by = kGroup;
  spec.value = kValue;
  spec.where = where.get();
  const std::vector<GroupResult> expected = Reference(rows, spec);

  for (const int threads : {1, 8}) {
    AggregatorOptions options;
    options.scan_threads = threads;
    Aggregator aggregator(c->catalog(), options);
    const AggregationResult result = aggregator.Aggregate(spec);
    ExpectSameGroups(expected, result.groups,
                     "where/t" + std::to_string(threads));
  }
}

TEST(AggregatorTest, CountOnlyNeedsNoValueAttribute) {
  const std::vector<Row> rows = MakeRows(400, /*seed=*/5, /*groups=*/9);
  auto c = MakePartitioner();
  for (const Row& row : rows) ASSERT_TRUE(c->Insert(row).ok());

  AggregateSpec spec;
  spec.group_by = kGroup;  // value stays kNoValue.
  const std::vector<GroupResult> expected = Reference(rows, spec);
  Aggregator aggregator(c->catalog());
  const AggregationResult result = aggregator.Aggregate(spec);
  ExpectSameGroups(expected, result.groups, "count-only");
  for (const GroupResult& g : result.groups) {
    EXPECT_EQ(g.value_count, 0u);
    EXPECT_EQ(g.sum, 0);
  }
}

TEST(AggregatorTest, SharedTableOverflowFallsBackToTwoPhase) {
  const std::vector<Row> rows = MakeRows(2000, /*seed=*/31, /*groups=*/500);
  auto c = MakePartitioner();
  for (const Row& row : rows) ASSERT_TRUE(c->Insert(row).ok());

  AggregateSpec spec;
  spec.group_by = kGroup;
  spec.value = kValue;
  const std::vector<GroupResult> expected = Reference(rows, spec);
  ASSERT_GT(expected.size(), 128u);

  AggregatorOptions options;
  options.scan_threads = 4;
  options.strategy = AggregateStrategy::kSharedTable;
  options.shared_table_capacity = 128;  // << distinct groups: must spill.
  Aggregator aggregator(c->catalog(), options);
  const AggregationResult result = aggregator.Aggregate(spec);
  EXPECT_TRUE(result.shared_table_overflow);
  EXPECT_EQ(result.strategy_used, AggregateStrategy::kTwoPhase);
  ExpectSameGroups(expected, result.groups, "overflow-fallback");
}

TEST(AggregatorTest, ChooserPicksSharedTableForFewGroups) {
  const std::vector<Row> rows = MakeRows(2000, /*seed=*/41, /*groups=*/10);
  auto c = MakePartitioner();
  for (const Row& row : rows) ASSERT_TRUE(c->Insert(row).ok());

  AggregateSpec spec;
  spec.group_by = kGroup;
  spec.value = kValue;
  AggregatorOptions options;
  options.scan_threads = 4;
  Aggregator aggregator(c->catalog(), options);
  const AggregationResult result = aggregator.Aggregate(spec);
  EXPECT_EQ(result.strategy_used, AggregateStrategy::kSharedTable);
  EXPECT_GT(result.estimated_groups, 0u);
  EXPECT_FALSE(result.shared_table_overflow);
  ExpectSameGroups(Reference(rows, spec), result.groups, "chooser-shared");
}

TEST(AggregatorTest, ChooserPicksRadixForHugeCardinality) {
  // Near-unique keys; thresholds lowered so the test stays small.
  const std::vector<Row> rows = MakeRows(3000, /*seed=*/43, /*groups=*/2500);
  auto c = MakePartitioner();
  for (const Row& row : rows) ASSERT_TRUE(c->Insert(row).ok());

  AggregateSpec spec;
  spec.group_by = kGroup;
  spec.value = kValue;
  AggregatorOptions options;
  options.scan_threads = 4;
  options.sample_rows = 512;
  options.shared_max_groups = 64;
  options.radix_min_groups = 500;
  Aggregator aggregator(c->catalog(), options);
  const AggregationResult result = aggregator.Aggregate(spec);
  EXPECT_EQ(result.strategy_used, AggregateStrategy::kRadix);
  ExpectSameGroups(Reference(rows, spec), result.groups, "chooser-radix");
}

TEST(AggregatorTest, ChooserAvoidsSharedTableUnderHeavyHitterSkew) {
  // >50% of rows share one key: every thread would serialize on that
  // slot's atomics, so the chooser must fall through to two-phase.
  std::vector<Row> rows;
  for (size_t i = 0; i < 1200; ++i) {
    Row row(static_cast<EntityId>(i));
    row.Set(kGroup, Value(int64_t(i % 3 != 0 ? 0 : 1 + (i % 16))));
    row.Set(kValue, Value(static_cast<int64_t>(i)));
    const AttributeId base = static_cast<AttributeId>(2 + (i % 4) * 6);
    row.Set(base, Value(int64_t{1}));
    rows.push_back(std::move(row));
  }
  auto c = MakePartitioner();
  for (const Row& row : rows) ASSERT_TRUE(c->Insert(row).ok());

  AggregateSpec spec;
  spec.group_by = kGroup;
  spec.value = kValue;
  AggregatorOptions options;
  options.scan_threads = 4;
  Aggregator aggregator(c->catalog(), options);
  const AggregationResult result = aggregator.Aggregate(spec);
  EXPECT_EQ(result.strategy_used, AggregateStrategy::kTwoPhase);
  ExpectSameGroups(Reference(rows, spec), result.groups, "chooser-skew");
}

TEST(AggregatorTest, SerialDegreeNeverPicksTheSharedTable) {
  const std::vector<Row> rows = MakeRows(300, /*seed=*/47, /*groups=*/5);
  auto c = MakePartitioner();
  for (const Row& row : rows) ASSERT_TRUE(c->Insert(row).ok());

  AggregateSpec spec;
  spec.group_by = kGroup;
  // 5 groups would qualify for the shared table at degree > 1, but the
  // shared table only exists to dodge contention — serially it is pure
  // overhead, so the chooser must fall back to two-phase.
  Aggregator aggregator(c->catalog());  // scan_threads = 1.
  const AggregationResult result = aggregator.Aggregate(spec);
  EXPECT_EQ(aggregator.scan_degree(), 1);
  EXPECT_EQ(result.strategy_used, AggregateStrategy::kTwoPhase);
}

TEST(AggregatorTest, SerialDegreeStillPicksRadixAtHugeCardinality) {
  // Radix's cache win is independent of threads; nearly-all-distinct
  // keys should route to it even at degree 1.
  const std::vector<Row> rows = MakeRows(2000, /*seed=*/53, /*groups=*/1900);
  auto c = MakePartitioner();
  for (const Row& row : rows) ASSERT_TRUE(c->Insert(row).ok());

  AggregateSpec spec;
  spec.group_by = kGroup;
  AggregatorOptions options;
  options.scan_threads = 1;
  options.sample_rows = 256;
  options.radix_min_groups = 500;
  Aggregator aggregator(c->catalog(), options);
  const AggregationResult result = aggregator.Aggregate(spec);
  EXPECT_EQ(result.strategy_used, AggregateStrategy::kRadix);
}

TEST(AggregatorTest, PrunesPartitionsWithoutTheGroupAttribute) {
  auto c = MakePartitioner(/*max_size=*/16);
  // Half the entities carry the group attribute, half a disjoint schema;
  // clustering puts them in different partitions, which must be pruned.
  for (size_t i = 0; i < 200; ++i) {
    Row row(static_cast<EntityId>(i));
    if (i % 2 == 0) {
      row.Set(kGroup, Value(int64_t((i / 2) % 4)));
      row.Set(kValue, Value(int64_t{1}));
    } else {
      row.Set(40, Value(int64_t{1}));
      row.Set(41, Value(int64_t{1}));
    }
    ASSERT_TRUE(c->Insert(std::move(row)).ok());
  }
  AggregateSpec spec;
  spec.group_by = kGroup;
  Aggregator aggregator(c->catalog());
  const AggregationResult result = aggregator.Aggregate(spec);
  EXPECT_GT(result.metrics.partitions_pruned, 0u);
  EXPECT_EQ(result.metrics.rows_matched, 100u);
  ASSERT_EQ(result.groups.size(), 4u);
}

TEST(AggregatorTest, EmptyCatalogYieldsNoGroups) {
  auto c = MakePartitioner();
  AggregateSpec spec;
  spec.group_by = kGroup;
  AggregatorOptions options;
  options.scan_threads = 4;
  Aggregator aggregator(c->catalog(), options);
  const AggregationResult result = aggregator.Aggregate(spec);
  EXPECT_TRUE(result.groups.empty());
  EXPECT_EQ(result.metrics.rows_matched, 0u);
}

}  // namespace
}  // namespace cinderella
