// End-to-end tests of the networked scale-out path: a coordinator plus
// real NodeServers on loopback TCP must produce results bit-identical to
// single-node execution, prune whole nodes via synopsis digests, survive
// a killed node with a timely partial result, and serve per-node stats.

#include <algorithm>
#include <chrono>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/cinderella.h"
#include "mvcc/versioned_table.h"
#include "net/loopback_cluster.h"
#include "query/executor.h"

namespace cinderella {
namespace net {
namespace {

Row MakeRow(EntityId id, std::initializer_list<AttributeId> attrs) {
  Row row(id);
  int64_t v = static_cast<int64_t>(id);
  for (AttributeId a : attrs) row.Set(a, Value(v++));
  return row;
}

/// Four attribute families of 30 rows each; family f instantiates
/// attributes {f*10, f*10+1, f*10+2}.
std::vector<Row> FamilyRows() {
  std::vector<Row> rows;
  EntityId next = 0;
  for (AttributeId family = 0; family < 4; ++family) {
    const AttributeId base = family * 10;
    for (int i = 0; i < 30; ++i) {
      rows.push_back(MakeRow(next++, {base, base + 1, base + 2}));
    }
  }
  return rows;
}

CinderellaConfig SmallPartitions() {
  CinderellaConfig config;
  config.weight = 0.3;
  config.max_size = 20;  // Force several partitions per family.
  return config;
}

/// Single-node reference: the same rows through one partitioner, gathered
/// and sorted by entity id — the distributed result must match this
/// bit-for-bit.
std::vector<Row> ReferenceRows(const std::vector<Row>& rows,
                               const CinderellaConfig& config,
                               const Query& query) {
  auto partitioner = std::move(Cinderella::Create(config)).value();
  VersionedTable table(std::move(partitioner));
  EXPECT_TRUE(table.InsertBatch(rows).ok());
  const VersionedTable::Snapshot snapshot = table.snapshot();
  QueryExecutor executor(snapshot.view());
  std::vector<Row> gathered;
  executor.ExecuteGather(query, &gathered);
  std::sort(gathered.begin(), gathered.end(),
            [](const Row& a, const Row& b) { return a.id() < b.id(); });
  return gathered;
}

void ExpectBitIdentical(const std::vector<Row>& actual,
                        const std::vector<Row>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].id(), expected[i].id());
    ASSERT_EQ(actual[i].cells().size(), expected[i].cells().size());
    for (size_t c = 0; c < expected[i].cells().size(); ++c) {
      EXPECT_EQ(actual[i].cells()[c].attribute,
                expected[i].cells()[c].attribute);
      EXPECT_TRUE(actual[i].cells()[c].value == expected[i].cells()[c].value);
    }
  }
}

LoopbackClusterOptions FastFailOptions(size_t nodes) {
  LoopbackClusterOptions options;
  options.nodes = nodes;
  options.policy = PlacementPolicy::kSchemaAware;
  options.config = SmallPartitions();
  options.coordinator.timeout_ms = 2000;
  options.coordinator.retries = 1;
  options.coordinator.backoff_ms = 10;
  return options;
}

TEST(NetClusterTest, TwoNodeQueryBitIdenticalToSingleNode) {
  const std::vector<Row> rows = FamilyRows();
  LoopbackCluster cluster(FastFailOptions(2));
  ASSERT_TRUE(cluster.Load(rows).ok());

  const Query query(Synopsis{0, 1, 20});  // Families 0 and 2.
  GatherResult result = cluster.coordinator().Execute(query);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.nodes_failed, 0u);
  EXPECT_EQ(result.rows_matched, 60u);
  EXPECT_EQ(result.rows.size(), 60u);

  ExpectBitIdentical(result.rows,
                     ReferenceRows(rows, SmallPartitions(), query));
}

TEST(NetClusterTest, FourNodeQueryBitIdenticalAcrossPolicies) {
  const std::vector<Row> rows = FamilyRows();
  const Query query(Synopsis{11, 31});  // Families 1 and 3.
  const std::vector<Row> reference =
      ReferenceRows(rows, SmallPartitions(), query);

  for (const PlacementPolicy policy :
       {PlacementPolicy::kRoundRobin, PlacementPolicy::kLeastLoaded,
        PlacementPolicy::kSchemaAware}) {
    LoopbackClusterOptions options = FastFailOptions(4);
    options.policy = policy;
    LoopbackCluster cluster(options);
    ASSERT_TRUE(cluster.Load(rows).ok());
    GatherResult result = cluster.coordinator().Execute(query);
    EXPECT_TRUE(result.complete);
    ExpectBitIdentical(result.rows, reference);
  }
}

TEST(NetClusterTest, SynopsisDigestsPruneWholeNodes) {
  const std::vector<Row> rows = FamilyRows();
  // Schema-aware placement over as many nodes as families co-locates each
  // family, so a single-family query should skip most nodes entirely.
  LoopbackCluster cluster(FastFailOptions(4));
  ASSERT_TRUE(cluster.Load(rows).ok());

  const Query query(Synopsis{0});  // Family 0 only.
  GatherResult result = cluster.coordinator().Execute(query);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.rows_matched, 30u);
  EXPECT_GE(result.nodes_pruned, 1u);
  EXPECT_LT(result.nodes_contacted, result.nodes_total);
  EXPECT_EQ(result.nodes_contacted + result.nodes_pruned,
            result.nodes_total);
  // Pruned nodes were never asked, yet the result is still exact.
  ExpectBitIdentical(result.rows,
                     ReferenceRows(rows, SmallPartitions(), query));
}

TEST(NetClusterTest, QueryForUnknownAttributePrunesEverything) {
  LoopbackCluster cluster(FastFailOptions(2));
  ASSERT_TRUE(cluster.Load(FamilyRows()).ok());

  const Query query(Synopsis{999});  // Nobody instantiates this.
  GatherResult result = cluster.coordinator().Execute(query);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.nodes_pruned, 2u);
  EXPECT_EQ(result.nodes_contacted, 0u);
  EXPECT_TRUE(result.rows.empty());
}

TEST(NetClusterTest, KilledNodeYieldsTimelyPartialResult) {
  const std::vector<Row> rows = FamilyRows();
  LoopbackClusterOptions options = FastFailOptions(2);
  options.coordinator.timeout_ms = 500;
  options.coordinator.retries = 1;
  LoopbackCluster cluster(options);
  ASSERT_TRUE(cluster.Load(rows).ok());

  ASSERT_TRUE(cluster.StopNode(1).ok());

  const Query query(Synopsis{0, 10, 20, 30});  // Touches every family.
  const auto start = std::chrono::steady_clock::now();
  GatherResult result = cluster.coordinator().Execute(query);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();

  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.nodes_failed, 1u);
  // The live node's rows still arrive.
  EXPECT_GT(result.rows.size(), 0u);
  EXPECT_LT(result.rows.size(), rows.size());
  // Fast failure, not a hang: one connect (refused) + one retry with a
  // 10 ms backoff stays far under five seconds.
  EXPECT_LT(wall_ms, 5000.0);
  // The outcome names the dead node.
  bool found_failure = false;
  for (const NodeOutcome& outcome : result.nodes) {
    if (!outcome.ok) {
      found_failure = true;
      EXPECT_EQ(outcome.node, 1u);
      EXPECT_GE(outcome.attempts, 2);
      EXPECT_FALSE(outcome.error.empty());
    }
  }
  EXPECT_TRUE(found_failure);
}

TEST(NetClusterTest, NodeStatsSumToTable) {
  const std::vector<Row> rows = FamilyRows();
  LoopbackCluster cluster(FastFailOptions(3));
  ASSERT_TRUE(cluster.Load(rows).ok());

  // Serve one query so service counters move.
  const Query query(Synopsis{0, 10, 20, 30});
  GatherResult result = cluster.coordinator().Execute(query);
  EXPECT_TRUE(result.complete);

  uint64_t entities = 0;
  uint64_t partitions = 0;
  uint64_t bytes = 0;
  uint64_t shipped = 0;
  for (size_t n = 0; n < cluster.num_nodes(); ++n) {
    StatusOr<NodeStatsMsg> stats = cluster.coordinator().FetchStats(n);
    ASSERT_TRUE(stats.ok());
    entities += stats->entities;
    partitions += stats->partitions;
    bytes += stats->bytes;
    shipped += stats->rows_shipped;
    EXPECT_GT(stats->generation, 0u);
  }
  EXPECT_EQ(entities, rows.size());
  EXPECT_GT(partitions, 0u);
  EXPECT_GT(bytes, 0u);
  EXPECT_EQ(shipped, rows.size());  // The query matched every row.
}

TEST(NetClusterTest, PingAndDigestGenerations) {
  LoopbackCluster cluster(FastFailOptions(2));
  ASSERT_TRUE(cluster.Load(FamilyRows()).ok());
  for (size_t n = 0; n < cluster.num_nodes(); ++n) {
    EXPECT_TRUE(cluster.coordinator().Ping(n).ok());
    EXPECT_GT(cluster.coordinator().digest_generation(n), 0u);
  }
  ASSERT_TRUE(cluster.StopNode(0).ok());
  EXPECT_FALSE(cluster.coordinator().Ping(0).ok());
}

TEST(NetClusterTest, DigestsRefreshAfterWrites) {
  LoopbackCluster cluster(FastFailOptions(2));
  ASSERT_TRUE(cluster.Load(FamilyRows()).ok());
  Coordinator& coordinator = cluster.coordinator();

  // A brand-new attribute appears on node 0 after the cached digests.
  ASSERT_TRUE(
      cluster.node_table(0).Insert(MakeRow(10000, {500})).ok());
  const uint64_t before = coordinator.digest_generation(0);
  ASSERT_TRUE(coordinator.RefreshDigests().ok());
  EXPECT_GT(coordinator.digest_generation(0), before);

  // With the fresh digest, the new attribute's query reaches its node.
  GatherResult result = coordinator.Execute(Query(Synopsis{500}));
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].id(), 10000u);
}

}  // namespace
}  // namespace net
}  // namespace cinderella
