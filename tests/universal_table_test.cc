// Tests for the UniversalTable facade (name-based DML routed through a
// partitioner, like the paper's trigger-based prototype).

#include <memory>

#include <gtest/gtest.h>

#include "core/cinderella.h"
#include "core/universal_table.h"

namespace cinderella {
namespace {

UniversalTable MakeTable(double weight = 0.5, uint64_t max_size = 100) {
  CinderellaConfig config;
  config.weight = weight;
  config.max_size = max_size;
  return UniversalTable(std::move(Cinderella::Create(config)).value());
}

TEST(UniversalTableTest, InsertByNameInternsAttributes) {
  UniversalTable table = MakeTable();
  ASSERT_TRUE(table
                  .Insert(1, {{"name", Value("Canon S120")},
                              {"resolution", Value(12.1)}})
                  .ok());
  EXPECT_EQ(table.entity_count(), 1u);
  EXPECT_TRUE(table.dictionary().Find("name").has_value());
  EXPECT_TRUE(table.dictionary().Find("resolution").has_value());

  auto row = table.Get(1);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->attribute_count(), 2u);
  EXPECT_EQ(row->Get(*table.dictionary().Find("name"))->as_string(),
            "Canon S120");
}

TEST(UniversalTableTest, GetMissingFails) {
  UniversalTable table = MakeTable();
  EXPECT_EQ(table.Get(42).status().code(), StatusCode::kNotFound);
}

TEST(UniversalTableTest, DeleteRemoves) {
  UniversalTable table = MakeTable();
  ASSERT_TRUE(table.Insert(1, {{"a", Value(int64_t{1})}}).ok());
  ASSERT_TRUE(table.Delete(1).ok());
  EXPECT_EQ(table.entity_count(), 0u);
  EXPECT_EQ(table.Delete(1).code(), StatusCode::kNotFound);
}

TEST(UniversalTableTest, UpdateReplacesAttributes) {
  UniversalTable table = MakeTable();
  ASSERT_TRUE(table.Insert(1, {{"a", Value(int64_t{1})},
                               {"b", Value(int64_t{2})}})
                  .ok());
  ASSERT_TRUE(table.Update(1, {{"a", Value(int64_t{9})},
                               {"c", Value(int64_t{3})}})
                  .ok());
  auto row = table.Get(1);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->Get(*table.dictionary().Find("a"))->as_int64(), 9);
  EXPECT_EQ(row->Get(*table.dictionary().Find("b")), nullptr);
  EXPECT_NE(row->Get(*table.dictionary().Find("c")), nullptr);
}

TEST(UniversalTableTest, SharedAttributeSpaceAcrossEntities) {
  UniversalTable table = MakeTable();
  ASSERT_TRUE(table.Insert(1, {{"name", Value("x")}}).ok());
  ASSERT_TRUE(table.Insert(2, {{"name", Value("y")}}).ok());
  // Both rows carry the same attribute id for "name".
  const AttributeId name_id = *table.dictionary().Find("name");
  EXPECT_TRUE(table.Get(1)->Has(name_id));
  EXPECT_TRUE(table.Get(2)->Has(name_id));
  EXPECT_EQ(table.dictionary().size(), 1u);
}

TEST(UniversalTableTest, PartitionerAccessors) {
  UniversalTable table = MakeTable(0.4, 77);
  EXPECT_EQ(table.partitioner().name(), "cinderella(w=0.40,B=77,entities)");
  ASSERT_TRUE(table.Insert(1, {{"a", Value(int64_t{1})}}).ok());
  EXPECT_EQ(table.catalog().partition_count(), 1u);
}

TEST(UniversalTableTest, HeterogeneousEntitiesLandInDifferentPartitions) {
  UniversalTable table = MakeTable(0.3);
  ASSERT_TRUE(table
                  .Insert(1, {{"resolution", Value(12.1)},
                              {"aperture", Value(2.0)},
                              {"screen", Value(3.0)}})
                  .ok());
  ASSERT_TRUE(table
                  .Insert(2, {{"storage", Value("4TB")},
                              {"rotation", Value(int64_t{7200})},
                              {"form factor", Value("3.5\"")}})
                  .ok());
  EXPECT_EQ(table.catalog().partition_count(), 2u);
}

}  // namespace
}  // namespace cinderella
