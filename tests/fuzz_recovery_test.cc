// Failure-injection tests: a journal cut at *any* byte boundary must
// recover the longest valid prefix without errors or crashes, and a
// snapshot truncated anywhere must fail cleanly (never crash, never
// return a half-loaded table).

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/cinderella.h"
#include "core/snapshot.h"
#include "io/durable_table.h"
#include "io/journal.h"

namespace cinderella {
namespace {

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

Row MakeRow(EntityId id, Rng& rng) {
  Row row(id);
  const int attrs = 1 + static_cast<int>(rng.Uniform(4));
  for (int a = 0; a < attrs; ++a) {
    const AttributeId attribute = static_cast<AttributeId>(rng.Uniform(20));
    switch (rng.Uniform(3)) {
      case 0:
        row.Set(attribute, Value(static_cast<int64_t>(rng.Uniform(1000))));
        break;
      case 1:
        row.Set(attribute, Value(rng.UniformDouble()));
        break;
      default:
        row.Set(attribute, Value(std::string(rng.Uniform(12), 'x')));
        break;
    }
  }
  return row;
}

TEST(FuzzRecoveryTest, JournalTruncatedAtEveryBoundary) {
  const std::string path = TempPath("fuzz_journal.log");
  size_t full_entries = 0;
  {
    auto writer = JournalWriter::Open(path, true);
    ASSERT_TRUE(writer.ok());
    Rng rng(1);
    for (EntityId id = 0; id < 40; ++id) {
      ASSERT_TRUE((*writer)->LogInsert(MakeRow(id, rng)).ok());
      if (id % 5 == 4) {
        ASSERT_TRUE((*writer)->LogDelete(id - 2).ok());
      }
      if (id % 7 == 6) {
        ASSERT_TRUE((*writer)->LogAttribute(static_cast<AttributeId>(id),
                                            "attr" + std::to_string(id))
                        .ok());
      }
    }
    full_entries = (*writer)->entries_written();
  }
  const std::string full = ReadFile(path);
  ASSERT_GT(full.size(), 100u);

  // Sample many cut points, including every one of the first 64 bytes.
  Rng rng(2);
  size_t recovered_max = 0;
  for (size_t trial = 0; trial < 200; ++trial) {
    const size_t cut =
        trial < 64
            ? trial
            : (trial == 64
                   ? full.size()  // Uncut: everything must recover.
                   : static_cast<size_t>(rng.Uniform(full.size())));
    const std::string truncated_path = TempPath("fuzz_journal_cut.log");
    WriteFile(truncated_path, full.substr(0, cut));

    auto reader = JournalReader::Open(truncated_path);
    ASSERT_TRUE(reader.ok());
    JournalEntry entry;
    size_t recovered = 0;
    while (true) {
      StatusOr<bool> more = (*reader)->Next(&entry);
      // Corruption must end the stream, never crash; the only acceptable
      // error is a corrupt entry *kind* (cut landed on a kind byte of a
      // previous entry's payload — impossible here since we cut, not
      // flip; so Next() must succeed).
      ASSERT_TRUE(more.ok()) << "cut=" << cut;
      if (!*more) break;
      ++recovered;
    }
    EXPECT_LE(recovered, full_entries);
    recovered_max = std::max(recovered_max, recovered);
  }
  EXPECT_EQ(recovered_max, full_entries);  // Uncut tail recovers fully.
}

TEST(FuzzRecoveryTest, SnapshotTruncationFailsCleanly) {
  CinderellaConfig config;
  config.weight = 0.4;
  config.max_size = 16;
  auto c = std::move(Cinderella::Create(config)).value();
  AttributeDictionary dictionary;
  dictionary.GetOrCreate("alpha");
  Rng rng(3);
  for (EntityId id = 0; id < 120; ++id) {
    ASSERT_TRUE(c->Insert(MakeRow(id, rng)).ok());
  }
  std::stringstream buffer;
  ASSERT_TRUE(SaveSnapshot(*c, dictionary, buffer).ok());
  const std::string full = buffer.str();

  Rng cuts(4);
  for (size_t trial = 0; trial < 120; ++trial) {
    const size_t cut = trial < 32
                           ? trial
                           : static_cast<size_t>(cuts.Uniform(full.size()));
    std::stringstream truncated(full.substr(0, cut));
    auto restored = LoadSnapshot(truncated);
    // Never OK (the data is incomplete), never a crash.
    EXPECT_FALSE(restored.ok()) << "cut=" << cut;
  }
  // And the full snapshot still loads.
  std::stringstream intact(full);
  EXPECT_TRUE(LoadSnapshot(intact).ok());
}

TEST(FuzzRecoveryTest, DurableTableSurvivesRepeatedCrashes) {
  const std::string dir = TempPath("fuzz_durable");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  DurableTable::Options options;
  options.directory = dir;
  options.config.weight = 0.4;
  options.config.max_size = 32;

  Rng rng(9);
  EntityId next = 0;
  size_t expected_entities = 0;
  for (int epoch = 0; epoch < 6; ++epoch) {
    {
      auto table = DurableTable::Open(options);
      ASSERT_TRUE(table.ok()) << table.status().ToString();
      ASSERT_EQ((*table)->table().entity_count(), expected_entities);
      for (int op = 0; op < 50; ++op) {
        ASSERT_TRUE((*table)->InsertRow(MakeRow(next++, rng)).ok());
        ++expected_entities;
      }
      if (epoch % 2 == 0) {
        ASSERT_TRUE((*table)->Checkpoint().ok());
      }
      // "Crash": no clean shutdown beyond stream destructors.
    }
    // Occasionally tear the journal tail as a mid-append crash.
    if (epoch % 3 == 2) {
      const std::string journal = dir + "/journal.log";
      std::error_code ec;
      const auto size = std::filesystem::file_size(journal, ec);
      if (!ec && size > 4) {
        std::filesystem::resize_file(journal, size - 2, ec);
        // The torn final insert is lost.
        --expected_entities;
        --next;  // Re-insert the lost id next epoch.
      }
    }
  }
  auto final_table = DurableTable::Open(options);
  ASSERT_TRUE(final_table.ok());
  EXPECT_EQ((*final_table)->table().entity_count(), expected_entities);
}

// Group-commit crash consistency: a batch is journaled contiguously and
// fsynced once, so a crash that truncates the journal anywhere — even
// mid-batch — must recover an exact *prefix* of the insertion order,
// never a row without all of its predecessors.
TEST(FuzzRecoveryTest, GroupCommitCrashRecoversExactPrefix) {
  const std::string dir = TempPath("fuzz_group_commit");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  DurableTable::Options options;
  options.directory = dir;
  options.config.weight = 0.4;
  options.config.max_size = 32;
  options.group_commit_ops = 16;

  const size_t kRows = 120;
  const size_t kBatch = 30;
  {
    auto table = DurableTable::Open(options);
    ASSERT_TRUE(table.ok()) << table.status().ToString();
    Rng rng(21);
    uint64_t syncs_before = (*table)->journal_syncs();
    for (EntityId id = 0; id < kRows; id += kBatch) {
      std::vector<Row> batch;
      for (EntityId r = id; r < id + kBatch; ++r) {
        batch.push_back(MakeRow(r, rng));
      }
      ASSERT_TRUE((*table)->InsertBatch(std::move(batch)).ok());
      // The group-commit contract: exactly one fsync per batch.
      EXPECT_EQ((*table)->journal_syncs(), syncs_before + 1);
      syncs_before = (*table)->journal_syncs();
    }
  }
  const std::string journal = dir + "/journal.log";
  const std::string full = ReadFile(journal);
  ASSERT_GT(full.size(), 200u);

  Rng cuts(22);
  for (size_t trial = 0; trial < 80; ++trial) {
    const size_t cut = trial == 0
                           ? full.size()
                           : static_cast<size_t>(cuts.Uniform(full.size()));
    WriteFile(journal, full.substr(0, cut));
    std::filesystem::remove(dir + "/snapshot.bin");

    auto recovered = DurableTable::Open(options);
    ASSERT_TRUE(recovered.ok())
        << "cut=" << cut << ": " << recovered.status().ToString();
    const size_t count = (*recovered)->table().entity_count();
    EXPECT_LE(count, kRows) << "cut=" << cut;
    // Exact prefix: ids 0..count-1 present, nothing beyond.
    for (EntityId id = 0; id < kRows; ++id) {
      EXPECT_EQ((*recovered)->table().Get(id).ok(), id < count)
          << "cut=" << cut << " id=" << id;
    }
    EXPECT_TRUE((*recovered)->cinderella().VerifyIntegrity().ok())
        << "cut=" << cut;
    // Open() checkpoints away a torn tail, dirtying the files for the
    // next trial; restore the originals.
    std::filesystem::remove(dir + "/snapshot.bin");
    WriteFile(journal, full);
  }
}

// Mixed-op mutation batches (journal kind kMutationBatch) must recover at
// *op* granularity: a crash that truncates the journal mid-batch keeps
// every fully-written op before the tear and drops the rest, so replay
// yields exactly the state of serially applying the surviving op prefix —
// for inserts, updates, and deletes alike.
TEST(FuzzRecoveryTest, MutationBatchCrashRecoversExactOpPrefix) {
  const std::string dir = TempPath("fuzz_mutation_batch");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  DurableTable::Options options;
  options.directory = dir;
  options.config.weight = 0.4;
  options.config.max_size = 16;
  options.group_commit_ops = 16;

  // The logical op sequence, built so *every* prefix is valid when
  // replayed serially: inserts first, then mixed batches whose updates
  // only touch ids that are never deleted.
  std::vector<Mutation> ops;
  {
    Rng rng(41);
    for (EntityId id = 0; id < 48; ++id) {
      ops.push_back(Mutation::Insert(MakeRow(id, rng)));
    }
    for (int b = 0; b < 10; ++b) {
      ops.push_back(Mutation::Delete(static_cast<EntityId>(b)));
      for (int u = 0; u < 3; ++u) {
        const EntityId victim =
            10 + static_cast<EntityId>((b * 7 + u * 13) % 38);
        ops.push_back(Mutation::Update(MakeRow(victim, rng)));
      }
      ops.push_back(
          Mutation::Insert(MakeRow(100 + static_cast<EntityId>(b), rng)));
    }
  }

  // Journal the sequence through the unified pipeline: one kind-5 record
  // per ApplyMutations call.
  {
    auto table = DurableTable::Open(options);
    ASSERT_TRUE(table.ok()) << table.status().ToString();
    const size_t kBatch = 12;
    for (size_t begin = 0; begin < ops.size(); begin += kBatch) {
      const size_t end = std::min(ops.size(), begin + kBatch);
      std::vector<Mutation> batch(ops.begin() + begin, ops.begin() + end);
      ASSERT_TRUE((*table)->ApplyMutations(std::move(batch)).ok());
    }
  }
  const std::string journal = dir + "/journal.log";
  const std::string full = ReadFile(journal);
  ASSERT_GT(full.size(), 200u);

  Rng cuts(42);
  for (size_t trial = 0; trial < 100; ++trial) {
    const size_t cut = trial == 0
                           ? full.size()
                           : static_cast<size_t>(cuts.Uniform(full.size()));
    WriteFile(journal, full.substr(0, cut));
    std::filesystem::remove(dir + "/snapshot.bin");

    // Count the ops that survive the tear (the reader expands batch
    // records into per-op entries) and check they are a literal prefix of
    // the logical sequence.
    size_t survived = 0;
    {
      auto reader = JournalReader::Open(journal);
      ASSERT_TRUE(reader.ok());
      JournalEntry entry;
      while (true) {
        StatusOr<bool> more = (*reader)->Next(&entry);
        ASSERT_TRUE(more.ok()) << "cut=" << cut;
        if (!*more) break;
        if (entry.kind == JournalEntry::Kind::kAttribute) continue;
        ASSERT_LT(survived, ops.size()) << "cut=" << cut;
        const Mutation& expected = ops[survived];
        switch (entry.kind) {
          case JournalEntry::Kind::kInsert:
            EXPECT_EQ(expected.kind, Mutation::Kind::kInsert);
            break;
          case JournalEntry::Kind::kUpdate:
            EXPECT_EQ(expected.kind, Mutation::Kind::kUpdate);
            break;
          case JournalEntry::Kind::kDelete:
            EXPECT_EQ(expected.kind, Mutation::Kind::kDelete);
            break;
          default:
            FAIL() << "unexpected journal kind at cut=" << cut;
        }
        const EntityId expected_id = expected.kind == Mutation::Kind::kDelete
                                         ? expected.entity
                                         : expected.row.id();
        EXPECT_EQ(entry.entity, expected_id) << "cut=" << cut;
        ++survived;
      }
    }

    // Replay must equal serially applying exactly those `survived` ops.
    auto recovered = DurableTable::Open(options);
    ASSERT_TRUE(recovered.ok())
        << "cut=" << cut << ": " << recovered.status().ToString();
    auto reference = std::move(Cinderella::Create(options.config)).value();
    for (size_t i = 0; i < survived; ++i) {
      switch (ops[i].kind) {
        case Mutation::Kind::kInsert:
          ASSERT_TRUE(reference->Insert(ops[i].row).ok());
          break;
        case Mutation::Kind::kUpdate:
          ASSERT_TRUE(reference->Update(ops[i].row).ok());
          break;
        case Mutation::Kind::kDelete:
          ASSERT_TRUE(reference->Delete(ops[i].entity).ok());
          break;
      }
    }
    std::map<PartitionId, std::vector<EntityId>> got, want;
    (*recovered)->cinderella().catalog().ForEachPartition(
        [&](const Partition& partition) {
          for (const Row& row : partition.segment().rows()) {
            got[partition.id()].push_back(row.id());
          }
        });
    reference->catalog().ForEachPartition([&](const Partition& partition) {
      for (const Row& row : partition.segment().rows()) {
        want[partition.id()].push_back(row.id());
      }
    });
    EXPECT_EQ(got, want) << "cut=" << cut;
    EXPECT_TRUE((*recovered)->cinderella().VerifyIntegrity().ok())
        << "cut=" << cut;

    std::filesystem::remove(dir + "/snapshot.bin");
    WriteFile(journal, full);
  }
}

// Kind-6 (kSpill) tier-placement records: a journal interleaving spill
// sets with row ops must recover cleanly from a cut at *any* byte — a
// torn spill record ends the stream as a torn tail (never an error), and
// every record before the tear decodes with its exact cold set.
TEST(FuzzRecoveryTest, SpillRecordsTornAtEveryBoundaryRecoverCleanly) {
  const std::string path = TempPath("fuzz_spill_journal.log");
  std::vector<std::vector<EntityId>> logged_sets;
  size_t full_entries = 0;
  {
    auto writer = JournalWriter::Open(path, true);
    ASSERT_TRUE(writer.ok());
    Rng rng(51);
    for (EntityId id = 0; id < 30; ++id) {
      ASSERT_TRUE((*writer)->LogInsert(MakeRow(id, rng)).ok());
      if (id % 4 == 3) {
        // Growing cold sets, including an empty one (everything hot).
        std::vector<EntityId> cold;
        for (EntityId rep = 0; rep <= id; rep += 5) cold.push_back(rep);
        if (id % 8 == 3) cold.clear();
        ASSERT_TRUE((*writer)->LogSpillSet(cold).ok());
        logged_sets.push_back(std::move(cold));
      }
    }
    full_entries = (*writer)->entries_written();
  }
  const std::string full = ReadFile(path);
  ASSERT_GT(full.size(), 100u);

  Rng cuts(52);
  for (size_t trial = 0; trial <= 220; ++trial) {
    const size_t cut =
        trial < 96
            ? trial
            : (trial == 96 ? full.size()
                           : static_cast<size_t>(cuts.Uniform(full.size())));
    const std::string truncated_path = TempPath("fuzz_spill_cut.log");
    WriteFile(truncated_path, full.substr(0, cut));

    auto reader = JournalReader::Open(truncated_path);
    ASSERT_TRUE(reader.ok());
    JournalEntry entry;
    size_t recovered = 0;
    std::vector<std::vector<EntityId>> recovered_sets;
    while (true) {
      StatusOr<bool> more = (*reader)->Next(&entry);
      ASSERT_TRUE(more.ok()) << "cut=" << cut;
      if (!*more) break;
      if (entry.kind == JournalEntry::Kind::kSpill) {
        recovered_sets.push_back(entry.cold_set);
      }
      ++recovered;
    }
    EXPECT_LE(recovered, full_entries) << "cut=" << cut;
    // Every spill record that survived the cut is an exact prefix of the
    // logged sequence, byte-for-byte — a partially decoded set is never
    // surfaced.
    ASSERT_LE(recovered_sets.size(), logged_sets.size()) << "cut=" << cut;
    for (size_t i = 0; i < recovered_sets.size(); ++i) {
      EXPECT_EQ(recovered_sets[i], logged_sets[i]) << "cut=" << cut;
    }
    if (cut == full.size()) {
      EXPECT_EQ(recovered, full_entries);
      EXPECT_EQ(recovered_sets.size(), logged_sets.size());
    }
  }
}

// End-to-end tiered recovery under torn tails: a DurableTable that
// spilled partitions under a tight budget must reopen successfully from a
// journal cut anywhere — losing at most a suffix of operations and tier
// placements, never failing, never corrupting the partitioning.
TEST(FuzzRecoveryTest, TieredDurableTableSurvivesJournalCuts) {
  const std::string dir = TempPath("fuzz_tiered");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  DurableTable::Options options;
  options.directory = dir;
  options.config.weight = 0.4;
  options.config.max_size = 16;
  options.spill.page_size = 512;
  options.spill.pool_frames = 4;
  options.spill.budget_bytes = 2048;
  options.spill.min_idle = 1;

  const size_t kRows = 160;
  {
    auto table = DurableTable::Open(options);
    ASSERT_TRUE(table.ok()) << table.status().ToString();
    Rng rng(61);
    for (EntityId id = 0; id < kRows; ++id) {
      ASSERT_TRUE((*table)->InsertRow(MakeRow(id, rng)).ok());
    }
    // The tight budget forced spills, so the journal carries kSpill
    // records interleaved with the inserts.
    ASSERT_TRUE((*table)->tiering_enabled());
    EXPECT_GT((*table)->cinderella().stats().spills, 0u);
  }
  const std::string journal = dir + "/journal.log";
  const std::string full = ReadFile(journal);
  ASSERT_GT(full.size(), 200u);

  Rng cuts(62);
  for (size_t trial = 0; trial < 60; ++trial) {
    const size_t cut = trial == 0
                           ? full.size()
                           : static_cast<size_t>(cuts.Uniform(full.size()));
    WriteFile(journal, full.substr(0, cut));
    std::filesystem::remove(dir + "/snapshot.bin");

    auto recovered = DurableTable::Open(options);
    ASSERT_TRUE(recovered.ok())
        << "cut=" << cut << ": " << recovered.status().ToString();
    const size_t count = (*recovered)->table().entity_count();
    EXPECT_LE(count, kRows) << "cut=" << cut;
    EXPECT_TRUE((*recovered)->cinderella().VerifyIntegrity().ok())
        << "cut=" << cut;
    if (cut == full.size()) {
      EXPECT_EQ(count, kRows);
    }
    std::filesystem::remove(dir + "/snapshot.bin");
    WriteFile(journal, full);
  }
}

// Coalescing policy on the single-op path: with group_commit_ops = G,
// one fsync every G journaled operations instead of one per op.
TEST(FuzzRecoveryTest, GroupCommitCoalescesSingleOpSyncs) {
  const std::string dir = TempPath("fuzz_group_coalesce");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  DurableTable::Options options;
  options.directory = dir;
  options.config.max_size = 64;
  options.sync_every_op = true;  // Overridden by group_commit_ops.
  options.group_commit_ops = 8;

  auto table = DurableTable::Open(options);
  ASSERT_TRUE(table.ok());
  Rng rng(31);
  for (EntityId id = 0; id < 20; ++id) {
    ASSERT_TRUE((*table)->InsertRow(MakeRow(id, rng)).ok());
  }
  // 20 ops at G=8: syncs after ops 8 and 16 only.
  EXPECT_EQ((*table)->journal_syncs(), 2u);
}

}  // namespace
}  // namespace cinderella
