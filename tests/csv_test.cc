// Tests for wide-CSV import/export of sparse universal tables.

#include <memory>
#include <sstream>

#include <gtest/gtest.h>

#include "core/cinderella.h"
#include "core/universal_table.h"
#include "io/csv.h"

namespace cinderella {
namespace {

UniversalTable MakeTable() {
  CinderellaConfig config;
  config.weight = 0.5;
  config.max_size = 100;
  return UniversalTable(std::move(Cinderella::Create(config)).value());
}

TEST(CsvImportTest, BasicSparseImport) {
  UniversalTable table = MakeTable();
  std::stringstream in(
      "id,name,resolution,storage\n"
      "1,Canon S120,12.1,\n"
      "2,WD4000FYYZ,,4TB\n");
  ASSERT_TRUE(ImportCsv(in, &table).ok());
  EXPECT_EQ(table.entity_count(), 2u);
  auto row1 = table.Get(1);
  ASSERT_TRUE(row1.ok());
  EXPECT_EQ(row1->attribute_count(), 2u);  // Empty cell skipped.
  EXPECT_EQ(row1->Get(*table.dictionary().Find("name"))->as_string(),
            "Canon S120");
  EXPECT_DOUBLE_EQ(
      row1->Get(*table.dictionary().Find("resolution"))->as_double(), 12.1);
  auto row2 = table.Get(2);
  EXPECT_EQ(row2->Get(*table.dictionary().Find("storage"))->as_string(),
            "4TB");
}

TEST(CsvImportTest, TypeInference) {
  UniversalTable table = MakeTable();
  std::stringstream in("id,a,b,c\n1,42,2.5,hello\n");
  ASSERT_TRUE(ImportCsv(in, &table).ok());
  auto row = table.Get(1);
  EXPECT_TRUE(row->Get(*table.dictionary().Find("a"))->is_int64());
  EXPECT_TRUE(row->Get(*table.dictionary().Find("b"))->is_double());
  EXPECT_TRUE(row->Get(*table.dictionary().Find("c"))->is_string());
}

TEST(CsvImportTest, InferenceDisabled) {
  UniversalTable table = MakeTable();
  CsvOptions options;
  options.infer_types = false;
  std::stringstream in("id,a\n1,42\n");
  ASSERT_TRUE(ImportCsv(in, &table, options).ok());
  EXPECT_TRUE(table.Get(1)->Get(*table.dictionary().Find("a"))->is_string());
}

TEST(CsvImportTest, AutoAssignsIdsWithoutIdColumn) {
  UniversalTable table = MakeTable();
  std::stringstream in("a,b\n1,2\n3,4\n");
  ASSERT_TRUE(ImportCsv(in, &table).ok());
  EXPECT_EQ(table.entity_count(), 2u);
  EXPECT_TRUE(table.Get(0).ok());
  EXPECT_TRUE(table.Get(1).ok());
}

TEST(CsvImportTest, QuotedFields) {
  UniversalTable table = MakeTable();
  std::stringstream in(
      "id,name,comment\n"
      "1,\"Grimm, Brothers\",\"said \"\"hi\"\"\"\n"
      "2,\"multi\nline\",x\n");
  ASSERT_TRUE(ImportCsv(in, &table).ok());
  EXPECT_EQ(table.Get(1)->Get(*table.dictionary().Find("name"))->as_string(),
            "Grimm, Brothers");
  EXPECT_EQ(
      table.Get(1)->Get(*table.dictionary().Find("comment"))->as_string(),
      "said \"hi\"");
  EXPECT_EQ(table.Get(2)->Get(*table.dictionary().Find("name"))->as_string(),
            "multi\nline");
}

TEST(CsvImportTest, CrLfAndBlankLines) {
  UniversalTable table = MakeTable();
  std::stringstream in("id,a\r\n1,x\r\n\r\n2,y\r\n");
  ASSERT_TRUE(ImportCsv(in, &table).ok());
  EXPECT_EQ(table.entity_count(), 2u);
}

TEST(CsvImportTest, Errors) {
  {
    UniversalTable table = MakeTable();
    std::stringstream in("");
    EXPECT_FALSE(ImportCsv(in, &table).ok());
  }
  {
    UniversalTable table = MakeTable();
    std::stringstream in("id,a\nnot_a_number,x\n");
    EXPECT_EQ(ImportCsv(in, &table).code(), StatusCode::kInvalidArgument);
  }
  {
    UniversalTable table = MakeTable();
    std::stringstream in("id,a\n1,x,y,z\n");
    EXPECT_EQ(ImportCsv(in, &table).code(), StatusCode::kInvalidArgument);
  }
  {
    UniversalTable table = MakeTable();
    std::stringstream in("id,a\n1,x\n1,y\n");  // Duplicate id.
    EXPECT_EQ(ImportCsv(in, &table).code(), StatusCode::kAlreadyExists);
  }
  {
    UniversalTable table = MakeTable();
    std::stringstream in("id,a\n1,\"unterminated\n");
    EXPECT_EQ(ImportCsv(in, &table).code(), StatusCode::kInvalidArgument);
  }
}

TEST(CsvRoundTripTest, ExportThenImportPreservesData) {
  UniversalTable table = MakeTable();
  ASSERT_TRUE(table.Insert(5, {{"name", Value("a,b")},
                               {"size", Value(int64_t{7})}})
                  .ok());
  ASSERT_TRUE(table.Insert(2, {{"size", Value(int64_t{9})},
                               {"note", Value("x\"y")}})
                  .ok());

  std::stringstream buffer;
  ASSERT_TRUE(ExportCsv(table, buffer).ok());

  UniversalTable reloaded = MakeTable();
  ASSERT_TRUE(ImportCsv(buffer, &reloaded).ok());
  EXPECT_EQ(reloaded.entity_count(), 2u);
  EXPECT_EQ(
      reloaded.Get(5)->Get(*reloaded.dictionary().Find("name"))->as_string(),
      "a,b");
  EXPECT_EQ(
      reloaded.Get(5)->Get(*reloaded.dictionary().Find("size"))->as_int64(),
      7);
  EXPECT_EQ(
      reloaded.Get(2)->Get(*reloaded.dictionary().Find("note"))->as_string(),
      "x\"y");
  // Entity 2 never had "name": the empty cell stays absent.
  EXPECT_EQ(reloaded.Get(2)->Get(*reloaded.dictionary().Find("name")),
            nullptr);
}

TEST(CsvExportTest, RowsSortedById) {
  UniversalTable table = MakeTable();
  ASSERT_TRUE(table.Insert(30, {{"a", Value(int64_t{1})}}).ok());
  ASSERT_TRUE(table.Insert(10, {{"a", Value(int64_t{1})}}).ok());
  ASSERT_TRUE(table.Insert(20, {{"a", Value(int64_t{1})}}).ok());
  std::stringstream buffer;
  ASSERT_TRUE(ExportCsv(table, buffer).ok());
  std::string line;
  std::getline(buffer, line);  // Header.
  std::getline(buffer, line);
  EXPECT_EQ(line.substr(0, 3), "10,");
  std::getline(buffer, line);
  EXPECT_EQ(line.substr(0, 3), "20,");
}

TEST(CsvFileTest, MissingFile) {
  UniversalTable table = MakeTable();
  EXPECT_EQ(ImportCsvFromFile("/nonexistent/file.csv", &table).code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace cinderella
