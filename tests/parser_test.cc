// Tests for the mini query language: lexing, parsing, binding, predicate
// semantics, and executor integration.

#include <memory>

#include <gtest/gtest.h>

#include "core/cinderella.h"
#include "query/executor.h"
#include "query/parser.h"

namespace cinderella {
namespace {

class ParserTest : public testing::Test {
 protected:
  void SetUp() override {
    name_ = dictionary_.GetOrCreate("name");
    weight_ = dictionary_.GetOrCreate("weight");
    screen_ = dictionary_.GetOrCreate("screen");
    odd_ = dictionary_.GetOrCreate("odd name");
  }

  Row MakeRow(EntityId id, int64_t weight, bool with_screen) {
    Row row(id);
    row.Set(name_, Value("entity"));
    row.Set(weight_, Value(weight));
    if (with_screen) row.Set(screen_, Value(3.5));
    return row;
  }

  AttributeDictionary dictionary_;
  AttributeId name_ = 0;
  AttributeId weight_ = 0;
  AttributeId screen_ = 0;
  AttributeId odd_ = 0;
};

TEST_F(ParserTest, ProjectionOnly) {
  auto statement = ParseSelect("SELECT name, weight", dictionary_);
  ASSERT_TRUE(statement.ok()) << statement.status().ToString();
  EXPECT_EQ(statement->projection,
            (std::vector<AttributeId>{name_, weight_}));
  EXPECT_FALSE(statement->select_all);
  EXPECT_EQ(statement->where, nullptr);
}

TEST_F(ParserTest, SelectStar) {
  auto statement = ParseSelect("select *", dictionary_);
  ASSERT_TRUE(statement.ok());
  EXPECT_TRUE(statement->select_all);
}

TEST_F(ParserTest, PaperShapedQuery) {
  auto statement = ParseSelect(
      "SELECT name, weight WHERE name IS NOT NULL OR weight IS NOT NULL",
      dictionary_);
  ASSERT_TRUE(statement.ok()) << statement.status().ToString();
  ASSERT_NE(statement->where, nullptr);
  Row with_name(1);
  with_name.Set(name_, Value("x"));
  Row with_neither(2);
  EXPECT_TRUE(statement->where->Matches(with_name));
  EXPECT_FALSE(statement->where->Matches(with_neither));
  // The paper-shaped OR is prunable.
  Synopsis pruning;
  EXPECT_TRUE(statement->where->PruningSynopsis(&pruning));
  EXPECT_EQ(pruning, Synopsis({name_, weight_}));
}

TEST_F(ParserTest, ComparisonsAndPrecedence) {
  // AND binds tighter than OR.
  auto statement = ParseSelect(
      "SELECT * WHERE weight > 100 AND screen <= 4.0 OR name = 'x'",
      dictionary_);
  ASSERT_TRUE(statement.ok());
  Row heavy_small(1);
  heavy_small.Set(weight_, Value(int64_t{200}));
  heavy_small.Set(screen_, Value(3.0));
  EXPECT_TRUE(statement->where->Matches(heavy_small));
  Row named(2);
  named.Set(name_, Value("x"));
  EXPECT_TRUE(statement->where->Matches(named));
  Row light(3);
  light.Set(weight_, Value(int64_t{50}));
  light.Set(screen_, Value(3.0));
  EXPECT_FALSE(statement->where->Matches(light));
}

TEST_F(ParserTest, ParenthesesOverridePrecedence) {
  auto statement = ParseSelect(
      "SELECT * WHERE weight > 100 AND (screen <= 4.0 OR name = 'x')",
      dictionary_);
  ASSERT_TRUE(statement.ok());
  Row named_light(1);
  named_light.Set(name_, Value("x"));
  named_light.Set(weight_, Value(int64_t{50}));
  EXPECT_FALSE(statement->where->Matches(named_light));  // weight fails.
}

TEST_F(ParserTest, IsNullAndNot) {
  auto statement =
      ParseSelect("SELECT * WHERE screen IS NULL AND NOT weight > 10",
                  dictionary_);
  ASSERT_TRUE(statement.ok());
  Row no_screen_light(1);
  no_screen_light.Set(weight_, Value(int64_t{5}));
  EXPECT_TRUE(statement->where->Matches(no_screen_light));
  Row with_screen(2);
  with_screen.Set(screen_, Value(1.0));
  with_screen.Set(weight_, Value(int64_t{5}));
  EXPECT_FALSE(statement->where->Matches(with_screen));
}

TEST_F(ParserTest, QuotedIdentifiersAndOperators) {
  auto statement = ParseSelect(
      "SELECT \"odd name\" WHERE \"odd name\" != 7 AND weight <> 3",
      dictionary_);
  ASSERT_TRUE(statement.ok()) << statement.status().ToString();
  EXPECT_EQ(statement->projection, std::vector<AttributeId>{odd_});
}

TEST_F(ParserTest, NegativeAndDecimalLiterals) {
  auto statement =
      ParseSelect("SELECT * WHERE weight >= -5 AND screen < 10.25",
                  dictionary_);
  ASSERT_TRUE(statement.ok());
  Row row(1);
  row.Set(weight_, Value(int64_t{-2}));
  row.Set(screen_, Value(10.0));
  EXPECT_TRUE(statement->where->Matches(row));
}

TEST_F(ParserTest, KeywordsAreCaseInsensitive) {
  EXPECT_TRUE(ParseSelect("sElEcT * wHeRe name Is NoT nUlL", dictionary_)
                  .ok());
}

TEST_F(ParserTest, Errors) {
  EXPECT_FALSE(ParseSelect("", dictionary_).ok());
  EXPECT_FALSE(ParseSelect("FROM x", dictionary_).ok());
  EXPECT_FALSE(ParseSelect("SELECT", dictionary_).ok());
  EXPECT_FALSE(ParseSelect("SELECT unknown_attr", dictionary_).ok());
  EXPECT_FALSE(ParseSelect("SELECT * WHERE unknown > 1", dictionary_).ok());
  EXPECT_FALSE(ParseSelect("SELECT * WHERE weight >", dictionary_).ok());
  EXPECT_FALSE(ParseSelect("SELECT * WHERE weight > 1 extra", dictionary_)
                   .ok());
  EXPECT_FALSE(ParseSelect("SELECT * WHERE (weight > 1", dictionary_).ok());
  EXPECT_FALSE(ParseSelect("SELECT * WHERE weight IS 5", dictionary_).ok());
  EXPECT_FALSE(ParseSelect("SELECT * WHERE weight > 'unterminated",
                           dictionary_)
                   .ok());
  EXPECT_FALSE(ParseSelect("SELECT * WHERE weight ~ 5", dictionary_).ok());
}

TEST_F(ParserTest, ExecuteSelectEndToEnd) {
  CinderellaConfig config;
  config.weight = 0.5;
  config.max_size = 100;
  auto partitioner = std::move(Cinderella::Create(config)).value();
  for (EntityId id = 0; id < 30; ++id) {
    ASSERT_TRUE(partitioner
                    ->Insert(MakeRow(id, static_cast<int64_t>(id * 10),
                                     /*with_screen=*/id % 3 == 0))
                    .ok());
  }
  QueryExecutor executor(partitioner->catalog());

  auto filtered = ParseSelect("SELECT name WHERE weight >= 200 AND screen "
                              "IS NOT NULL",
                              dictionary_);
  ASSERT_TRUE(filtered.ok());
  const QueryResult r1 = executor.ExecuteSelect(*filtered);
  // ids 20..29 have weight >= 200; of those 21, 24, 27 have screens.
  EXPECT_EQ(r1.metrics.rows_matched, 3u);
  EXPECT_EQ(r1.cells_materialized, 3u);  // One "name" per match.

  auto everything = ParseSelect("SELECT *", dictionary_);
  ASSERT_TRUE(everything.ok());
  const QueryResult r2 = executor.ExecuteSelect(*everything);
  EXPECT_EQ(r2.metrics.rows_matched, 30u);
  EXPECT_EQ(r2.cells_materialized, 30u * 2 + 10u);  // name+weight+screens.
}

TEST_F(ParserTest, GroupByWithAggregates) {
  auto statement = ParseSelect(
      "SELECT name, COUNT(*), SUM(weight), MIN(weight), MAX(weight) "
      "WHERE weight > 0 GROUP BY name",
      dictionary_);
  ASSERT_TRUE(statement.ok()) << statement.status().ToString();
  EXPECT_TRUE(statement->has_group_by);
  EXPECT_EQ(statement->group_by, name_);
  EXPECT_EQ(statement->projection, (std::vector<AttributeId>{name_}));
  ASSERT_EQ(statement->aggregates.size(), 4u);
  EXPECT_EQ(statement->aggregates[0].fn, AggregateFn::kCount);
  EXPECT_TRUE(statement->aggregates[0].count_all);
  EXPECT_EQ(statement->aggregates[1].fn, AggregateFn::kSum);
  EXPECT_EQ(statement->aggregates[1].attribute, weight_);
  EXPECT_EQ(statement->aggregates[2].fn, AggregateFn::kMin);
  EXPECT_EQ(statement->aggregates[3].fn, AggregateFn::kMax);
  ASSERT_NE(statement->where, nullptr);
}

TEST_F(ParserTest, AvgAggregate) {
  auto statement = ParseSelect(
      "SELECT name, AVG(weight), SUM(weight), COUNT(weight) GROUP BY name",
      dictionary_);
  ASSERT_TRUE(statement.ok()) << statement.status().ToString();
  ASSERT_EQ(statement->aggregates.size(), 3u);
  EXPECT_EQ(statement->aggregates[0].fn, AggregateFn::kAvg);
  EXPECT_EQ(statement->aggregates[0].attribute, weight_);
  EXPECT_FALSE(statement->aggregates[0].count_all);
  // AVG(*) is meaningless and rejected like SUM(*).
  EXPECT_FALSE(ParseSelect("SELECT AVG(*) GROUP BY name", dictionary_).ok());
  // Like the other aggregate keywords, a bare "avg" stays an attribute.
  const AttributeId avg_attr = dictionary_.GetOrCreate("avg");
  auto bare = ParseSelect("SELECT avg", dictionary_);
  ASSERT_TRUE(bare.ok()) << bare.status().ToString();
  EXPECT_EQ(bare->projection, (std::vector<AttributeId>{avg_attr}));
}

TEST_F(ParserTest, CountOfAttribute) {
  auto statement =
      ParseSelect("SELECT COUNT(weight) GROUP BY name", dictionary_);
  ASSERT_TRUE(statement.ok()) << statement.status().ToString();
  ASSERT_EQ(statement->aggregates.size(), 1u);
  EXPECT_EQ(statement->aggregates[0].fn, AggregateFn::kCount);
  EXPECT_FALSE(statement->aggregates[0].count_all);
  EXPECT_EQ(statement->aggregates[0].attribute, weight_);
}

TEST_F(ParserTest, AggregateKeywordsStayOrdinaryNamesWithoutParens) {
  // COUNT/SUM/MIN/MAX only become functions when followed by '('.
  const AttributeId count_attr = dictionary_.GetOrCreate("count");
  auto statement = ParseSelect("SELECT count", dictionary_);
  ASSERT_TRUE(statement.ok()) << statement.status().ToString();
  EXPECT_EQ(statement->projection, (std::vector<AttributeId>{count_attr}));
  EXPECT_TRUE(statement->aggregates.empty());
}

TEST_F(ParserTest, GroupByRejectsMalformedShapes) {
  // Aggregates need GROUP BY.
  EXPECT_FALSE(ParseSelect("SELECT COUNT(*)", dictionary_).ok());
  // GROUP BY needs at least one aggregate.
  EXPECT_FALSE(ParseSelect("SELECT name GROUP BY name", dictionary_).ok());
  // Plain item must be the grouping attribute.
  EXPECT_FALSE(
      ParseSelect("SELECT weight, COUNT(*) GROUP BY name", dictionary_).ok());
  // One common value attribute across aggregates.
  EXPECT_FALSE(ParseSelect("SELECT SUM(weight), MIN(screen) GROUP BY name",
                           dictionary_)
                   .ok());
  // SELECT * cannot be grouped.
  EXPECT_FALSE(ParseSelect("SELECT * GROUP BY name", dictionary_).ok());
  // '*' only inside COUNT.
  EXPECT_FALSE(ParseSelect("SELECT SUM(*) GROUP BY name", dictionary_).ok());
  // Unknown grouping attribute.
  EXPECT_FALSE(
      ParseSelect("SELECT COUNT(*) GROUP BY nonexistent", dictionary_).ok());
  // Missing BY.
  EXPECT_FALSE(ParseSelect("SELECT COUNT(*) GROUP name", dictionary_).ok());
}

}  // namespace
}  // namespace cinderella
