// Wire-codec robustness tests: every message round-trips bit-exactly,
// and a frame truncated at *any* byte, torn, bit-flipped, or carrying a
// bad magic/version/type/checksum must yield a clean Status (or a
// need-more-bytes signal) — never a crash or an over-read.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "net/frame.h"
#include "net/protocol.h"

namespace cinderella {
namespace net {
namespace {

Row MakeRow(EntityId id, Rng& rng) {
  Row row(id);
  const int attrs = 1 + static_cast<int>(rng.Uniform(5));
  for (int a = 0; a < attrs; ++a) {
    const AttributeId attribute = static_cast<AttributeId>(rng.Uniform(30));
    switch (rng.Uniform(3)) {
      case 0:
        row.Set(attribute, Value(static_cast<int64_t>(rng.Uniform(100000))));
        break;
      case 1:
        row.Set(attribute, Value(rng.UniformDouble()));
        break;
      default:
        row.Set(attribute, Value(std::string(rng.Uniform(20), 'y')));
        break;
    }
  }
  return row;
}

TEST(NetFrameTest, FrameRoundTrip) {
  const std::string payload = "hello, shard";
  const std::string encoded = EncodeFrame(FrameType::kQueryRequest, payload);
  EXPECT_EQ(encoded.size(), kFrameHeaderBytes + payload.size());

  Frame frame;
  size_t consumed = 0;
  StatusOr<bool> decoded = DecodeFrame(encoded, &frame, &consumed);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(*decoded);
  EXPECT_EQ(consumed, encoded.size());
  EXPECT_EQ(frame.type, FrameType::kQueryRequest);
  EXPECT_EQ(frame.payload, payload);
}

TEST(NetFrameTest, EmptyPayloadFrame) {
  const std::string encoded = EncodeFrame(FrameType::kPing, "");
  Frame frame;
  size_t consumed = 0;
  StatusOr<bool> decoded = DecodeFrame(encoded, &frame, &consumed);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(*decoded);
  EXPECT_EQ(frame.type, FrameType::kPing);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(NetFrameTest, TruncationAtEveryByteNeverCrashes) {
  const std::string encoded =
      EncodeFrame(FrameType::kRowBatch, std::string(100, 'z'));
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    Frame frame;
    size_t consumed = 0;
    StatusOr<bool> decoded =
        DecodeFrame(std::string_view(encoded.data(), cut), &frame, &consumed);
    // A valid prefix is always "need more bytes", never an error and
    // never a phantom complete frame.
    ASSERT_TRUE(decoded.ok()) << "cut at " << cut << ": "
                              << decoded.status().ToString();
    EXPECT_FALSE(*decoded) << "cut at " << cut;
    EXPECT_EQ(consumed, 0u);
  }
}

TEST(NetFrameTest, BadMagicRejectedEvenOnShortBuffers) {
  std::string encoded = EncodeFrame(FrameType::kPing, "");
  encoded[0] = 'X';
  for (size_t cut = 1; cut <= encoded.size(); ++cut) {
    Frame frame;
    size_t consumed = 0;
    StatusOr<bool> decoded =
        DecodeFrame(std::string_view(encoded.data(), cut), &frame, &consumed);
    EXPECT_FALSE(decoded.ok()) << "cut at " << cut;
  }
}

TEST(NetFrameTest, BadVersionRejected) {
  std::string encoded = EncodeFrame(FrameType::kPing, "");
  encoded[4] = static_cast<char>(kWireVersion + 1);
  Frame frame;
  size_t consumed = 0;
  EXPECT_FALSE(DecodeFrame(encoded, &frame, &consumed).ok());
}

TEST(NetFrameTest, BadTypeRejected) {
  for (const uint8_t type : {uint8_t{0}, uint8_t{kMaxFrameType + 1},
                             uint8_t{255}}) {
    std::string encoded = EncodeFrame(FrameType::kPing, "");
    encoded[5] = static_cast<char>(type);
    Frame frame;
    size_t consumed = 0;
    EXPECT_FALSE(DecodeFrame(encoded, &frame, &consumed).ok())
        << "type " << static_cast<int>(type);
  }
}

TEST(NetFrameTest, NonzeroReservedRejected) {
  std::string encoded = EncodeFrame(FrameType::kPing, "");
  encoded[6] = 1;
  Frame frame;
  size_t consumed = 0;
  EXPECT_FALSE(DecodeFrame(encoded, &frame, &consumed).ok());
}

TEST(NetFrameTest, OversizedLengthRejectedWithoutAllocating) {
  std::string encoded = EncodeFrame(FrameType::kRowBatch, "abc");
  const uint32_t huge = kMaxFramePayload + 1;
  std::memcpy(encoded.data() + 8, &huge, sizeof(huge));
  Frame frame;
  size_t consumed = 0;
  EXPECT_FALSE(DecodeFrame(encoded, &frame, &consumed).ok());
}

TEST(NetFrameTest, CorruptedChecksumRejected) {
  std::string encoded = EncodeFrame(FrameType::kQueryDone, "payload bytes");
  encoded[encoded.size() - 1] ^= 0x40;  // Flip a payload bit.
  Frame frame;
  size_t consumed = 0;
  StatusOr<bool> decoded = DecodeFrame(encoded, &frame, &consumed);
  EXPECT_FALSE(decoded.ok());
}

TEST(NetFrameTest, HeaderBitFlipsNeverCrash) {
  const std::string pristine =
      EncodeFrame(FrameType::kSynopsisResponse, std::string(64, 'q'));
  for (size_t byte = 0; byte < kFrameHeaderBytes; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupted = pristine;
      corrupted[byte] ^= static_cast<char>(1 << bit);
      Frame frame;
      size_t consumed = 0;
      // Any outcome but a crash/over-read is acceptable; a flip that
      // decodes must at least still checksum-match.
      StatusOr<bool> decoded = DecodeFrame(corrupted, &frame, &consumed);
      if (decoded.ok() && *decoded) {
        EXPECT_EQ(FrameChecksum(frame.payload),
                  FrameChecksum(std::string(64, 'q')));
      }
    }
  }
}

TEST(NetProtocolTest, QueryRequestRoundTrip) {
  QueryRequestMsg msg;
  msg.request_id = 42;
  msg.attributes = {3, 1, 4, 159};
  QueryRequestMsg out;
  ASSERT_TRUE(DecodeQueryRequest(EncodeQueryRequest(msg), &out).ok());
  EXPECT_EQ(out.request_id, 42u);
  EXPECT_EQ(out.attributes, msg.attributes);
}

TEST(NetProtocolTest, RowBatchRoundTripBitExact) {
  Rng rng(7);
  RowBatchMsg msg;
  msg.request_id = 9;
  msg.sequence = 3;
  for (EntityId id = 0; id < 50; ++id) msg.rows.push_back(MakeRow(id, rng));

  RowBatchMsg out;
  ASSERT_TRUE(DecodeRowBatch(EncodeRowBatch(msg), &out).ok());
  EXPECT_EQ(out.request_id, 9u);
  EXPECT_EQ(out.sequence, 3u);
  ASSERT_EQ(out.rows.size(), msg.rows.size());
  for (size_t i = 0; i < msg.rows.size(); ++i) {
    EXPECT_EQ(out.rows[i].id(), msg.rows[i].id());
    ASSERT_EQ(out.rows[i].attribute_count(), msg.rows[i].attribute_count());
    for (size_t c = 0; c < msg.rows[i].cells().size(); ++c) {
      EXPECT_EQ(out.rows[i].cells()[c].attribute,
                msg.rows[i].cells()[c].attribute);
      EXPECT_TRUE(out.rows[i].cells()[c].value == msg.rows[i].cells()[c].value);
    }
  }
}

TEST(NetProtocolTest, QueryDoneRoundTrip) {
  QueryDoneMsg msg;
  msg.request_id = 5;
  msg.batches = 2;
  msg.partitions_total = 10;
  msg.partitions_scanned = 4;
  msg.partitions_pruned = 6;
  msg.rows_scanned = 1000;
  msg.rows_matched = 321;
  msg.cells_shipped = 642;
  QueryDoneMsg out;
  ASSERT_TRUE(DecodeQueryDone(EncodeQueryDone(msg), &out).ok());
  EXPECT_EQ(out.partitions_pruned, 6u);
  EXPECT_EQ(out.rows_matched, 321u);
  EXPECT_EQ(out.cells_shipped, 642u);
}

TEST(NetProtocolTest, SynopsisDigestRoundTrip) {
  SynopsisDigestMsg msg;
  msg.generation = 17;
  msg.partitions = 8;
  msg.entities = 4000;
  msg.union_words = {0xdeadbeefULL, 0x0, 0xffffULL};
  SynopsisDigestMsg out;
  ASSERT_TRUE(DecodeSynopsisDigest(EncodeSynopsisDigest(msg), &out).ok());
  EXPECT_EQ(out.generation, 17u);
  EXPECT_EQ(out.union_words, msg.union_words);
}

TEST(NetProtocolTest, NodeStatsRoundTrip) {
  NodeStatsMsg msg;
  msg.generation = 3;
  msg.partitions = 12;
  msg.entities = 999;
  msg.bytes = 123456;
  msg.queries_served = 7;
  msg.rows_shipped = 888;
  NodeStatsMsg out;
  ASSERT_TRUE(DecodeNodeStats(EncodeNodeStats(msg), &out).ok());
  EXPECT_EQ(out.bytes, 123456u);
  EXPECT_EQ(out.rows_shipped, 888u);
}

TEST(NetProtocolTest, ErrorRoundTrip) {
  const Status original = Status::Unavailable("node 3 is down");
  ErrorMsg msg;
  ASSERT_TRUE(DecodeError(EncodeError(original), &msg).ok());
  const Status restored = ErrorToStatus(msg);
  EXPECT_EQ(restored.code(), StatusCode::kUnavailable);
  EXPECT_EQ(restored.message(), "node 3 is down");
}

TEST(NetProtocolTest, PayloadTruncationAtEveryByteFailsCleanly) {
  Rng rng(11);
  RowBatchMsg batch;
  batch.request_id = 1;
  for (EntityId id = 0; id < 10; ++id) batch.rows.push_back(MakeRow(id, rng));
  QueryRequestMsg query;
  query.request_id = 2;
  query.attributes = {1, 2, 3};
  SynopsisDigestMsg digest;
  digest.union_words = {1, 2, 3};

  // Each decoder must reject every strict prefix of its own payload
  // outright (the trailing done() check means a torn payload can never
  // half-succeed); other decoders applied to the same torn bytes must
  // merely never crash or over-read.
  const auto fuzz_one = [](const std::string& payload, const auto& decode) {
    for (size_t cut = 0; cut < payload.size(); ++cut) {
      const std::string_view torn(payload.data(), cut);
      EXPECT_FALSE(decode(torn)) << "cut at " << cut;
      RowBatchMsg b;
      QueryRequestMsg q;
      QueryDoneMsg d;
      SynopsisDigestMsg s;
      NodeStatsMsg n;
      ErrorMsg e;
      (void)DecodeRowBatch(torn, &b);
      (void)DecodeQueryRequest(torn, &q);
      (void)DecodeQueryDone(torn, &d);
      (void)DecodeSynopsisDigest(torn, &s);
      (void)DecodeNodeStats(torn, &n);
      (void)DecodeError(torn, &e);
    }
  };
  fuzz_one(EncodeRowBatch(batch), [](std::string_view torn) {
    RowBatchMsg out;
    return DecodeRowBatch(torn, &out).ok();
  });
  fuzz_one(EncodeQueryRequest(query), [](std::string_view torn) {
    QueryRequestMsg out;
    return DecodeQueryRequest(torn, &out).ok();
  });
  fuzz_one(EncodeQueryDone(QueryDoneMsg{}), [](std::string_view torn) {
    QueryDoneMsg out;
    return DecodeQueryDone(torn, &out).ok();
  });
  fuzz_one(EncodeSynopsisDigest(digest), [](std::string_view torn) {
    SynopsisDigestMsg out;
    return DecodeSynopsisDigest(torn, &out).ok();
  });
  fuzz_one(EncodeNodeStats(NodeStatsMsg{}), [](std::string_view torn) {
    NodeStatsMsg out;
    return DecodeNodeStats(torn, &out).ok();
  });
  fuzz_one(EncodeError(Status::Internal("boom")), [](std::string_view torn) {
    ErrorMsg out;
    return DecodeError(torn, &out).ok();
  });
}

TEST(NetProtocolTest, RandomBitFlipsNeverCrashDecoders) {
  Rng rng(13);
  RowBatchMsg batch;
  batch.request_id = 77;
  for (EntityId id = 0; id < 20; ++id) batch.rows.push_back(MakeRow(id, rng));
  const std::string pristine = EncodeRowBatch(batch);

  for (int trial = 0; trial < 500; ++trial) {
    std::string corrupted = pristine;
    const size_t flips = 1 + rng.Uniform(4);
    for (size_t f = 0; f < flips; ++f) {
      const size_t pos = rng.Uniform(corrupted.size());
      corrupted[pos] ^= static_cast<char>(1 << rng.Uniform(8));
    }
    RowBatchMsg out;
    // OK or clean error — the assertion is simply "no crash, no
    // over-read" under ASan/UBSan.
    (void)DecodeRowBatch(corrupted, &out);
  }
}

}  // namespace
}  // namespace net
}  // namespace cinderella
