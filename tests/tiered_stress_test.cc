// Concurrency stress for the tiered read path: snapshot readers scan
// mixed-residency MVCC views (fetching cold rows through the tier's
// buffer pool) while a writer keeps inserting, spilling, and faulting
// partitions back. Run under TSan by tools/tier1.sh; the invariant each
// reader checks — a match-all scan over a pinned view returns exactly the
// view's entity count — holds regardless of how residency changes
// underneath it.

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/cinderella.h"
#include "mvcc/versioned_table.h"
#include "query/executor.h"
#include "query/predicate.h"
#include "storage/tiered_store.h"

namespace cinderella {
namespace {

Row PatternRow(EntityId id) {
  Row row(id);
  const AttributeId base = static_cast<AttributeId>((id % 5) * 10);
  row.Set(base, Value(int64_t{1}));
  row.Set(base + 1, Value(static_cast<int64_t>(id)));
  return row;
}

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

TEST(TieredStressTest, SnapshotReadersOverASpillingWriter) {
  CinderellaConfig config;
  config.weight = 0.4;
  config.max_size = 32;
  VersionedTable table(std::move(Cinderella::Create(config)).value());

  TieredStoreOptions tier_options;
  tier_options.path = TempPath("tiered_stress.pages");
  tier_options.page_size = 1024;
  tier_options.pool_frames = 8;
  auto tier = std::move(TieredStore::Open(tier_options)).value();
  table.partitioner().set_cold_tier(tier.get());

  constexpr int kRounds = 12;
  constexpr int kRowsPerRound = 150;
  constexpr int kReaders = 3;

  std::atomic<bool> done{false};
  std::atomic<uint64_t> scans{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      const PredicatePtr match_all = And(std::vector<PredicatePtr>{});
      const PredicatePtr family = IsNotNull(20);
      while (!done.load(std::memory_order_acquire)) {
        const VersionedTable::Snapshot snapshot = table.snapshot();
        QueryExecutor executor(snapshot.view(), 1);
        const QueryResult all = executor.ExecutePredicate(*match_all);
        ASSERT_EQ(all.metrics.rows_matched, snapshot.view().entity_count());
        // A selective scan must stay internally consistent too: matched
        // rows never exceed the rows its non-pruned partitions hold.
        const QueryResult some = executor.ExecutePredicate(*family);
        ASSERT_LE(some.metrics.rows_matched, some.metrics.rows_scanned);
        scans.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  EntityId next = 0;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<Row> rows;
    rows.reserve(kRowsPerRound);
    for (int i = 0; i < kRowsPerRound; ++i) rows.push_back(PatternRow(next++));
    ASSERT_TRUE(table.InsertBatch(std::move(rows)).ok());

    // Demote everything, then fault a slice back via updates: every round
    // flips residency both ways under the readers.
    std::vector<PartitionId> ids;
    table.partitioner().catalog().ForEachPartition(
        [&](const Partition& partition) { ids.push_back(partition.id()); });
    ASSERT_TRUE(table.SpillPartitions(ids).ok());

    std::vector<Row> updates;
    for (EntityId id = static_cast<EntityId>(round); id < next; id += 37) {
      updates.push_back(PatternRow(id));
    }
    ASSERT_TRUE(table.UpdateBatch(std::move(updates)).ok());
  }
  done.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  EXPECT_GT(scans.load(), 0u);
  EXPECT_GT(table.partitioner().stats().spills, 0u);
  EXPECT_GT(table.partitioner().stats().faults, 0u);
  EXPECT_TRUE(table.partitioner().VerifyIntegrity().ok());
  EXPECT_EQ(table.entity_count(), static_cast<size_t>(next));
}

}  // namespace
}  // namespace cinderella
