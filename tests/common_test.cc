// Unit tests for src/common: status, rng, zipf, histogram, stats, printer.

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/env.h"
#include "common/histogram.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/table_printer.h"
#include "common/zipf.h"

namespace cinderella {
namespace {

// -- Status -----------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kAlreadyExists),
               "AlreadyExists");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "Unimplemented");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(Status::InvalidArgument("bad"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> result(std::string("hello"));
  std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "hello");
}

Status Helper(bool fail) {
  CINDERELLA_RETURN_IF_ERROR(fail ? Status::Internal("boom") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Helper(false).ok());
  EXPECT_EQ(Helper(true).code(), StatusCode::kInternal);
}

// -- Rng ----------------------------------------------------------------------

TEST(RngTest, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformInBounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformCoversAllValues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.Uniform(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformIntRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = items;
  rng.Shuffle(items);
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, sorted);
}

// -- Zipf ---------------------------------------------------------------------

TEST(ZipfTest, Theta0IsUniform) {
  ZipfSampler zipf(4, 0.0);
  for (size_t k = 0; k < 4; ++k) EXPECT_NEAR(zipf.Pmf(k), 0.25, 1e-12);
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler zipf(50, 1.1);
  double total = 0.0;
  for (size_t k = 0; k < 50; ++k) total += zipf.Pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, SkewFavorsLowRanks) {
  ZipfSampler zipf(100, 1.0);
  EXPECT_GT(zipf.Pmf(0), zipf.Pmf(1));
  EXPECT_GT(zipf.Pmf(1), zipf.Pmf(10));
  EXPECT_GT(zipf.Pmf(10), zipf.Pmf(99));
}

TEST(ZipfTest, SampleMatchesPmf) {
  ZipfSampler zipf(10, 1.0);
  Rng rng(23);
  std::vector<int> counts(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  for (size_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(counts[k] / static_cast<double>(n), zipf.Pmf(k), 0.01)
        << "rank " << k;
  }
}

// -- LogHistogram ---------------------------------------------------------------

TEST(LogHistogramTest, BucketsValues) {
  LogHistogram h(1.0, 10.0, 4);  // [1,10) [10,100) [100,1000) [1000,10000)
  h.Add(5.0);
  h.Add(50.0);
  h.Add(55.0);
  h.Add(0.5);      // underflow
  h.Add(1e6);      // overflow
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 0u);
}

TEST(LogHistogramTest, TracksMinMax) {
  LogHistogram h(0.001, 2.0, 30);
  h.Add(3.0);
  h.Add(0.25);
  h.Add(7.5);
  EXPECT_DOUBLE_EQ(h.min_seen(), 0.25);
  EXPECT_DOUBLE_EQ(h.max_seen(), 7.5);
}

TEST(LogHistogramTest, QuantileApproximation) {
  LogHistogram h(0.1, 1.3, 60);
  for (int i = 1; i <= 1000; ++i) h.Add(i * 0.01);  // 0.01 .. 10
  const double median = h.Quantile(0.5);
  EXPECT_GT(median, 2.0);
  EXPECT_LT(median, 8.0);
  EXPECT_LE(h.Quantile(0.1), h.Quantile(0.9));
}

TEST(LogHistogramTest, ToStringRendersBars) {
  LogHistogram h(1.0, 10.0, 3);
  for (int i = 0; i < 5; ++i) h.Add(2.0);
  const std::string out = h.ToString();
  EXPECT_NE(out.find('#'), std::string::npos);
}

// -- Stats ----------------------------------------------------------------------

TEST(StatsTest, EmptySample) {
  const SampleSummary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(StatsTest, SingleValue) {
  const SampleSummary s = Summarize({4.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.min, 4.0);
  EXPECT_EQ(s.max, 4.0);
  EXPECT_EQ(s.median, 4.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(StatsTest, KnownSample) {
  const SampleSummary s = Summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.p25, 2.0);
  EXPECT_DOUBLE_EQ(s.p75, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.0), 1e-12);
}

TEST(StatsTest, QuantileSortedInterpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(QuantileSorted(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(QuantileSorted(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(QuantileSorted(v, 1.0), 10.0);
}

// -- TablePrinter ------------------------------------------------------------------

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({std::string("a"), std::string("1")});
  t.AddRow({std::string("long-name"), std::string("2.5")});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TablePrinterTest, FormatDoubleTrimsZeros) {
  EXPECT_EQ(TablePrinter::FormatDouble(1.5, 4), "1.5");
  EXPECT_EQ(TablePrinter::FormatDouble(2.0, 4), "2");
  EXPECT_EQ(TablePrinter::FormatDouble(0.12345, 2), "0.12");
}

// -- Env --------------------------------------------------------------------------

TEST(EnvTest, FallsBackWhenUnset) {
  unsetenv("CINDERELLA_TEST_UNSET");
  EXPECT_EQ(Int64FromEnv("CINDERELLA_TEST_UNSET", 7), 7);
  EXPECT_DOUBLE_EQ(DoubleFromEnv("CINDERELLA_TEST_UNSET", 0.5), 0.5);
  EXPECT_EQ(StringFromEnv("CINDERELLA_TEST_UNSET", "x"), "x");
}

TEST(EnvTest, ParsesValues) {
  setenv("CINDERELLA_TEST_INT", "123", 1);
  setenv("CINDERELLA_TEST_DOUBLE", "2.75", 1);
  EXPECT_EQ(Int64FromEnv("CINDERELLA_TEST_INT", 0), 123);
  EXPECT_DOUBLE_EQ(DoubleFromEnv("CINDERELLA_TEST_DOUBLE", 0.0), 2.75);
  unsetenv("CINDERELLA_TEST_INT");
  unsetenv("CINDERELLA_TEST_DOUBLE");
}

TEST(EnvTest, RejectsGarbage) {
  setenv("CINDERELLA_TEST_BAD", "12x", 1);
  EXPECT_EQ(Int64FromEnv("CINDERELLA_TEST_BAD", 9), 9);
  unsetenv("CINDERELLA_TEST_BAD");
}

}  // namespace
}  // namespace cinderella
