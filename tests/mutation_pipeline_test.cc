// Tests for the unified mutation pipeline (src/ingest/mutation_pipeline.h):
// batched updates, deletes, mixed op lists, and Reorganize must produce
// catalogs bit-identical to the serial operations, validate-first must
// leave a rejected batch untouched, and the update move path must repair
// the source partition's split starters (the satellite regression).

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/cinderella.h"
#include "ingest/mutation_pipeline.h"
#include "workload/dbpedia_generator.h"

namespace cinderella {
namespace {

std::vector<Row> TestRows(size_t n, AttributeDictionary* dictionary,
                          uint64_t seed = 42) {
  DbpediaConfig config;
  config.num_entities = n;
  config.seed = seed;
  DbpediaGenerator generator(config, dictionary);
  return generator.Generate();
}

// Canonical partitioning fingerprint: partition id -> sorted resident ids.
// Identical fingerprints mean identical partitionings including the ids
// the partitions were created under (i.e. identical creation order).
std::map<PartitionId, std::vector<EntityId>> Fingerprint(
    const PartitionCatalog& catalog) {
  std::map<PartitionId, std::vector<EntityId>> fingerprint;
  catalog.ForEachPartition([&](const Partition& partition) {
    std::vector<EntityId>& residents = fingerprint[partition.id()];
    for (const Row& row : partition.segment().rows()) {
      residents.push_back(row.id());
    }
    std::sort(residents.begin(), residents.end());
  });
  return fingerprint;
}

CinderellaConfig SmallConfig() {
  CinderellaConfig config;
  config.weight = 0.3;
  config.max_size = 12;  // Small partitions: updates move, splits happen.
  return config;
}

// An update stream that re-randomizes attribute sets, so most updates
// change the rating synopsis (stay-or-move decisions of every flavor).
std::vector<Row> MakeUpdates(const std::vector<Row>& base, size_t count,
                             uint64_t seed) {
  std::vector<Row> updates;
  uint64_t state = seed;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  for (size_t i = 0; i < count; ++i) {
    const Row& victim = base[next() % base.size()];
    Row row(victim.id());
    const size_t attrs = 2 + next() % 6;
    for (size_t a = 0; a < attrs; ++a) {
      row.Set(static_cast<AttributeId>(next() % 40),
              Value(static_cast<int64_t>(next() % 1000)));
    }
    updates.push_back(std::move(row));
  }
  return updates;
}

// -- Batched updates ----------------------------------------------------------

struct PipelineParam {
  int shards;
  size_t window;
};

class PipelineDeterminismTest
    : public testing::TestWithParam<PipelineParam> {};

TEST_P(PipelineDeterminismTest, UpdateBatchMatchesSerial) {
  const PipelineParam param = GetParam();
  AttributeDictionary dictionary;
  const std::vector<Row> base = TestRows(300, &dictionary);
  const std::vector<Row> updates = MakeUpdates(base, 200, 7);

  auto serial = std::move(Cinderella::Create(SmallConfig())).value();
  for (const Row& row : base) ASSERT_TRUE(serial->Insert(row).ok());
  for (const Row& row : updates) ASSERT_TRUE(serial->Update(row).ok());

  auto batched = std::move(Cinderella::Create(SmallConfig())).value();
  for (const Row& row : base) ASSERT_TRUE(batched->Insert(row).ok());
  MutationPipelineOptions options;
  options.shards = param.shards;
  options.window = param.window;
  const std::unique_ptr<MutationPipeline> engine =
      AttachMutationPipeline(batched.get(), options);
  ASSERT_TRUE(batched->UpdateBatch(updates).ok());

  EXPECT_EQ(Fingerprint(batched->catalog()), Fingerprint(serial->catalog()));
  EXPECT_EQ(batched->stats().splits, serial->stats().splits);
  EXPECT_EQ(batched->stats().updates_moved, serial->stats().updates_moved);
  EXPECT_EQ(batched->stats().partitions_dissolved,
            serial->stats().partitions_dissolved);
  EXPECT_EQ(engine->stats().updates, updates.size());
  { auto vs = batched->VerifyIntegrity(); EXPECT_TRUE(vs.ok()) << vs.ToString(); }
  EXPECT_TRUE(serial->VerifyIntegrity().ok());
}

TEST_P(PipelineDeterminismTest, MixedBatchMatchesSerialDispatch) {
  const PipelineParam param = GetParam();
  AttributeDictionary dictionary;
  const std::vector<Row> base = TestRows(200, &dictionary);
  const std::vector<Row> fresh = TestRows(60, &dictionary, 99);
  // Deletes below take ids 0, 3, 6, ...; keep the update victims disjoint
  // so every serial-order prefix of the stream stays valid.
  std::vector<Row> updates;
  for (Row& row : MakeUpdates(base, 400, 17)) {
    if (row.id() % 3 != 0) updates.push_back(std::move(row));
    if (updates.size() == 60) break;
  }
  ASSERT_EQ(updates.size(), 60u);

  // A mixed, ordered op stream: inserts of fresh ids (offset past the
  // base), updates of resident ids, deletes of resident ids — interleaved.
  std::vector<Mutation> ops;
  size_t fi = 0, ui = 0;
  EntityId delete_cursor = 0;
  for (size_t i = 0; i < 150; ++i) {
    switch (i % 3) {
      case 0: {
        Row row = fresh[fi++];
        Row moved(row.id() + 100000);
        for (const auto& cell : row.cells()) {
          moved.Set(cell.attribute, cell.value);
        }
        ops.push_back(Mutation::Insert(std::move(moved)));
        break;
      }
      case 1:
        ops.push_back(Mutation::Update(updates[ui++]));
        break;
      default:
        ops.push_back(Mutation::Delete(delete_cursor));
        delete_cursor += 3;  // Distinct victims, all resident in base.
        break;
    }
  }

  auto serial = std::move(Cinderella::Create(SmallConfig())).value();
  for (const Row& row : base) ASSERT_TRUE(serial->Insert(row).ok());
  for (const Mutation& op : ops) {
    switch (op.kind) {
      case Mutation::Kind::kInsert:
        ASSERT_TRUE(serial->Insert(op.row).ok());
        break;
      case Mutation::Kind::kUpdate:
        ASSERT_TRUE(serial->Update(op.row).ok());
        break;
      case Mutation::Kind::kDelete:
        ASSERT_TRUE(serial->Delete(op.entity).ok());
        break;
    }
  }

  auto batched = std::move(Cinderella::Create(SmallConfig())).value();
  for (const Row& row : base) ASSERT_TRUE(batched->Insert(row).ok());
  MutationPipelineOptions options;
  options.shards = param.shards;
  options.window = param.window;
  const std::unique_ptr<MutationPipeline> engine =
      AttachMutationPipeline(batched.get(), options);
  size_t applied = 0;
  ASSERT_TRUE(batched->ApplyMutations(ops, &applied).ok());
  EXPECT_EQ(applied, ops.size());

  EXPECT_EQ(Fingerprint(batched->catalog()), Fingerprint(serial->catalog()));
  EXPECT_EQ(batched->stats().splits, serial->stats().splits);
  EXPECT_EQ(batched->stats().updates_moved, serial->stats().updates_moved);
  EXPECT_EQ(engine->stats().deletes, 50u);
  { auto vs = batched->VerifyIntegrity(); EXPECT_TRUE(vs.ok()) << vs.ToString(); }
}

TEST_P(PipelineDeterminismTest, ReorganizeMatchesSerial) {
  const PipelineParam param = GetParam();
  AttributeDictionary dictionary;
  const std::vector<Row> base = TestRows(250, &dictionary);
  const std::vector<Row> updates = MakeUpdates(base, 120, 23);

  // Same pre-reorganize state on both sides, built serially; the updates
  // leave partitions scrambled enough that Reorganize actually moves rows.
  auto serial = std::move(Cinderella::Create(SmallConfig())).value();
  auto batched = std::move(Cinderella::Create(SmallConfig())).value();
  for (const Row& row : base) {
    ASSERT_TRUE(serial->Insert(row).ok());
    ASSERT_TRUE(batched->Insert(row).ok());
  }
  for (const Row& row : updates) {
    ASSERT_TRUE(serial->Update(row).ok());
    ASSERT_TRUE(batched->Update(row).ok());
  }
  ASSERT_EQ(Fingerprint(batched->catalog()), Fingerprint(serial->catalog()));

  ASSERT_TRUE(serial->Reorganize().ok());

  MutationPipelineOptions options;
  options.shards = param.shards;
  options.window = param.window;
  const std::unique_ptr<MutationPipeline> engine =
      AttachMutationPipeline(batched.get(), options);
  ASSERT_TRUE(batched->Reorganize().ok());

  EXPECT_EQ(Fingerprint(batched->catalog()), Fingerprint(serial->catalog()));
  EXPECT_EQ(batched->stats().entities_reinserted,
            serial->stats().entities_reinserted);
  EXPECT_EQ(engine->stats().reinserts, base.size());
  { auto vs = batched->VerifyIntegrity(); EXPECT_TRUE(vs.ok()) << vs.ToString(); }
}

INSTANTIATE_TEST_SUITE_P(
    ShardsAndWindows, PipelineDeterminismTest,
    testing::Values(PipelineParam{1, 1}, PipelineParam{1, 128},
                    PipelineParam{2, 7}, PipelineParam{4, 32},
                    PipelineParam{4, 128}),
    [](const testing::TestParamInfo<PipelineParam>& info) {
      return "shards" + std::to_string(info.param.shards) + "_window" +
             std::to_string(info.param.window);
    });

// -- Validate-first -----------------------------------------------------------

TEST(MutationPipelineValidationTest, RejectedBatchLeavesTableUntouched) {
  AttributeDictionary dictionary;
  const std::vector<Row> base = TestRows(50, &dictionary);
  auto c = std::move(Cinderella::Create(SmallConfig())).value();
  const std::unique_ptr<MutationPipeline> engine =
      AttachMutationPipeline(c.get(), {2, 16});
  ASSERT_TRUE(c->InsertBatch(base).ok());
  const auto before = Fingerprint(c->catalog());

  // Insert of a resident id (position 2 of the batch).
  {
    std::vector<Mutation> ops;
    ops.push_back(Mutation::Update(base[0]));
    ops.push_back(Mutation::Insert(base[3]));
    size_t applied = 99;
    const Status status = c->ApplyMutations(ops, &applied);
    EXPECT_EQ(status.code(), StatusCode::kAlreadyExists);
    EXPECT_EQ(applied, 0u);
    EXPECT_EQ(Fingerprint(c->catalog()), before);
  }
  // Update of an unknown id.
  {
    Row ghost(777777);
    ghost.Set(1, Value(int64_t{1}));
    std::vector<Mutation> ops;
    ops.push_back(Mutation::Insert(Row(888888)));
    ops.push_back(Mutation::Update(std::move(ghost)));
    const Status status = c->ApplyMutations(std::move(ops), nullptr);
    EXPECT_EQ(status.code(), StatusCode::kNotFound);
    EXPECT_EQ(Fingerprint(c->catalog()), before);
  }
  // Delete of an unknown id, and a delete duplicated within the batch.
  {
    std::vector<Mutation> ops;
    ops.push_back(Mutation::Delete(777777));
    EXPECT_EQ(c->ApplyMutations(ops, nullptr).code(), StatusCode::kNotFound);
    ops.clear();
    ops.push_back(Mutation::Delete(base[0].id()));
    ops.push_back(Mutation::Delete(base[0].id()));
    EXPECT_EQ(c->ApplyMutations(ops, nullptr).code(), StatusCode::kNotFound);
    EXPECT_EQ(Fingerprint(c->catalog()), before);
  }
  // UpdateBatch adapter validates the same way.
  {
    Row ghost(777777);
    ghost.Set(1, Value(int64_t{1}));
    EXPECT_EQ(c->UpdateBatch({ghost}).code(), StatusCode::kNotFound);
    EXPECT_EQ(Fingerprint(c->catalog()), before);
  }
  EXPECT_TRUE(c->VerifyIntegrity().ok());
}

TEST(MutationPipelineValidationTest, InsertAfterDeleteWithinBatchIsLegal) {
  AttributeDictionary dictionary;
  const std::vector<Row> base = TestRows(40, &dictionary);
  auto serial = std::move(Cinderella::Create(SmallConfig())).value();
  auto batched = std::move(Cinderella::Create(SmallConfig())).value();
  for (const Row& row : base) {
    ASSERT_TRUE(serial->Insert(row).ok());
    ASSERT_TRUE(batched->Insert(row).ok());
  }
  const std::unique_ptr<MutationPipeline> engine =
      AttachMutationPipeline(batched.get(), {2, 8});

  // Delete then re-insert the same id with a different shape — exactly
  // what a serial loop permits.
  Row reborn(base[5].id());
  reborn.Set(33, Value(int64_t{9}));
  reborn.Set(34, Value(int64_t{9}));
  std::vector<Mutation> ops;
  ops.push_back(Mutation::Delete(base[5].id()));
  ops.push_back(Mutation::Insert(reborn));
  size_t applied = 0;
  ASSERT_TRUE(batched->ApplyMutations(std::move(ops), &applied).ok());
  EXPECT_EQ(applied, 2u);

  ASSERT_TRUE(serial->Delete(base[5].id()).ok());
  ASSERT_TRUE(serial->Insert(reborn).ok());
  EXPECT_EQ(Fingerprint(batched->catalog()), Fingerprint(serial->catalog()));
}

TEST(MutationPipelineValidationTest, DuplicateUpdatesApplyInOrder) {
  AttributeDictionary dictionary;
  const std::vector<Row> base = TestRows(30, &dictionary);
  auto serial = std::move(Cinderella::Create(SmallConfig())).value();
  auto batched = std::move(Cinderella::Create(SmallConfig())).value();
  for (const Row& row : base) {
    ASSERT_TRUE(serial->Insert(row).ok());
    ASSERT_TRUE(batched->Insert(row).ok());
  }
  const std::unique_ptr<MutationPipeline> engine =
      AttachMutationPipeline(batched.get(), {1, 4});

  Row first(base[2].id());
  first.Set(10, Value(int64_t{1}));
  Row second(base[2].id());
  second.Set(20, Value(int64_t{2}));
  second.Set(21, Value(int64_t{2}));

  ASSERT_TRUE(serial->Update(first).ok());
  ASSERT_TRUE(serial->Update(second).ok());
  ASSERT_TRUE(batched->UpdateBatch({first, second}).ok());

  EXPECT_EQ(Fingerprint(batched->catalog()), Fingerprint(serial->catalog()));
}

// -- Starter repair on the update move path (satellite regression) ------------

// When an update moves an entity that was one of its source partition's
// split starters, the vacated starter slot must be re-seeded from the
// survivors — an un-repaired pair would let the source's next split seed
// a child from a stale singleton.
void CheckStarterRepair(bool batched_path) {
  CinderellaConfig config;
  config.weight = 0.5;
  config.max_size = 8;
  auto c = std::move(Cinderella::Create(config)).value();

  // Two disjoint attribute clusters -> two partitions.
  for (EntityId id = 0; id < 4; ++id) {
    Row row(id);
    row.Set(1, Value(int64_t{1}));
    row.Set(2, Value(int64_t{1}));
    row.Set(3, Value(int64_t{1}));
    ASSERT_TRUE(c->Insert(std::move(row)).ok());
  }
  for (EntityId id = 10; id < 14; ++id) {
    Row row(id);
    row.Set(30, Value(int64_t{1}));
    row.Set(31, Value(int64_t{1}));
    row.Set(32, Value(int64_t{1}));
    ASSERT_TRUE(c->Insert(std::move(row)).ok());
  }

  const auto home = c->catalog().FindEntity(0);
  ASSERT_TRUE(home.has_value());
  const Partition* source = c->catalog().GetPartition(*home);
  ASSERT_NE(source, nullptr);
  ASSERT_EQ(source->entity_count(), 4u);
  ASSERT_TRUE(source->starter_a().has_value());
  const EntityId moved = source->starter_a()->entity;

  // Re-shape the starter entity into the other cluster: negative rating
  // at home, positive at the other partition -> the update moves it.
  Row reshaped(moved);
  reshaped.Set(30, Value(int64_t{2}));
  reshaped.Set(31, Value(int64_t{2}));
  reshaped.Set(32, Value(int64_t{2}));
  if (batched_path) {
    const std::unique_ptr<MutationPipeline> engine =
        AttachMutationPipeline(c.get(), {2, 8});
    ASSERT_TRUE(c->UpdateBatch({reshaped}).ok());
  } else {
    ASSERT_TRUE(c->Update(reshaped).ok());
  }
  ASSERT_EQ(c->stats().updates_moved, 1u);
  const auto new_home = c->catalog().FindEntity(moved);
  ASSERT_TRUE(new_home.has_value());
  ASSERT_NE(*new_home, *home);

  // The source survives with 3 entities and must have a full, resident,
  // distinct starter pair again.
  const Partition* survivor = c->catalog().GetPartition(*home);
  ASSERT_NE(survivor, nullptr);
  ASSERT_EQ(survivor->entity_count(), 3u);
  ASSERT_TRUE(survivor->starter_a().has_value());
  ASSERT_TRUE(survivor->starter_b().has_value());
  EXPECT_NE(survivor->starter_a()->entity, moved);
  EXPECT_NE(survivor->starter_b()->entity, moved);
  EXPECT_NE(survivor->starter_a()->entity, survivor->starter_b()->entity);
  EXPECT_NE(survivor->segment().Find(survivor->starter_a()->entity), nullptr);
  EXPECT_NE(survivor->segment().Find(survivor->starter_b()->entity), nullptr);
  EXPECT_TRUE(c->VerifyIntegrity().ok());
}

TEST(StarterRepairTest, SerialUpdateMoveRepairsSourceStarters) {
  CheckStarterRepair(/*batched_path=*/false);
}

TEST(StarterRepairTest, BatchedUpdateMoveRepairsSourceStarters) {
  CheckStarterRepair(/*batched_path=*/true);
}

}  // namespace
}  // namespace cinderella
