// Tests for the bump arena and arena pool (common/arena.h): alignment,
// block retention across Reset (the zero-malloc-refill contract the MVCC
// publisher relies on), the dedicated large-block path, refcounted
// recycling, and pool statistics.

#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/arena.h"

namespace cinderella {
namespace {

bool IsAligned(const void* p, size_t align) {
  return reinterpret_cast<uintptr_t>(p) % align == 0;
}

TEST(ArenaTest, AllocationsAreAlignedAndWritable) {
  Arena arena;
  void* a = arena.Allocate(3, 1);
  void* b = arena.Allocate(8, 8);
  void* c = arena.Allocate(100, 16);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(IsAligned(b, 8));
  EXPECT_TRUE(IsAligned(c, 16));
  // All three are distinct live regions: writing one must not disturb
  // the others (the sanitizer builds also check bounds here).
  std::memset(a, 0xaa, 3);
  std::memset(b, 0xbb, 8);
  std::memset(c, 0xcc, 100);
  EXPECT_EQ(static_cast<unsigned char*>(a)[2], 0xaa);
  EXPECT_EQ(static_cast<unsigned char*>(b)[7], 0xbb);
  EXPECT_EQ(static_cast<unsigned char*>(c)[99], 0xcc);
  EXPECT_GE(arena.bytes_used(), 111u);
}

TEST(ArenaTest, AllocateArrayOfIsTypedAndAligned) {
  Arena arena;
  uint64_t* words = arena.AllocateArrayOf<uint64_t>(32);
  ASSERT_NE(words, nullptr);
  EXPECT_TRUE(IsAligned(words, alignof(uint64_t)));
  for (int i = 0; i < 32; ++i) words[i] = static_cast<uint64_t>(i);
  EXPECT_EQ(words[31], 31u);
}

TEST(ArenaTest, GrowsAcrossBlocks) {
  Arena arena;
  // Two allocations that cannot share one 64 KiB block.
  void* a = arena.Allocate(Arena::kBlockSize - 64, 8);
  void* b = arena.Allocate(Arena::kBlockSize - 64, 8);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(arena.lifetime_blocks_allocated(), 2u);
  EXPECT_GE(arena.bytes_retained(), 2 * Arena::kBlockSize);
}

TEST(ArenaTest, ResetRefillsWithoutNewBlocks) {
  Arena arena;
  auto fill = [&] {
    for (int i = 0; i < 40; ++i) {
      ASSERT_NE(arena.Allocate(7000, 8), nullptr);
    }
  };
  fill();
  const uint64_t blocks = arena.lifetime_blocks_allocated();
  ASSERT_GT(blocks, 1u);
  // Ten refill cycles of the same footprint: the retained blocks serve
  // everything, the lifetime counter stays flat.
  for (int cycle = 0; cycle < 10; ++cycle) {
    arena.Reset();
    EXPECT_EQ(arena.bytes_used(), 0u);
    fill();
  }
  EXPECT_EQ(arena.lifetime_blocks_allocated(), blocks);
}

TEST(ArenaTest, OversizedRequestsGetDedicatedRetainedBlocks) {
  Arena arena;
  void* big = arena.Allocate(3 * Arena::kBlockSize, 8);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0x5a, 3 * Arena::kBlockSize);
  EXPECT_EQ(arena.lifetime_blocks_allocated(), 1u);

  // After Reset a smaller oversized request reuses the retained large
  // block (first fit) — still no new allocation.
  arena.Reset();
  void* again = arena.Allocate(2 * Arena::kBlockSize, 8);
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(arena.lifetime_blocks_allocated(), 1u);

  // A second oversized request in the same cycle cannot share the block.
  void* second = arena.Allocate(2 * Arena::kBlockSize, 8);
  ASSERT_NE(second, nullptr);
  EXPECT_NE(second, again);
  EXPECT_EQ(arena.lifetime_blocks_allocated(), 2u);
}

TEST(ArenaTest, MixedSizesStayMallocFreeAtSteadyState) {
  Arena arena;
  auto fill = [&] {
    ASSERT_NE(arena.Allocate(Arena::kBlockSize + 1000, 16), nullptr);
    for (int i = 0; i < 20; ++i) {
      ASSERT_NE(arena.Allocate(5000, 8), nullptr);
    }
  };
  fill();
  arena.Reset();
  fill();
  const uint64_t blocks = arena.lifetime_blocks_allocated();
  arena.Reset();
  fill();
  EXPECT_EQ(arena.lifetime_blocks_allocated(), blocks);
}

TEST(ArenaTest, IdleBlocksAreTrimmedAfterNRecycles) {
  Arena arena;
  arena.set_trim_idle_recycles(3);
  // A burst cycle retains several blocks...
  for (int i = 0; i < 40; ++i) ASSERT_NE(arena.Allocate(7000, 8), nullptr);
  const uint64_t burst_retained = arena.bytes_retained();
  const uint64_t burst_high_water = arena.bytes_used();
  ASSERT_GT(arena.lifetime_blocks_allocated(), 1u);

  // ...then the workload shrinks to a single-block footprint. The first
  // post-burst Reset still sees every block used, the next trim-1 cycles
  // keep everything (the blocks are merely idle), then the streak hits
  // the threshold and the tail blocks are released.
  for (int cycle = 0; cycle < 3; ++cycle) {
    arena.Reset();
    ASSERT_NE(arena.Allocate(1000, 8), nullptr);
    EXPECT_EQ(arena.bytes_retained(), burst_retained);
    EXPECT_EQ(arena.blocks_trimmed(), 0u);
  }
  arena.Reset();
  ASSERT_NE(arena.Allocate(1000, 8), nullptr);
  EXPECT_LT(arena.bytes_retained(), burst_retained);
  EXPECT_GT(arena.blocks_trimmed(), 0u);
  EXPECT_EQ(arena.bytes_retained(), Arena::kBlockSize);  // One block left.

  // The high-water mark remembers the burst across the trims.
  EXPECT_GE(arena.bytes_high_water(), burst_high_water);

  // The surviving block still serves the steady state with no new
  // allocations.
  const uint64_t blocks = arena.lifetime_blocks_allocated();
  arena.Reset();
  ASSERT_NE(arena.Allocate(1000, 8), nullptr);
  EXPECT_EQ(arena.lifetime_blocks_allocated(), blocks);
}

TEST(ArenaTest, LargeBlocksAreTrimmedIndependently) {
  Arena arena;
  arena.set_trim_idle_recycles(2);
  ASSERT_NE(arena.Allocate(3 * Arena::kBlockSize, 8), nullptr);
  ASSERT_NE(arena.Allocate(1000, 8), nullptr);
  const uint64_t burst_retained = arena.bytes_retained();

  // The large block goes unused for two recycles and is dropped; the
  // normal block survives because every cycle touches it. (The first
  // Reset closes the burst cycle where the large block *was* used.)
  arena.Reset();
  ASSERT_NE(arena.Allocate(1000, 8), nullptr);
  arena.Reset();
  ASSERT_NE(arena.Allocate(1000, 8), nullptr);
  EXPECT_EQ(arena.bytes_retained(), burst_retained);
  arena.Reset();
  ASSERT_NE(arena.Allocate(1000, 8), nullptr);
  EXPECT_EQ(arena.bytes_retained(), Arena::kBlockSize);
  EXPECT_EQ(arena.blocks_trimmed(), 1u);
}

TEST(ArenaTest, TrimZeroDisablesTrimming) {
  Arena arena;
  arena.set_trim_idle_recycles(0);
  for (int i = 0; i < 40; ++i) ASSERT_NE(arena.Allocate(7000, 8), nullptr);
  const uint64_t burst_retained = arena.bytes_retained();
  for (int cycle = 0; cycle < 50; ++cycle) {
    arena.Reset();
    ASSERT_NE(arena.Allocate(1000, 8), nullptr);
  }
  EXPECT_EQ(arena.bytes_retained(), burst_retained);
  EXPECT_EQ(arena.blocks_trimmed(), 0u);
}

TEST(ArenaTest, ActiveBlocksResetIdleStreaks) {
  Arena arena;
  arena.set_trim_idle_recycles(3);
  for (int i = 0; i < 10; ++i) ASSERT_NE(arena.Allocate(7000, 8), nullptr);
  const uint64_t burst_retained = arena.bytes_retained();
  // Alternate small and full cycles: the full cycles touch every block
  // before any streak reaches the threshold, so nothing is ever trimmed.
  for (int cycle = 0; cycle < 12; ++cycle) {
    arena.Reset();
    const int allocs = cycle % 2 == 0 ? 1 : 10;
    for (int i = 0; i < allocs; ++i) {
      ASSERT_NE(arena.Allocate(7000, 8), nullptr);
    }
  }
  EXPECT_EQ(arena.bytes_retained(), burst_retained);
  EXPECT_EQ(arena.blocks_trimmed(), 0u);
}

TEST(ArenaPoolTest, AcquireRecycleReuse) {
  ArenaPool pool;
  Arena* first = pool.Acquire();
  ASSERT_NE(first, nullptr);
  ASSERT_NE(first->Allocate(1024, 8), nullptr);

  ArenaPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.arenas_created, 1u);
  EXPECT_EQ(stats.live_arenas, 1u);
  EXPECT_EQ(stats.pooled_arenas, 0u);

  // Last reference dropped: the arena is reset and free-listed, and the
  // next Acquire returns it instead of allocating.
  first->Unref();
  stats = pool.stats();
  EXPECT_EQ(stats.arenas_recycled, 1u);
  EXPECT_EQ(stats.pooled_arenas, 1u);
  EXPECT_EQ(stats.live_arenas, 0u);
  EXPECT_GT(stats.bytes_retained, 0u);

  Arena* second = pool.Acquire();
  EXPECT_EQ(second, first);
  EXPECT_EQ(second->bytes_used(), 0u);
  EXPECT_EQ(pool.stats().arenas_reused, 1u);
  second->Unref();
}

TEST(ArenaPoolTest, RecycleWaitsForTheLastReference) {
  ArenaPool pool;
  Arena* arena = pool.Acquire();  // Caller reference.
  arena->Ref();                   // A second holder (e.g. a version).
  arena->Unref();
  EXPECT_EQ(pool.stats().pooled_arenas, 0u);  // One reference remains.
  arena->Unref();
  EXPECT_EQ(pool.stats().pooled_arenas, 1u);
}

TEST(ArenaPoolTest, SteadyStateCyclesAllocateNoBlocks) {
  ArenaPool pool;
  // Warm-up: one generation establishes the retained capacity.
  {
    Arena* arena = pool.Acquire();
    for (int i = 0; i < 30; ++i) arena->Allocate(6000, 8);
    arena->Allocate(Arena::kBlockSize * 2, 8);
    arena->Unref();
  }
  const uint64_t warm_blocks = pool.stats().blocks_allocated;
  ASSERT_GT(warm_blocks, 0u);
  // Steady state: every cycle reuses the pooled arena and its blocks.
  for (int cycle = 0; cycle < 20; ++cycle) {
    Arena* arena = pool.Acquire();
    for (int i = 0; i < 30; ++i) arena->Allocate(6000, 8);
    arena->Allocate(Arena::kBlockSize * 2, 8);
    arena->Unref();
  }
  const ArenaPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.blocks_allocated, warm_blocks);
  EXPECT_EQ(stats.arenas_created, 1u);
  EXPECT_EQ(stats.arenas_reused, 20u);
}

TEST(ArenaPoolTest, TrimPolicyAndHighWaterFlowIntoStats) {
  ArenaPool pool;
  pool.set_trim_idle_recycles(2);
  // One burst generation, then small steady-state generations through the
  // recycling path (Unref -> Reset -> free list): the idle tail blocks are
  // trimmed, the stats record both the trim count and the burst peak.
  {
    Arena* arena = pool.Acquire();
    for (int i = 0; i < 40; ++i) ASSERT_NE(arena->Allocate(7000, 8), nullptr);
    arena->Unref();
  }
  const uint64_t burst_retained = pool.stats().bytes_retained;
  ASSERT_GT(burst_retained, Arena::kBlockSize);
  for (int cycle = 0; cycle < 4; ++cycle) {
    Arena* arena = pool.Acquire();
    ASSERT_NE(arena->Allocate(1000, 8), nullptr);
    arena->Unref();
  }
  const ArenaPool::Stats stats = pool.stats();
  EXPECT_LT(stats.bytes_retained, burst_retained);
  EXPECT_GT(stats.blocks_trimmed, 0u);
  EXPECT_GE(stats.bytes_high_water, 40u * 7000u);
}

}  // namespace
}  // namespace cinderella
