// Tests for the workload-driven background reorganizer (src/tuner):
// tracker counter/decay semantics, cost-model determinism and plan
// shapes, RepartitionEntities row preservation, and the daemon's budget
// and cooldown throttles.

#include <algorithm>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/cinderella.h"
#include "mvcc/partition_version.h"
#include "mvcc/versioned_table.h"
#include "query/executor.h"
#include "query/query.h"
#include "tuner/cost_model.h"
#include "tuner/reorganizer.h"
#include "tuner/workload_tracker.h"

namespace cinderella {
namespace {

Row MakeRow(EntityId id, std::initializer_list<AttributeId> attrs) {
  Row row(id);
  for (AttributeId a : attrs) row.Set(a, Value(int64_t{1}));
  return row;
}

std::unique_ptr<Cinderella> MakePartitioner(uint64_t max_size = 16) {
  CinderellaConfig config;
  config.weight = 0.4;
  config.max_size = max_size;
  config.scan_threads = 1;
  return std::move(Cinderella::Create(config)).value();
}

/// Clustered rows (four disjoint attribute families) so the table forms
/// several partitions.
std::vector<Row> MakeRows(EntityId first, size_t count) {
  std::vector<Row> rows;
  rows.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const EntityId id = first + static_cast<EntityId>(i);
    const AttributeId base = static_cast<AttributeId>((id % 4) * 8);
    rows.push_back(MakeRow(id, {base, base + 1, base + 2}));
  }
  return rows;
}

std::set<EntityId> ResidentEntities(const CatalogView& view) {
  std::set<EntityId> ids;
  view.ForEachPartition([&](const PartitionVersion& version) {
    version.ForEachRow([&](const RowView& row) { ids.insert(row.id()); });
  });
  return ids;
}

// -- Workload tracker --------------------------------------------------------

TEST(WorkloadTrackerTest, RecordsScansAndPrunes) {
  WorkloadTracker tracker;
  const Synopsis query{1, 2};
  tracker.OnScan(query, {{/*partition=*/1, /*scanned=*/true, 100, 25},
                         {/*partition=*/2, /*scanned=*/false, 0, 0}});
  tracker.OnScan(query, {{/*partition=*/1, /*scanned=*/true, 100, 0}});

  const WorkloadTracker::Snapshot snap = tracker.snapshot();
  ASSERT_EQ(snap.partitions.size(), 2u);
  EXPECT_EQ(snap.partitions[0].first, 1u);
  const WorkloadTracker::PartitionStats& hot = snap.partitions[0].second;
  EXPECT_DOUBLE_EQ(hot.queries_scanned, 2.0);
  EXPECT_DOUBLE_EQ(hot.rows_scanned, 200.0);
  EXPECT_DOUBLE_EQ(hot.rows_matched, 25.0);
  EXPECT_DOUBLE_EQ(hot.waste(), 175.0);
  EXPECT_DOUBLE_EQ(hot.zero_match_scans, 1.0);
  EXPECT_DOUBLE_EQ(hot.false_positive_rate(), 0.5);
  const WorkloadTracker::PartitionStats& pruned = snap.partitions[1].second;
  EXPECT_DOUBLE_EQ(pruned.queries_pruned, 1.0);
  EXPECT_DOUBLE_EQ(pruned.queries_scanned, 0.0);
  // The two identical queries collapse into one workload entry, weight 2.
  ASSERT_EQ(snap.workload.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.workload[0].weight, 2.0);
  EXPECT_EQ(snap.queries_observed, 2u);
}

TEST(WorkloadTrackerTest, DecayFadesAndDropsEntries) {
  WorkloadTracker::Options options;
  options.min_weight = 0.1;
  WorkloadTracker tracker(options);
  tracker.OnScan(Synopsis{1}, {{1, true, 10, 5}});
  tracker.Decay(0.5);
  WorkloadTracker::Snapshot snap = tracker.snapshot();
  ASSERT_EQ(snap.partitions.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.partitions[0].second.rows_scanned, 5.0);
  EXPECT_DOUBLE_EQ(snap.total_queries, 0.5);
  // Three more halvings push the entry below min_weight: dropped.
  tracker.Decay(0.5);
  tracker.Decay(0.5);
  tracker.Decay(0.5);
  snap = tracker.snapshot();
  EXPECT_TRUE(snap.partitions.empty());
  EXPECT_TRUE(snap.workload.empty());
  // The monotonic observation count never decays.
  EXPECT_EQ(snap.queries_observed, 1u);
}

TEST(WorkloadTrackerTest, WorkloadEvictsLightestNotHeaviest) {
  WorkloadTracker::Options options;
  options.max_workload_queries = 2;
  WorkloadTracker tracker(options);
  // Query A seen three times, B once; C arrives at capacity.
  tracker.OnScan(Synopsis{1}, {});
  tracker.OnScan(Synopsis{1}, {});
  tracker.OnScan(Synopsis{1}, {});
  tracker.OnScan(Synopsis{2}, {});
  tracker.OnScan(Synopsis{3}, {});
  const WorkloadTracker::Snapshot snap = tracker.snapshot();
  ASSERT_EQ(snap.workload.size(), 2u);
  // A survives with its full weight; B (weight 1) was displaced by C.
  bool has_a = false;
  for (const auto& q : snap.workload) {
    if (q.synopsis == Synopsis{1}) {
      has_a = true;
      EXPECT_DOUBLE_EQ(q.weight, 3.0);
    }
    EXPECT_FALSE(q.synopsis == Synopsis{2});
  }
  EXPECT_TRUE(has_a);
}

// -- Cost model --------------------------------------------------------------

TEST(TunerCostModelTest, SameInputsYieldIdenticalPlans) {
  VersionedTable table(MakePartitioner(/*max_size=*/8));
  ASSERT_TRUE(table.InsertBatch(MakeRows(0, 96)).ok());
  const VersionedTable::Snapshot snapshot = table.snapshot();

  // Drive real queries through the hook so the tracker state is the one
  // production planning sees.
  WorkloadTracker tracker;
  QueryExecutor executor(snapshot.view());
  executor.set_observer(&tracker);
  for (int round = 0; round < 4; ++round) {
    for (AttributeId attr : {0u, 8u, 16u}) {
      executor.Execute(Query(Synopsis{attr}));
    }
  }
  const WorkloadTracker::Snapshot tracked = tracker.snapshot();

  const TunerCostModel model(CostModelOptions(), SizeMeasure::kEntityCount, 8);
  PlanningReport report_a;
  PlanningReport report_b;
  const std::vector<RepartitionPlan> a =
      model.Score(snapshot.view(), tracked, &report_a);
  // A second pass — and a freshly constructed model — must reproduce the
  // plan list exactly: same kinds, partitions, entities, and scores.
  const TunerCostModel again(CostModelOptions(), SizeMeasure::kEntityCount, 8);
  const std::vector<RepartitionPlan> b =
      again.Score(snapshot.view(), tracked, &report_b);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].partitions, b[i].partitions);
    EXPECT_EQ(a[i].entities, b[i].entities);
    EXPECT_DOUBLE_EQ(a[i].net_gain, b[i].net_gain);
  }
  EXPECT_EQ(report_a.partitions, report_b.partitions);
  EXPECT_DOUBLE_EQ(report_a.efficiency, report_b.efficiency);
  // Plans arrive best-first and never share a partition.
  std::set<PartitionId> seen;
  for (size_t i = 0; i < a.size(); ++i) {
    if (i > 0) {
      EXPECT_LE(a[i].net_gain, a[i - 1].net_gain);
    }
    for (PartitionId id : a[i].partitions) {
      EXPECT_TRUE(seen.insert(id).second) << "partition in two plans";
    }
  }
}

TEST(TunerCostModelTest, PlansSplitForHotMixedPartition) {
  VersionedTable table(MakePartitioner(/*max_size=*/64));
  ASSERT_TRUE(table.InsertBatch(MakeRows(0, 16)).ok());
  const VersionedTable::Snapshot snapshot = table.snapshot();
  ASSERT_GE(snapshot->partition_count(), 2u);
  const PartitionVersion* hot = snapshot->partitions().front();

  // Synthetic traffic: the partition is scanned often but matches little.
  WorkloadTracker tracker;
  for (int i = 0; i < 3; ++i) {
    tracker.OnScan(Synopsis{0}, {{hot->id(), true, 100, 10}});
  }

  const TunerCostModel model(CostModelOptions(), SizeMeasure::kEntityCount, 64);
  PlanningReport report;
  const std::vector<RepartitionPlan> plans =
      model.Score(snapshot.view(), tracker.snapshot(), &report);
  ASSERT_FALSE(plans.empty());
  // Below the merge/evict traffic gate the split should be the only
  // plan, but find it explicitly rather than assuming order.
  const RepartitionPlan* split = nullptr;
  for (const RepartitionPlan& p : plans) {
    if (p.kind == RepartitionPlan::Kind::kSplitHot) {
      split = &p;
      break;
    }
  }
  ASSERT_NE(split, nullptr);
  const RepartitionPlan& plan = *split;
  ASSERT_EQ(plan.partitions.size(), 1u);
  EXPECT_EQ(plan.partitions[0], hot->id());
  EXPECT_EQ(plan.entities.size(), hot->entity_count());
  // waste = 300 scanned − 30 matched; cost = one unit per resident row.
  EXPECT_DOUBLE_EQ(plan.projected_gain, 270.0);
  EXPECT_DOUBLE_EQ(plan.move_cost,
                   static_cast<double>(hot->entity_count()));
  EXPECT_DOUBLE_EQ(plan.net_gain, plan.projected_gain - plan.move_cost);
  EXPECT_GE(report.hot_mixed, 1u);
}

TEST(TunerCostModelTest, PlansMergeForColdUnderfilledPartitions) {
  // Four clusters of 4 rows each with MAXSIZE 32: every partition sits
  // well under the cold-fill threshold and none of them is ever scanned —
  // the serving traffic prunes them all.
  VersionedTable table(MakePartitioner(/*max_size=*/32));
  ASSERT_TRUE(table.InsertBatch(MakeRows(0, 16)).ok());
  const VersionedTable::Snapshot snapshot = table.snapshot();
  ASSERT_GE(snapshot->partition_count(), 2u);

  const TunerCostModel model(CostModelOptions(), SizeMeasure::kEntityCount, 32);

  // Zero traffic -> zero signal: a workload-driven tuner plans nothing.
  WorkloadTracker silent;
  EXPECT_TRUE(model.Score(snapshot.view(), silent.snapshot()).empty());

  WorkloadTracker tracker;
  for (int i = 0; i < 8; ++i) tracker.OnScan(Synopsis{99}, {});
  PlanningReport report;
  const std::vector<RepartitionPlan> plans =
      model.Score(snapshot.view(), tracker.snapshot(), &report);
  ASSERT_FALSE(plans.empty());
  for (const RepartitionPlan& plan : plans) {
    EXPECT_EQ(plan.kind, RepartitionPlan::Kind::kMergeCold);
    EXPECT_GE(plan.partitions.size(), 2u);
    // A merge bin never exceeds MAXSIZE under the entity-count measure.
    EXPECT_LE(plan.entities.size(), 32u);
    EXPECT_TRUE(std::is_sorted(plan.partitions.begin(), plan.partitions.end()));
  }
  EXPECT_EQ(report.cold, snapshot->partition_count());
  // No traffic at all: evict-idle must stay quiet (no signal).
  EXPECT_EQ(report.idle, 0u);
}

// -- RepartitionEntities -----------------------------------------------------

TEST(RepartitionEntitiesTest, PreservesRowsAndCountsStaleIds) {
  VersionedTable table(MakePartitioner(/*max_size=*/8));
  ASSERT_TRUE(table.InsertBatch(MakeRows(0, 48)).ok());
  const std::set<EntityId> before = ResidentEntities(table.snapshot().view());
  ASSERT_EQ(before.size(), 48u);

  // Move a slice spanning several partitions; include one id that does
  // not exist (a stale plan entry) and one duplicate.
  std::vector<EntityId> plan = {0, 1, 2, 5, 9, 13, 13, 999999};
  VersionedTable::RepartitionResult result;
  ASSERT_TRUE(table.RepartitionEntities(plan, &result).ok());
  EXPECT_EQ(result.requested, 7u);  // Distinct ids (the duplicate collapses).
  EXPECT_EQ(result.moved, 6u);      // Live ids actually drained.
  EXPECT_EQ(result.missing, 1u);    // The stale id was skipped, not an error.

  const std::set<EntityId> after = ResidentEntities(table.snapshot().view());
  EXPECT_EQ(before, after);
  ASSERT_TRUE(table.partitioner().VerifyIntegrity().ok());

  // Every moved row kept its cells: spot-check one.
  StatusOr<Row> row = table.Get(5);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->cells().size(), 3u);
}

TEST(RepartitionEntitiesTest, EmptyAndAllStalePlansAreNoOps) {
  VersionedTable table(MakePartitioner());
  ASSERT_TRUE(table.InsertBatch(MakeRows(0, 8)).ok());
  const uint64_t generation = table.published_generation();

  VersionedTable::RepartitionResult result;
  ASSERT_TRUE(table.RepartitionEntities({}, &result).ok());
  EXPECT_EQ(result.moved, 0u);
  ASSERT_TRUE(table.RepartitionEntities({777777, 888888}, &result).ok());
  EXPECT_EQ(result.moved, 0u);
  EXPECT_EQ(result.missing, 2u);
  EXPECT_EQ(ResidentEntities(table.snapshot().view()).size(), 8u);
  // No mutation happened, so nothing was published.
  EXPECT_EQ(table.published_generation(), generation);
}

// -- Reorganizer ticks -------------------------------------------------------

/// Enough decayed table-wide traffic that merge-cold and evict-idle
/// clear their no-signal gate (the queries touch nothing, so every
/// partition stays cold).
void PrimeTraffic(WorkloadTracker& tracker) {
  for (int i = 0; i < 16; ++i) tracker.OnScan(Synopsis{99}, {});
}

/// Two disjoint 2-row clusters under a roomy MAXSIZE: the planner sees
/// two cold under-filled partitions and plans one merge; reinsertion
/// re-separates the disjoint clusters, so the same plan re-emerges on the
/// next tick and must be suppressed by the cooldown.
std::unique_ptr<VersionedTable> MakeColdTable() {
  auto table = std::make_unique<VersionedTable>(MakePartitioner(/*max_size=*/16));
  std::vector<Row> rows;
  rows.push_back(MakeRow(0, {0, 1, 2}));
  rows.push_back(MakeRow(1, {0, 1, 2}));
  rows.push_back(MakeRow(2, {8, 9, 10}));
  rows.push_back(MakeRow(3, {8, 9, 10}));
  EXPECT_TRUE(table->InsertBatch(std::move(rows)).ok());
  EXPECT_EQ(table->snapshot()->partition_count(), 2u);
  return table;
}

TEST(ReorganizerTest, BudgetDefersPlansThatDoNotFit) {
  auto table = MakeColdTable();
  WorkloadTracker tracker;
  PrimeTraffic(tracker);
  ReorganizerOptions options;
  options.move_budget = 3;  // The 4-row merge cannot fit.
  Reorganizer reorganizer(table.get(), &tracker, options);

  const Reorganizer::TickReport report = reorganizer.TickForTesting();
  EXPECT_GE(report.plans, 1u);
  EXPECT_EQ(report.applied, 0u);
  EXPECT_EQ(report.rows_moved, 0u);
  const TunerStats stats = reorganizer.stats();
  EXPECT_EQ(stats.ticks, 1u);
  EXPECT_GE(stats.plans_deferred_budget, 1u);
  EXPECT_EQ(stats.rows_moved, 0u);
}

TEST(ReorganizerTest, AppliesPlansThenCoolsDown) {
  auto table = MakeColdTable();
  WorkloadTracker tracker;
  PrimeTraffic(tracker);
  ReorganizerOptions options;
  options.decay = 1.0;  // Keep tracker state identical across ticks.
  Reorganizer reorganizer(table.get(), &tracker, options);

  const std::set<EntityId> before = ResidentEntities(table->snapshot().view());
  const Reorganizer::TickReport first = reorganizer.TickForTesting();
  EXPECT_GE(first.applied, 1u);
  EXPECT_EQ(first.rows_moved, 4u);
  // Rows survive the move bit-for-bit.
  EXPECT_EQ(ResidentEntities(table->snapshot().view()), before);
  ASSERT_TRUE(table->partitioner().VerifyIntegrity().ok());

  // The disjoint clusters re-separated, so the planner proposes the same
  // entity set again — the content-keyed cooldown must block it.
  const Reorganizer::TickReport second = reorganizer.TickForTesting();
  EXPECT_EQ(second.applied, 0u);
  const TunerStats stats = reorganizer.stats();
  EXPECT_EQ(stats.ticks, 2u);
  EXPECT_GE(stats.merges_applied, 1u);
  EXPECT_GE(stats.plans_skipped_cooldown, 1u);
  EXPECT_EQ(stats.rows_moved, 4u);
  EXPECT_GT(stats.last_generation, 0u);
}

TEST(ReorganizerTest, StartAndStopAreIdempotent) {
  auto table = MakeColdTable();
  WorkloadTracker tracker;
  ReorganizerOptions options;
  options.interval_ms = 5;
  Reorganizer reorganizer(table.get(), &tracker, options);
  EXPECT_FALSE(reorganizer.running());
  reorganizer.Start();
  reorganizer.Start();
  EXPECT_TRUE(reorganizer.running());
  reorganizer.Stop();
  reorganizer.Stop();
  EXPECT_FALSE(reorganizer.running());
  ASSERT_TRUE(table->partitioner().VerifyIntegrity().ok());
}

}  // namespace
}  // namespace cinderella
