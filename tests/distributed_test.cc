// Tests for the distributed-cluster simulation: placement policies, node
// loads, and scatter-gather query execution with pruning.

#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/hash_partitioner.h"
#include "core/cinderella.h"
#include "distributed/cluster.h"

namespace cinderella {
namespace {

Row MakeRow(EntityId id, std::initializer_list<AttributeId> attrs) {
  Row row(id);
  for (AttributeId a : attrs) row.Set(a, Value(int64_t{1}));
  return row;
}

// Catalog with four single-family partitions of different sizes.
std::unique_ptr<Cinderella> MakeFamilies() {
  CinderellaConfig config;
  config.weight = 0.3;
  config.max_size = 1000;
  auto c = std::move(Cinderella::Create(config)).value();
  EntityId next = 0;
  const size_t sizes[] = {40, 30, 20, 10};
  for (size_t family = 0; family < 4; ++family) {
    for (size_t i = 0; i < sizes[family]; ++i) {
      const AttributeId base = static_cast<AttributeId>(family * 10);
      EXPECT_TRUE(c->Insert(MakeRow(next++, {base, base + 1})).ok());
    }
  }
  EXPECT_EQ(c->catalog().partition_count(), 4u);
  return c;
}

TEST(ClusterTest, RoundRobinPlacement) {
  auto c = MakeFamilies();
  Cluster cluster(2, PlacementPolicy::kRoundRobin);
  cluster.Place(c->catalog());
  const auto ids = c->catalog().LivePartitionIds();
  EXPECT_EQ(*cluster.NodeOf(ids[0]), 0u);
  EXPECT_EQ(*cluster.NodeOf(ids[1]), 1u);
  EXPECT_EQ(*cluster.NodeOf(ids[2]), 0u);
  EXPECT_EQ(*cluster.NodeOf(ids[3]), 1u);
}

TEST(ClusterTest, LeastLoadedBalancesEntities) {
  auto c = MakeFamilies();  // Sizes 40/30/20/10.
  Cluster cluster(2, PlacementPolicy::kLeastLoaded);
  cluster.Place(c->catalog());
  const auto loads = cluster.node_loads(c->catalog());
  // 40 -> node0; 30 -> node1; 20 -> node1 (30<40); 10 -> node0 (40<50).
  EXPECT_EQ(loads[0].entities, 50u);
  EXPECT_EQ(loads[1].entities, 50u);
  EXPECT_DOUBLE_EQ(cluster.LoadImbalance(c->catalog()), 1.0);
}

TEST(ClusterTest, RoundRobinCanBeImbalanced) {
  auto c = MakeFamilies();
  Cluster cluster(2, PlacementPolicy::kRoundRobin);
  cluster.Place(c->catalog());
  // Node 0 gets 40+20=60, node 1 gets 30+10=40.
  EXPECT_GT(cluster.LoadImbalance(c->catalog()), 1.0);
}

TEST(ClusterTest, NodeOfUnplacedFails) {
  Cluster cluster(2, PlacementPolicy::kRoundRobin);
  EXPECT_FALSE(cluster.NodeOf(0).ok());
}

TEST(ClusterTest, SelectiveQueryContactsOneNode) {
  auto c = MakeFamilies();
  Cluster cluster(4, PlacementPolicy::kRoundRobin);
  cluster.Place(c->catalog());
  const DistributedQueryResult result =
      cluster.Execute(Query(Synopsis{30}), c->catalog());
  EXPECT_EQ(result.nodes_contacted, 1u);
  EXPECT_EQ(result.partitions_scanned, 1u);
  EXPECT_EQ(result.partitions_pruned, 3u);
  EXPECT_EQ(result.rows_matched, 10u);
  EXPECT_EQ(result.max_node_rows, 10u);
  // Each matched row ships its one projected cell.
  EXPECT_EQ(result.result_cells_shipped, 10u);
}

TEST(ClusterTest, BroadQueryFansOut) {
  auto c = MakeFamilies();
  Cluster cluster(4, PlacementPolicy::kRoundRobin);
  cluster.Place(c->catalog());
  const DistributedQueryResult result =
      cluster.Execute(Query(Synopsis{0, 10, 20, 30}), c->catalog());
  EXPECT_EQ(result.nodes_contacted, 4u);
  EXPECT_EQ(result.rows_matched, 100u);
  // Critical path: the node holding the 40-entity partition.
  EXPECT_EQ(result.max_node_rows, 40u);
}

TEST(ClusterTest, HashPartitioningAlwaysFansOut) {
  // Schema-oblivious hash placement: every partition contains every
  // schema, so even a selective query contacts all nodes.
  HashPartitioner hash(4);
  EntityId next = 0;
  for (size_t family = 0; family < 4; ++family) {
    for (size_t i = 0; i < 25; ++i) {
      const AttributeId base = static_cast<AttributeId>(family * 10);
      ASSERT_TRUE(hash.Insert(MakeRow(next++, {base, base + 1})).ok());
    }
  }
  Cluster cluster(4, PlacementPolicy::kRoundRobin);
  cluster.Place(hash.catalog());
  const DistributedQueryResult result =
      cluster.Execute(Query(Synopsis{30}), hash.catalog());
  EXPECT_EQ(result.nodes_contacted, 4u);
  EXPECT_EQ(result.rows_scanned, 100u);  // No pruning possible.
  EXPECT_EQ(result.rows_matched, 25u);
}

TEST(ClusterTest, SchemaAwareCoLocatesSimilarPartitions) {
  // Two schema families, two partitions each (forced by capacity).
  CinderellaConfig config;
  config.weight = 0.3;
  config.max_size = 10;
  auto c = std::move(Cinderella::Create(config)).value();
  EntityId next = 0;
  for (int round = 0; round < 18; ++round) {
    ASSERT_TRUE(c->Insert(MakeRow(next++, {0, 1})).ok());
    ASSERT_TRUE(c->Insert(MakeRow(next++, {20, 21})).ok());
  }
  ASSERT_GE(c->catalog().partition_count(), 4u);

  Cluster cluster(2, PlacementPolicy::kSchemaAware);
  cluster.Place(c->catalog());
  // Every family's partitions should land on one node: a family query
  // contacts exactly one node.
  const DistributedQueryResult family_a =
      cluster.Execute(Query(Synopsis{0}), c->catalog());
  const DistributedQueryResult family_b =
      cluster.Execute(Query(Synopsis{20}), c->catalog());
  EXPECT_EQ(family_a.nodes_contacted, 1u);
  EXPECT_EQ(family_b.nodes_contacted, 1u);
  // And the load cap keeps the placement balanced.
  EXPECT_LE(cluster.LoadImbalance(c->catalog()), 1.3);
}

TEST(ClusterTest, SchemaAwareRespectsLoadCap) {
  // Ten identical-schema partitions must not all pile on one node.
  CinderellaConfig config;
  config.weight = 1.0;
  config.max_size = 10;
  auto c = std::move(Cinderella::Create(config)).value();
  for (EntityId id = 0; id < 100; ++id) {
    ASSERT_TRUE(c->Insert(MakeRow(id, {0, 1})).ok());
  }
  ASSERT_GE(c->catalog().partition_count(), 8u);
  Cluster cluster(4, PlacementPolicy::kSchemaAware);
  cluster.Place(c->catalog());
  EXPECT_LE(cluster.LoadImbalance(c->catalog()), 1.5);
  const auto loads = cluster.node_loads(c->catalog());
  for (const NodeLoad& load : loads) {
    EXPECT_GT(load.entities, 0u);  // No empty node.
  }
}

TEST(ClusterTest, RePlaceAfterCatalogChanges) {
  auto c = MakeFamilies();
  Cluster cluster(2, PlacementPolicy::kLeastLoaded);
  cluster.Place(c->catalog());
  ASSERT_TRUE(c->Insert(MakeRow(999, {70, 71})).ok());  // New partition.
  cluster.Place(c->catalog());
  const auto ids = c->catalog().LivePartitionIds();
  for (PartitionId id : ids) {
    EXPECT_TRUE(cluster.NodeOf(id).ok());
  }
}

TEST(ClusterTest, EmptyCatalog) {
  PartitionCatalog catalog;
  Cluster cluster(3, PlacementPolicy::kRoundRobin);
  cluster.Place(catalog);
  EXPECT_DOUBLE_EQ(cluster.LoadImbalance(catalog), 0.0);
  const DistributedQueryResult result =
      cluster.Execute(Query(Synopsis{0}), catalog);
  EXPECT_EQ(result.nodes_contacted, 0u);
}

TEST(ClusterTest, PlaceIncrementalKeepsExistingAssignmentsPinned) {
  auto c = MakeFamilies();
  Cluster cluster(2, PlacementPolicy::kLeastLoaded);
  cluster.Place(c->catalog());

  // Remember every assignment, then grow the catalog.
  std::map<PartitionId, NodeId> before;
  for (PartitionId id : c->catalog().LivePartitionIds()) {
    before[id] = *cluster.NodeOf(id);
  }
  for (EntityId id = 2000; id < 2015; ++id) {
    ASSERT_TRUE(c->Insert(MakeRow(id, {70, 71})).ok());  // New family.
  }

  const Cluster::PlacementDelta delta = cluster.PlaceIncremental(c->catalog());
  EXPECT_EQ(delta.kept, before.size());
  EXPECT_GE(delta.placed, 1u);
  EXPECT_EQ(delta.removed, 0u);

  // Old partitions stay exactly where they were (no data movement);
  // every new partition got a node.
  for (PartitionId id : c->catalog().LivePartitionIds()) {
    auto it = before.find(id);
    if (it != before.end()) {
      EXPECT_EQ(*cluster.NodeOf(id), it->second) << "partition " << id;
    } else {
      EXPECT_TRUE(cluster.NodeOf(id).ok()) << "partition " << id;
    }
  }
}

TEST(ClusterTest, PlaceIncrementalForgetsDroppedPartitions) {
  auto c = MakeFamilies();
  Cluster cluster(2, PlacementPolicy::kRoundRobin);
  cluster.Place(c->catalog());
  const auto ids = c->catalog().LivePartitionIds();

  // Drain one whole family so its partition is dropped.
  std::vector<EntityId> victims;
  for (EntityId id = 0; id < 40; ++id) victims.push_back(id);
  ASSERT_TRUE(c->DeleteBatch(victims).ok());
  ASSERT_LT(c->catalog().partition_count(), ids.size());

  const Cluster::PlacementDelta delta = cluster.PlaceIncremental(c->catalog());
  EXPECT_GE(delta.removed, 1u);
  EXPECT_EQ(delta.placed, 0u);
  EXPECT_EQ(delta.kept, c->catalog().partition_count());
  size_t unplaced = 0;
  for (PartitionId id : ids) {
    if (!cluster.NodeOf(id).ok()) ++unplaced;
  }
  EXPECT_EQ(unplaced, ids.size() - c->catalog().partition_count());
}

TEST(ClusterTest, PlaceIncrementalOnEmptyClusterMatchesPolicyShape) {
  auto c = MakeFamilies();
  Cluster cluster(2, PlacementPolicy::kSchemaAware);
  const Cluster::PlacementDelta delta = cluster.PlaceIncremental(c->catalog());
  EXPECT_EQ(delta.placed, c->catalog().partition_count());
  EXPECT_EQ(delta.kept, 0u);
  for (PartitionId id : c->catalog().LivePartitionIds()) {
    EXPECT_TRUE(cluster.NodeOf(id).ok());
  }
  // Schema-aware incremental placement still respects the soft load cap:
  // with four single-family partitions on two nodes, nothing lands all on
  // one node.
  const auto loads = cluster.node_loads(c->catalog());
  EXPECT_GT(loads[0].entities, 0u);
  EXPECT_GT(loads[1].entities, 0u);
}

}  // namespace
}  // namespace cinderella
