// Tests for value predicates: evaluation semantics on sparse rows,
// conservative pruning synopses, and integration with the executor
// (including a differential check against a brute-force scan).

#include <memory>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/cinderella.h"
#include "query/executor.h"
#include "query/predicate.h"

namespace cinderella {
namespace {

Row MakeRow(EntityId id) {
  Row row(id);
  row.Set(0, Value(int64_t{100}));
  row.Set(1, Value(2.5));
  row.Set(2, Value("cinderella"));
  return row;
}

TEST(PredicateTest, IsNotNull) {
  const Row row = MakeRow(1);
  EXPECT_TRUE(IsNotNull(0)->Matches(row));
  EXPECT_FALSE(IsNotNull(9)->Matches(row));
}

TEST(PredicateTest, CompareIntegers) {
  const Row row = MakeRow(1);
  EXPECT_TRUE(Compare(0, CompareOp::kEq, Value(int64_t{100}))->Matches(row));
  EXPECT_FALSE(Compare(0, CompareOp::kNe, Value(int64_t{100}))->Matches(row));
  EXPECT_TRUE(Compare(0, CompareOp::kGt, Value(int64_t{99}))->Matches(row));
  EXPECT_TRUE(Compare(0, CompareOp::kGe, Value(int64_t{100}))->Matches(row));
  EXPECT_FALSE(Compare(0, CompareOp::kLt, Value(int64_t{100}))->Matches(row));
  EXPECT_TRUE(Compare(0, CompareOp::kLe, Value(int64_t{100}))->Matches(row));
}

TEST(PredicateTest, NumericCoercion) {
  const Row row = MakeRow(1);
  // int64 attribute compared with a double literal and vice versa.
  EXPECT_TRUE(Compare(0, CompareOp::kGt, Value(99.5))->Matches(row));
  EXPECT_TRUE(Compare(1, CompareOp::kEq, Value(2.5))->Matches(row));
  EXPECT_TRUE(Compare(1, CompareOp::kLt, Value(int64_t{3}))->Matches(row));
}

TEST(PredicateTest, StringComparisons) {
  const Row row = MakeRow(1);
  EXPECT_TRUE(Compare(2, CompareOp::kEq, Value("cinderella"))->Matches(row));
  EXPECT_TRUE(Compare(2, CompareOp::kLt, Value("grimm"))->Matches(row));
  // Number vs string: never comparable, never matches.
  EXPECT_FALSE(Compare(2, CompareOp::kEq, Value(int64_t{1}))->Matches(row));
  EXPECT_FALSE(Compare(0, CompareOp::kEq, Value("100"))->Matches(row));
}

TEST(PredicateTest, MissingAttributeNeverMatchesComparison) {
  const Row row = MakeRow(1);
  EXPECT_FALSE(Compare(9, CompareOp::kEq, Value(int64_t{1}))->Matches(row));
  EXPECT_FALSE(Compare(9, CompareOp::kNe, Value(int64_t{1}))->Matches(row));
}

TEST(PredicateTest, BooleanCombinators) {
  const Row row = MakeRow(1);
  auto make_true = [] { return IsNotNull(0); };
  auto make_false = [] { return IsNotNull(9); };

  std::vector<PredicatePtr> both;
  both.push_back(make_true());
  both.push_back(make_false());
  EXPECT_FALSE(And(std::move(both))->Matches(row));

  std::vector<PredicatePtr> either;
  either.push_back(make_true());
  either.push_back(make_false());
  EXPECT_TRUE(Or(std::move(either))->Matches(row));

  EXPECT_TRUE(Not(make_false())->Matches(row));
  EXPECT_FALSE(Not(make_true())->Matches(row));

  EXPECT_TRUE(And({})->Matches(row));   // Empty AND = TRUE.
  EXPECT_FALSE(Or({})->Matches(row));   // Empty OR = FALSE.
}

TEST(PredicateTest, PruningSynopses) {
  Synopsis s;
  EXPECT_TRUE(IsNotNull(3)->PruningSynopsis(&s));
  EXPECT_EQ(s, Synopsis{3});

  s.Clear();
  std::vector<PredicatePtr> disjunction;
  disjunction.push_back(IsNotNull(1));
  disjunction.push_back(Compare(2, CompareOp::kEq, Value(int64_t{5})));
  EXPECT_TRUE(Or(std::move(disjunction))->PruningSynopsis(&s));
  EXPECT_EQ(s, (Synopsis{1, 2}));

  // NOT is not prunable.
  s.Clear();
  EXPECT_FALSE(Not(IsNotNull(1))->PruningSynopsis(&s));

  // An OR containing a NOT is not prunable either.
  s.Clear();
  std::vector<PredicatePtr> with_not;
  with_not.push_back(IsNotNull(1));
  with_not.push_back(Not(IsNotNull(2)));
  EXPECT_FALSE(Or(std::move(with_not))->PruningSynopsis(&s));

  // An AND is prunable via any prunable child.
  s.Clear();
  std::vector<PredicatePtr> conjunction;
  conjunction.push_back(Not(IsNotNull(2)));
  conjunction.push_back(IsNotNull(4));
  EXPECT_TRUE(And(std::move(conjunction))->PruningSynopsis(&s));
  EXPECT_TRUE(s.Contains(4));
}

TEST(PredicateTest, ToStringRendering) {
  std::vector<PredicatePtr> children;
  children.push_back(IsNotNull(1));
  children.push_back(Compare(2, CompareOp::kGt, Value(int64_t{7})));
  EXPECT_EQ(And(std::move(children))->ToString(),
            "(attr1 IS NOT NULL AND attr2 > 7)");
  EXPECT_EQ(Not(IsNotNull(0))->ToString(), "NOT attr0 IS NOT NULL");
}

// -- executor integration ------------------------------------------------------

class PredicateExecutorTest : public testing::Test {
 protected:
  void SetUp() override {
    CinderellaConfig config;
    config.weight = 0.3;
    config.max_size = 50;
    partitioner_ = std::move(Cinderella::Create(config)).value();
    Rng rng(77);
    for (EntityId id = 0; id < 300; ++id) {
      Row row(id);
      const AttributeId base =
          static_cast<AttributeId>(rng.Uniform(3) * 10);
      for (AttributeId a = 0; a < 3; ++a) {
        row.Set(base + a, Value(static_cast<int64_t>(rng.Uniform(100))));
      }
      rows_.push_back(row);
      ASSERT_TRUE(partitioner_->Insert(std::move(row)).ok());
    }
  }

  size_t BruteForceCount(const Predicate& predicate) const {
    size_t count = 0;
    for (const Row& row : rows_) count += predicate.Matches(row);
    return count;
  }

  std::unique_ptr<Cinderella> partitioner_;
  std::vector<Row> rows_;
};

TEST_F(PredicateExecutorTest, PrunedScanMatchesBruteForce) {
  QueryExecutor executor(partitioner_->catalog());
  auto predicate = Compare(10, CompareOp::kLt, Value(int64_t{50}));
  const QueryResult result = executor.ExecutePredicate(*predicate);
  EXPECT_EQ(result.metrics.rows_matched, BruteForceCount(*predicate));
  // Partitions of the other two schema families were pruned.
  EXPECT_GT(result.metrics.partitions_pruned, 0u);
}

TEST_F(PredicateExecutorTest, NonPrunablePredicateScansEverything) {
  QueryExecutor executor(partitioner_->catalog());
  auto predicate = Not(IsNotNull(10));
  const QueryResult result = executor.ExecutePredicate(*predicate);
  EXPECT_EQ(result.metrics.partitions_pruned, 0u);
  EXPECT_EQ(result.metrics.rows_scanned, 300u);
  EXPECT_EQ(result.metrics.rows_matched, BruteForceCount(*predicate));
}

TEST_F(PredicateExecutorTest, ScanMatchesDeliversRows) {
  QueryExecutor executor(partitioner_->catalog());
  auto predicate = IsNotNull(20);
  std::vector<EntityId> seen;
  executor.ScanMatches(*predicate,
                       [&](const RowView& row) { seen.push_back(row.id()); });
  EXPECT_EQ(seen.size(), BruteForceCount(*predicate));
  for (EntityId id : seen) {
    EXPECT_TRUE(rows_[id].Has(20));
  }
}

TEST_F(PredicateExecutorTest, RandomDifferentialSweep) {
  QueryExecutor executor(partitioner_->catalog());
  Rng rng(99);
  for (int trial = 0; trial < 60; ++trial) {
    // Random two-clause predicate over random attributes.
    const AttributeId a = static_cast<AttributeId>(rng.Uniform(30));
    const AttributeId b = static_cast<AttributeId>(rng.Uniform(30));
    const auto op = static_cast<CompareOp>(rng.Uniform(6));
    const int64_t literal = static_cast<int64_t>(rng.Uniform(100));
    std::vector<PredicatePtr> clauses;
    clauses.push_back(Compare(a, op, Value(literal)));
    clauses.push_back(IsNotNull(b));
    PredicatePtr predicate = rng.Bernoulli(0.5)
                                 ? Or(std::move(clauses))
                                 : And(std::move(clauses));
    if (rng.Bernoulli(0.25)) predicate = Not(std::move(predicate));
    const QueryResult result = executor.ExecutePredicate(*predicate);
    EXPECT_EQ(result.metrics.rows_matched, BruteForceCount(*predicate))
        << predicate->ToString();
  }
}

}  // namespace
}  // namespace cinderella
