// Property tests: structural invariants of the partitioning under random
// workloads of inserts, deletes, and updates, swept over weights, capacity
// limits, size measures, and the synopsis index (TEST_P).

#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/cinderella.h"

namespace cinderella {
namespace {

Row RandomRow(EntityId id, Rng& rng, uint32_t attribute_space) {
  Row row(id);
  // Three latent schema families plus noise; occasional empty rows.
  if (!rng.Bernoulli(0.03)) {
    const AttributeId base =
        static_cast<AttributeId>(rng.Uniform(3) * (attribute_space / 3));
    const int core = 2 + static_cast<int>(rng.Uniform(5));
    for (int i = 0; i < core; ++i) {
      row.Set(base + static_cast<AttributeId>(rng.Uniform(attribute_space / 3)),
              Value(static_cast<int64_t>(rng.Uniform(100))));
    }
    if (rng.Bernoulli(0.3)) {
      row.Set(static_cast<AttributeId>(rng.Uniform(attribute_space)),
              Value("noise"));
    }
  }
  return row;
}

/// Checks every structural invariant of a Cinderella instance against a
/// reference model (entity id -> expected row attribute count).
void CheckInvariants(const Cinderella& c,
                     const std::map<EntityId, size_t>& model) {
  const PartitionCatalog& catalog = c.catalog();

  // Entity census: every model entity is bound to a live partition that
  // physically holds its row, and nothing else exists.
  EXPECT_EQ(catalog.entity_count(), model.size());
  size_t seen = 0;
  for (const auto& [entity, attribute_count] : model) {
    const auto home = catalog.FindEntity(entity);
    ASSERT_TRUE(home.has_value()) << "entity " << entity << " unbound";
    const Partition* partition = catalog.GetPartition(*home);
    ASSERT_NE(partition, nullptr);
    const Row* row = partition->segment().Find(entity);
    ASSERT_NE(row, nullptr) << "entity " << entity << " missing from segment";
    EXPECT_EQ(row->attribute_count(), attribute_count);
    ++seen;
  }
  EXPECT_EQ(seen, model.size());

  size_t total_rows = 0;
  catalog.ForEachPartition([&](const Partition& partition) {
    // No empty partitions survive.
    EXPECT_GT(partition.entity_count(), 0u)
        << "empty partition " << partition.id();
    total_rows += partition.entity_count();

    // Capacity: with the entity measure a partition never exceeds B
    // (other measures admit oversized single rows).
    if (c.config().measure == SizeMeasure::kEntityCount) {
      EXPECT_LE(partition.entity_count(), c.config().max_size);
    } else if (partition.entity_count() > 1) {
      EXPECT_LE(partition.Size(c.config().measure), c.config().max_size);
    }

    // Partition synopsis == union of resident attribute synopses.
    Synopsis expected_union;
    uint64_t cells = 0;
    uint64_t bytes = 0;
    for (const Row& row : partition.segment().rows()) {
      expected_union.UnionWith(row.AttributeSynopsis());
      cells += row.attribute_count();
      bytes += row.byte_size();
      // Each resident is bound to this partition.
      EXPECT_EQ(catalog.FindEntity(row.id()),
                std::optional<PartitionId>(partition.id()));
    }
    EXPECT_EQ(partition.attribute_synopsis(), expected_union)
        << "synopsis drift in partition " << partition.id();
    EXPECT_EQ(partition.Size(SizeMeasure::kAttributeCount), cells);
    EXPECT_EQ(partition.Size(SizeMeasure::kByteSize), bytes);

    // Rating synopsis matches in entity-based mode.
    EXPECT_EQ(partition.rating_synopsis(), expected_union);

    // Starters are resident entities with accurate synopses.
    for (const auto& starter : {partition.starter_a(), partition.starter_b()}) {
      if (!starter.has_value()) continue;
      const Row* row = partition.segment().Find(starter->entity);
      ASSERT_NE(row, nullptr) << "starter not resident";
      EXPECT_EQ(starter->synopsis, row->AttributeSynopsis());
    }
    if (partition.starter_a().has_value() &&
        partition.starter_b().has_value()) {
      EXPECT_NE(partition.starter_a()->entity,
                partition.starter_b()->entity);
    }
  });
  EXPECT_EQ(total_rows, model.size());
}

struct PropertyParams {
  double weight;
  uint64_t max_size;
  SizeMeasure measure;
  bool use_index;
};

std::string ParamName(const testing::TestParamInfo<PropertyParams>& info) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "w%02d_B%llu_%s_%s",
                static_cast<int>(info.param.weight * 10),
                static_cast<unsigned long long>(info.param.max_size),
                SizeMeasureToString(info.param.measure),
                info.param.use_index ? "indexed" : "scan");
  return buf;
}

class CinderellaPropertyTest : public testing::TestWithParam<PropertyParams> {
};

TEST_P(CinderellaPropertyTest, InvariantsUnderRandomWorkload) {
  const PropertyParams& params = GetParam();
  CinderellaConfig config;
  config.weight = params.weight;
  config.max_size = params.max_size;
  config.measure = params.measure;
  config.use_synopsis_index = params.use_index;
  auto created = Cinderella::Create(config);
  ASSERT_TRUE(created.ok());
  auto c = std::move(created).value();

  Rng rng(1234);
  std::map<EntityId, size_t> model;
  EntityId next_id = 0;
  std::vector<EntityId> live;

  for (int op = 0; op < 1500; ++op) {
    const double dice = rng.UniformDouble();
    if (dice < 0.70 || live.empty()) {
      Row row = RandomRow(next_id++, rng, 30);
      model[row.id()] = row.attribute_count();
      live.push_back(row.id());
      ASSERT_TRUE(c->Insert(std::move(row)).ok());
    } else if (dice < 0.85) {
      const size_t pick = static_cast<size_t>(rng.Uniform(live.size()));
      const EntityId victim = live[pick];
      live[pick] = live.back();
      live.pop_back();
      model.erase(victim);
      ASSERT_TRUE(c->Delete(victim).ok());
    } else {
      const EntityId target =
          live[static_cast<size_t>(rng.Uniform(live.size()))];
      Row row = RandomRow(target, rng, 30);
      model[target] = row.attribute_count();
      ASSERT_TRUE(c->Update(std::move(row)).ok());
    }
    if (op % 250 == 249) CheckInvariants(*c, model);
  }
  CheckInvariants(*c, model);
  // The library's own deep self-check agrees with the test harness.
  EXPECT_TRUE(c->VerifyIntegrity().ok()) << c->VerifyIntegrity().ToString();

  // Weight 0 additionally guarantees perfectly homogeneous partitions
  // (Section V: "In the extreme case of w = 0 all created partitions are
  // completely homogeneous").
  if (params.weight == 0.0) {
    c->catalog().ForEachPartition([&](const Partition& partition) {
      const Synopsis& schema = partition.attribute_synopsis();
      for (const Row& row : partition.segment().rows()) {
        EXPECT_EQ(row.AttributeSynopsis(), schema);
      }
      EXPECT_DOUBLE_EQ(partition.Sparseness(), 0.0);
    });
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CinderellaPropertyTest,
    testing::Values(
        PropertyParams{0.0, 50, SizeMeasure::kEntityCount, false},
        PropertyParams{0.2, 50, SizeMeasure::kEntityCount, false},
        PropertyParams{0.5, 50, SizeMeasure::kEntityCount, false},
        PropertyParams{0.8, 50, SizeMeasure::kEntityCount, false},
        PropertyParams{1.0, 50, SizeMeasure::kEntityCount, false},
        PropertyParams{0.5, 5, SizeMeasure::kEntityCount, false},
        PropertyParams{0.5, 1, SizeMeasure::kEntityCount, false},
        PropertyParams{0.5, 400, SizeMeasure::kAttributeCount, false},
        PropertyParams{0.5, 4000, SizeMeasure::kByteSize, false},
        PropertyParams{0.2, 50, SizeMeasure::kEntityCount, true},
        PropertyParams{0.5, 5, SizeMeasure::kEntityCount, true},
        PropertyParams{0.5, 400, SizeMeasure::kAttributeCount, true}),
    ParamName);

// The synopsis index must be an exact optimization: identical partitioning
// decisions as the full catalog scan, operation by operation.
class IndexEquivalenceTest : public testing::TestWithParam<double> {};

TEST_P(IndexEquivalenceTest, IndexedMatchesScan) {
  const double weight = GetParam();
  CinderellaConfig scan_config;
  scan_config.weight = weight;
  scan_config.max_size = 20;
  CinderellaConfig indexed_config = scan_config;
  indexed_config.use_synopsis_index = true;

  auto scan = std::move(Cinderella::Create(scan_config)).value();
  auto indexed = std::move(Cinderella::Create(indexed_config)).value();

  Rng rng(777);
  EntityId next_id = 0;
  std::vector<EntityId> live;
  for (int op = 0; op < 1200; ++op) {
    const double dice = rng.UniformDouble();
    if (dice < 0.75 || live.empty()) {
      Row row = RandomRow(next_id++, rng, 24);
      live.push_back(row.id());
      Row copy = row;
      ASSERT_TRUE(scan->Insert(std::move(copy)).ok());
      ASSERT_TRUE(indexed->Insert(std::move(row)).ok());
    } else if (dice < 0.9) {
      const size_t pick = static_cast<size_t>(rng.Uniform(live.size()));
      const EntityId victim = live[pick];
      live[pick] = live.back();
      live.pop_back();
      ASSERT_TRUE(scan->Delete(victim).ok());
      ASSERT_TRUE(indexed->Delete(victim).ok());
    } else {
      const EntityId target =
          live[static_cast<size_t>(rng.Uniform(live.size()))];
      Row row = RandomRow(target, rng, 24);
      Row copy = row;
      ASSERT_TRUE(scan->Update(std::move(copy)).ok());
      ASSERT_TRUE(indexed->Update(std::move(row)).ok());
    }
  }

  // Same co-location structure: group rows by partition and compare the
  // resulting set of member sets.
  auto grouping = [](const Cinderella& c) {
    std::set<std::set<EntityId>> groups;
    c.catalog().ForEachPartition([&](const Partition& p) {
      std::set<EntityId> members;
      for (const Row& row : p.segment().rows()) members.insert(row.id());
      groups.insert(std::move(members));
    });
    return groups;
  };
  EXPECT_EQ(grouping(*scan), grouping(*indexed));
  EXPECT_EQ(scan->catalog().partition_count(),
            indexed->catalog().partition_count());
  EXPECT_EQ(scan->stats().splits, indexed->stats().splits);
}

INSTANTIATE_TEST_SUITE_P(Weights, IndexEquivalenceTest,
                         testing::Values(0.0, 0.2, 0.5, 0.8, 1.0),
                         [](const testing::TestParamInfo<double>& info) {
                           // snprintf instead of string concatenation: GCC
                           // 12's Release-mode string inlining misreports
                           // the "w" + to_string(...) form as
                           // -Werror=restrict.
                           char buf[16];
                           std::snprintf(buf, sizeof(buf), "w%02d",
                                         static_cast<int>(info.param * 10));
                           return std::string(buf);
                         });

// Starter-policy sweep: all policies must preserve the structural
// invariants (quality differs; that is the ablation bench's subject).
class StarterPolicyTest : public testing::TestWithParam<StarterPolicy> {};

TEST_P(StarterPolicyTest, InvariantsHold) {
  CinderellaConfig config;
  config.weight = 0.5;
  config.max_size = 10;
  config.starter_policy = GetParam();
  auto c = std::move(Cinderella::Create(config)).value();
  Rng rng(55);
  std::map<EntityId, size_t> model;
  for (EntityId id = 0; id < 600; ++id) {
    Row row = RandomRow(id, rng, 30);
    model[id] = row.attribute_count();
    ASSERT_TRUE(c->Insert(std::move(row)).ok());
  }
  CheckInvariants(*c, model);
  EXPECT_GT(c->stats().splits, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, StarterPolicyTest,
    testing::Values(StarterPolicy::kMaxDiffHeuristic, StarterPolicy::kFirstTwo,
                    StarterPolicy::kRandom),
    [](const testing::TestParamInfo<StarterPolicy>& info) {
      switch (info.param) {
        case StarterPolicy::kMaxDiffHeuristic:
          return "maxdiff";
        case StarterPolicy::kFirstTwo:
          return "firsttwo";
        case StarterPolicy::kRandom:
          return "random";
      }
      return "unknown";
    });

}  // namespace
}  // namespace cinderella
