// Reader-during-ingest stress for the MVCC read engine: one writer runs
// batched inserts and batched deletes while several reader threads pin
// snapshots and check per-view invariants. Built for the TSan pass of
// tools/tier1.sh; the assertions catch torn views (a reader observing a
// half-applied split cascade) and use-after-free of retired versions.

#include <atomic>
#include <cstdlib>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/cinderella.h"
#include "mvcc/partition_version.h"
#include "mvcc/versioned_table.h"
#include "query/executor.h"
#include "query/query.h"

namespace cinderella {
namespace {

Row MakeRow(EntityId id) {
  Row row(id);
  const AttributeId base = static_cast<AttributeId>((id % 4) * 8);
  row.Set(base, Value(int64_t{1}));
  row.Set(base + 1, Value(int64_t{1}));
  row.Set(base + 2, Value(static_cast<int64_t>(id)));
  return row;
}

int ReaderThreads() {
  const char* env = std::getenv("CINDERELLA_STRESS_READERS");
  if (env != nullptr && *env != '\0') {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  return 3;
}

TEST(MvccStressTest, ReadersNeverObserveTornViews) {
  CinderellaConfig config;
  config.weight = 0.4;
  config.max_size = 16;  // Small capacity: frequent splits under load.
  config.scan_threads = 1;
  VersionedTable::Options options;
  options.ingest.window = 16;
  options.ingest.shards = 2;
  VersionedTable table(std::move(Cinderella::Create(config)).value(),
                       std::move(options));

  constexpr int kBatches = 40;
  constexpr EntityId kBatchRows = 48;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> views_checked{0};
  std::atomic<bool> failed{false};

  std::vector<std::thread> readers;
  const int num_readers = ReaderThreads();
  readers.reserve(static_cast<size_t>(num_readers));
  for (int r = 0; r < num_readers; ++r) {
    readers.emplace_back([&] {
      const Query query(Synopsis{0, 8});
      while (!done.load(std::memory_order_acquire)) {
        const VersionedTable::Snapshot snapshot = table.snapshot();
        const CatalogView& view = snapshot.view();
        // Per-view invariants: ascending unique partition ids, totals
        // consistent, every resident row findable, rows self-consistent.
        size_t entities = 0;
        PartitionId last_id = 0;
        bool first = true;
        for (const PartitionVersion* version : view.partitions()) {
          if (!first && version->id() <= last_id) {
            failed.store(true);
            return;
          }
          first = false;
          last_id = version->id();
          if (version->entity_count() == 0) {
            failed.store(true);
            return;
          }
          entities += version->entity_count();
          const RowView probe = version->row(0);
          const RowView found = version->Find(probe.id());
          if (!found.valid() || found.id() != probe.id()) {
            failed.store(true);
            return;
          }
        }
        if (entities != view.entity_count()) {
          failed.store(true);
          return;
        }
        // A full scan through the executor must agree with the view's own
        // totals — rows_scanned counts exactly the non-pruned residents.
        QueryExecutor executor(view);
        const QueryResult result = executor.Execute(query);
        if (result.metrics.partitions_total != view.partition_count()) {
          failed.store(true);
          return;
        }
        views_checked.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Writer: interleaved batched inserts and batched deletes.
  EntityId next_id = 0;
  for (int b = 0; b < kBatches; ++b) {
    std::vector<Row> rows;
    rows.reserve(kBatchRows);
    for (EntityId i = 0; i < kBatchRows; ++i) rows.push_back(MakeRow(next_id++));
    ASSERT_TRUE(table.InsertBatch(std::move(rows)).ok());
    if (b % 4 == 3) {
      // Delete the oldest surviving half-batch, exercising partition
      // drains and version retirement under concurrent readers.
      const EntityId low = (static_cast<EntityId>(b) / 4) * kBatchRows;
      std::vector<EntityId> victims;
      for (EntityId id = low; id < low + kBatchRows / 2; ++id) {
        victims.push_back(id);
      }
      ASSERT_TRUE(table.DeleteBatch(victims).ok());
    }
  }
  done.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  EXPECT_FALSE(failed.load());
  EXPECT_GT(views_checked.load(), 0u);
  ASSERT_TRUE(table.partitioner().VerifyIntegrity().ok());

  // All readers released: one more publication reclaims everything that
  // was retired while they were pinned.
  ASSERT_TRUE(table.Insert(MakeRow(1000000)).ok());
  EXPECT_EQ(table.epochs().retired_count(), 0u);
}

TEST(MvccStressTest, PooledArenasAreNotReusedUnderPinnedReaders) {
  // The recycling hazard: a publication arena may only return to the pool
  // (and be overwritten by a later generation) after the last version
  // built in it is reclaimed — i.e. after every reader pinned at or
  // before that generation unpins. Readers here hold snapshots across
  // writer churn and re-verify the pinned data cell-by-cell; premature
  // reuse scribbles over the cells they are reading, which the value
  // checks catch and the TSan/ASan tier-1 passes flag as a race or
  // use-after-reset.
  CinderellaConfig config;
  config.weight = 0.4;
  config.max_size = 16;
  config.scan_threads = 1;
  VersionedTable table(std::move(Cinderella::Create(config)).value());

  std::vector<Row> rows;
  for (EntityId id = 0; id < 64; ++id) rows.push_back(MakeRow(id));
  ASSERT_TRUE(table.InsertBatch(std::move(rows)).ok());

  std::atomic<bool> done{false};
  std::atomic<bool> failed{false};
  std::atomic<uint64_t> holds{0};

  auto view_is_coherent = [](const CatalogView& view) {
    // MakeRow stores Value(id) at attribute base+2; any overwrite by a
    // recycled arena breaks the id -> cell agreement.
    for (const PartitionVersion* version : view.partitions()) {
      for (size_t i = 0; i < version->entity_count(); ++i) {
        const RowView row = version->row(i);
        const AttributeId base = static_cast<AttributeId>((row.id() % 4) * 8);
        const Value* value = row.Get(base + 2);
        if (value == nullptr ||
            value->as_int64() != static_cast<int64_t>(row.id())) {
          return false;
        }
      }
    }
    return true;
  };

  std::vector<std::thread> readers;
  const int num_readers = ReaderThreads();
  readers.reserve(static_cast<size_t>(num_readers));
  for (int r = 0; r < num_readers; ++r) {
    readers.emplace_back([&] {
      // do-while: even if the writer outruns reader startup (single-core
      // schedulers), every reader still validates at least one pinned
      // snapshot.
      do {
        const VersionedTable::Snapshot snapshot = table.snapshot();
        // First pass, then hold the pin across writer publications, then
        // re-verify: the arena behind this generation must still hold
        // exactly the bytes it was published with.
        if (!view_is_coherent(snapshot.view())) {
          failed.store(true);
          return;
        }
        for (int spin = 0; spin < 20; ++spin) {
          std::this_thread::yield();
        }
        if (!view_is_coherent(snapshot.view())) {
          failed.store(true);
          return;
        }
        holds.fetch_add(1, std::memory_order_relaxed);
      } while (!done.load(std::memory_order_acquire));
    });
  }

  // Writer: single-row updates, each one a publication that acquires an
  // arena and retires the superseded generation's version and view.
  for (int i = 0; i < 600; ++i) {
    const EntityId target = static_cast<EntityId>(i % 64);
    ASSERT_TRUE(table.Update(MakeRow(target)).ok());
    if (i % 8 == 7) std::this_thread::yield();
  }
  done.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  EXPECT_FALSE(failed.load());
  EXPECT_GT(holds.load(), 0u);

  // Recycling did happen under load (the zero-malloc machinery was
  // actually exercised, not just idle)...
  const VersionedTable::MemoryStats stats = table.memory_stats();
  EXPECT_GT(stats.arenas.arenas_recycled, 0u);
  EXPECT_GT(stats.arenas.arenas_reused, 0u);
  // ...and with every reader released, one more publication drains all
  // retired generations back into the pools.
  ASSERT_TRUE(table.Insert(MakeRow(1000000)).ok());
  EXPECT_EQ(table.epochs().retired_count(), 0u);
}

TEST(MvccStressTest, ReadersNeverObserveTornViewsDuringUpdateBatch) {
  // The unified-pipeline variant of the torn-view check: the writer runs
  // batched updates (and occasional mixed update/delete/insert batches)
  // through the MutationPipeline while readers pin snapshots. An update
  // that moves an entity is a remove+place pair inside the engine; a
  // reader must never see the in-between state (entity in zero or two
  // partitions, totals off by one).
  CinderellaConfig config;
  config.weight = 0.4;
  config.max_size = 16;
  config.scan_threads = 1;
  VersionedTable::Options options;
  options.ingest.window = 16;
  options.ingest.shards = 2;
  VersionedTable table(std::move(Cinderella::Create(config)).value(),
                       std::move(options));

  constexpr EntityId kEntities = 512;
  std::vector<Row> base;
  base.reserve(kEntities);
  for (EntityId id = 0; id < kEntities; ++id) base.push_back(MakeRow(id));
  ASSERT_TRUE(table.InsertBatch(std::move(base)).ok());

  std::atomic<bool> done{false};
  std::atomic<uint64_t> views_checked{0};
  std::atomic<bool> failed{false};

  std::vector<std::thread> readers;
  const int num_readers = ReaderThreads();
  readers.reserve(static_cast<size_t>(num_readers));
  for (int r = 0; r < num_readers; ++r) {
    readers.emplace_back([&] {
      do {
        const VersionedTable::Snapshot snapshot = table.snapshot();
        const CatalogView& view = snapshot.view();
        size_t entities = 0;
        PartitionId last_id = 0;
        bool first = true;
        for (const PartitionVersion* version : view.partitions()) {
          if (!first && version->id() <= last_id) {
            failed.store(true);
            return;
          }
          first = false;
          last_id = version->id();
          if (version->entity_count() == 0) {
            failed.store(true);
            return;
          }
          entities += version->entity_count();
          // Every resident row must be self-consistent: MakeRow keeps
          // Value(id) at base+2, and updates preserve that shape.
          const RowView probe = version->row(version->entity_count() - 1);
          const AttributeId attr =
              static_cast<AttributeId>((probe.id() % 4) * 8 + 2);
          const Value* value = probe.Get(attr);
          if (value == nullptr ||
              value->as_int64() != static_cast<int64_t>(probe.id())) {
            failed.store(true);
            return;
          }
        }
        if (entities != view.entity_count()) {
          failed.store(true);
          return;
        }
        views_checked.fetch_add(1, std::memory_order_relaxed);
      } while (!done.load(std::memory_order_acquire));
    });
  }

  // Writer: batched updates that rotate entities across the four
  // attribute clusters (so many updates move partition), plus a mixed
  // delete+reinsert batch every fourth round.
  for (int round = 0; round < 30; ++round) {
    std::vector<Row> updates;
    updates.reserve(48);
    for (EntityId i = 0; i < 48; ++i) {
      const EntityId id = (static_cast<EntityId>(round) * 37 + i * 11) %
                          kEntities;
      // Re-home the entity into the cluster of (id + round), keeping the
      // id -> Value(id) invariant the readers check.
      Row row(id);
      const AttributeId base_attr =
          static_cast<AttributeId>(((id + static_cast<EntityId>(round)) % 4) *
                                   8);
      row.Set(base_attr, Value(int64_t{1}));
      row.Set(base_attr + 1, Value(int64_t{1}));
      row.Set(static_cast<AttributeId>((id % 4) * 8 + 2),
              Value(static_cast<int64_t>(id)));
      updates.push_back(std::move(row));
    }
    ASSERT_TRUE(table.UpdateBatch(std::move(updates)).ok());
    if (round % 4 == 3) {
      std::vector<Mutation> ops;
      const EntityId victim = static_cast<EntityId>(round) % kEntities;
      ops.push_back(Mutation::Delete(victim));
      ops.push_back(Mutation::Insert(MakeRow(victim)));
      ASSERT_TRUE(table.ApplyMutations(std::move(ops), nullptr).ok());
    }
  }
  done.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  EXPECT_FALSE(failed.load());
  EXPECT_GT(views_checked.load(), 0u);
  ASSERT_TRUE(table.partitioner().VerifyIntegrity().ok());
  ASSERT_TRUE(table.Insert(MakeRow(1000000)).ok());
  EXPECT_EQ(table.epochs().retired_count(), 0u);
}

TEST(MvccStressTest, GetIsSafeDuringIngest) {
  CinderellaConfig config;
  config.weight = 0.4;
  config.max_size = 16;
  config.scan_threads = 1;
  VersionedTable table(std::move(Cinderella::Create(config)).value());

  std::atomic<bool> done{false};
  std::atomic<bool> failed{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      // Point lookups race with ingest; a hit must return a coherent
      // owned copy, a miss a clean NotFound.
      for (EntityId id = 0; id < 64; id += 7) {
        const StatusOr<Row> row = table.Get(id);
        if (row.ok() && row->id() != id) {
          failed.store(true);
          return;
        }
      }
    }
  });

  for (int b = 0; b < 30; ++b) {
    std::vector<Row> rows;
    for (EntityId i = 0; i < 32; ++i) {
      rows.push_back(MakeRow(static_cast<EntityId>(b) * 32 + i));
    }
    ASSERT_TRUE(table.InsertBatch(std::move(rows)).ok());
  }
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_FALSE(failed.load());
}

}  // namespace
}  // namespace cinderella
