// Tests for snapshot save/restore: exact partitioning round-trip, value
// fidelity, workload-based mode, corruption handling, and continued
// operation after a restore.

#include <map>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/cinderella.h"
#include "core/snapshot.h"

namespace cinderella {
namespace {

Row MakeRow(EntityId id, std::initializer_list<AttributeId> attrs) {
  Row row(id);
  for (AttributeId a : attrs) row.Set(a, Value(int64_t{1}));
  return row;
}

std::set<std::set<EntityId>> Grouping(const Cinderella& c) {
  std::set<std::set<EntityId>> groups;
  c.catalog().ForEachPartition([&](const Partition& p) {
    std::set<EntityId> members;
    for (const Row& row : p.segment().rows()) members.insert(row.id());
    groups.insert(std::move(members));
  });
  return groups;
}

TEST(SnapshotTest, RoundTripsPartitioningExactly) {
  CinderellaConfig config;
  config.weight = 0.35;
  config.max_size = 17;
  config.dissolve_threshold = 0.1;
  auto original = std::move(Cinderella::Create(config)).value();
  AttributeDictionary dictionary;
  dictionary.GetOrCreate("name");
  dictionary.GetOrCreate("weight");

  Rng rng(5);
  for (EntityId id = 0; id < 300; ++id) {
    Row row(id);
    const AttributeId base = static_cast<AttributeId>(rng.Uniform(3) * 8);
    for (AttributeId a = 0; a < 4; ++a) {
      row.Set(base + a, Value(static_cast<int64_t>(rng.Uniform(100))));
    }
    ASSERT_TRUE(original->Insert(std::move(row)).ok());
  }

  std::stringstream buffer;
  ASSERT_TRUE(SaveSnapshot(*original, dictionary, buffer).ok());
  auto restored = LoadSnapshot(buffer);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  EXPECT_EQ(Grouping(*original), Grouping(*restored->partitioner));
  EXPECT_EQ(restored->partitioner->catalog().entity_count(), 300u);
  EXPECT_TRUE(restored->partitioner->VerifyIntegrity().ok());
  EXPECT_EQ(restored->partitioner->config().weight, 0.35);
  EXPECT_EQ(restored->partitioner->config().max_size, 17u);
  EXPECT_EQ(restored->partitioner->config().dissolve_threshold, 0.1);
  EXPECT_EQ(restored->dictionary->size(), 2u);
  EXPECT_EQ(restored->dictionary->Find("weight"),
            std::optional<AttributeId>(1));
}

TEST(SnapshotTest, PreservesValues) {
  CinderellaConfig config;
  auto original = std::move(Cinderella::Create(config)).value();
  AttributeDictionary dictionary;
  Row row(7);
  row.Set(0, Value(int64_t{-42}));
  row.Set(1, Value(2.718));
  row.Set(2, Value("Grimm"));
  ASSERT_TRUE(original->Insert(std::move(row)).ok());

  std::stringstream buffer;
  ASSERT_TRUE(SaveSnapshot(*original, dictionary, buffer).ok());
  auto restored = LoadSnapshot(buffer);
  ASSERT_TRUE(restored.ok());
  const auto home = restored->partitioner->catalog().FindEntity(7);
  ASSERT_TRUE(home.has_value());
  const Row* loaded =
      restored->partitioner->catalog().GetPartition(*home)->segment().Find(7);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->Get(0)->as_int64(), -42);
  EXPECT_DOUBLE_EQ(loaded->Get(1)->as_double(), 2.718);
  EXPECT_EQ(loaded->Get(2)->as_string(), "Grimm");
}

TEST(SnapshotTest, WorkloadBasedRoundTrip) {
  CinderellaConfig config;
  config.mode = SynopsisMode::kWorkloadBased;
  auto original = std::move(
      Cinderella::Create(config, {Synopsis{0, 1}, Synopsis{5}})).value();
  AttributeDictionary dictionary;
  ASSERT_TRUE(original->Insert(MakeRow(1, {0})).ok());
  ASSERT_TRUE(original->Insert(MakeRow(2, {5})).ok());

  std::stringstream buffer;
  ASSERT_TRUE(SaveSnapshot(*original, dictionary, buffer).ok());
  auto restored = LoadSnapshot(buffer);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->partitioner->config().mode,
            SynopsisMode::kWorkloadBased);
  ASSERT_EQ(restored->partitioner->workload().size(), 2u);
  EXPECT_EQ(restored->partitioner->workload()[0], (Synopsis{0, 1}));
  // A restored instance keeps rating in workload terms.
  EXPECT_EQ(restored->partitioner->ExtractSynopsis(MakeRow(9, {1})),
            Synopsis{0});
}

TEST(SnapshotTest, RestoredInstanceKeepsOperating) {
  CinderellaConfig config;
  config.weight = 0.5;
  config.max_size = 5;
  auto original = std::move(Cinderella::Create(config)).value();
  AttributeDictionary dictionary;
  for (EntityId id = 0; id < 12; ++id) {
    ASSERT_TRUE(original->Insert(MakeRow(id, {0, 1})).ok());
  }
  std::stringstream buffer;
  ASSERT_TRUE(SaveSnapshot(*original, dictionary, buffer).ok());
  auto restored = LoadSnapshot(buffer);
  ASSERT_TRUE(restored.ok());
  Cinderella& c = *restored->partitioner;
  // Inserts (incl. splits: restored partitions re-seed their starters
  // lazily), deletes and updates all still work.
  for (EntityId id = 100; id < 120; ++id) {
    ASSERT_TRUE(c.Insert(MakeRow(id, {0, 1})).ok());
  }
  ASSERT_TRUE(c.Delete(3).ok());
  ASSERT_TRUE(c.Update(MakeRow(5, {40, 41})).ok());
  EXPECT_EQ(c.catalog().entity_count(), 31u);
  c.catalog().ForEachPartition([&](const Partition& p) {
    EXPECT_LE(p.entity_count(), 5u);
    EXPECT_GT(p.entity_count(), 0u);
  });
  // Duplicate against restored content is rejected.
  EXPECT_EQ(c.Insert(MakeRow(7, {0})).code(), StatusCode::kAlreadyExists);
}

TEST(SnapshotTest, RejectsGarbageAndTruncation) {
  {
    std::stringstream buffer;
    buffer << "not a snapshot at all";
    EXPECT_FALSE(LoadSnapshot(buffer).ok());
  }
  {
    // Valid header, truncated body.
    CinderellaConfig config;
    auto original = std::move(Cinderella::Create(config)).value();
    AttributeDictionary dictionary;
    ASSERT_TRUE(original->Insert(MakeRow(1, {0, 1, 2})).ok());
    std::stringstream buffer;
    ASSERT_TRUE(SaveSnapshot(*original, dictionary, buffer).ok());
    const std::string full = buffer.str();
    std::stringstream truncated(full.substr(0, full.size() / 2));
    EXPECT_FALSE(LoadSnapshot(truncated).ok());
  }
}

TEST(SnapshotTest, FileRoundTrip) {
  CinderellaConfig config;
  auto original = std::move(Cinderella::Create(config)).value();
  AttributeDictionary dictionary;
  dictionary.GetOrCreate("alpha");
  ASSERT_TRUE(original->Insert(MakeRow(1, {0})).ok());
  const std::string path = testing::TempDir() + "/cinderella_snapshot.bin";
  ASSERT_TRUE(SaveSnapshotToFile(*original, dictionary, path).ok());
  auto restored = LoadSnapshotFromFile(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->partitioner->catalog().entity_count(), 1u);
  EXPECT_FALSE(LoadSnapshotFromFile(path + ".missing").ok());
}

TEST(SnapshotTest, RestorePartitionRejectsDuplicates) {
  CinderellaConfig config;
  auto c = std::move(Cinderella::Create(config)).value();
  std::vector<Row> rows;
  rows.push_back(MakeRow(1, {0}));
  ASSERT_TRUE(c->RestorePartition(std::move(rows)).ok());
  std::vector<Row> duplicate;
  duplicate.push_back(MakeRow(1, {2}));
  EXPECT_EQ(c->RestorePartition(std::move(duplicate)).code(),
            StatusCode::kAlreadyExists);
  EXPECT_FALSE(c->RestorePartition({}).ok());
}

}  // namespace
}  // namespace cinderella
