// Behavioral tests for the Cinderella algorithm: Algorithm 1's insert
// paths (new partition / split / normal), starter maintenance, deletes,
// updates, and the workload-based mode.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/cinderella.h"

namespace cinderella {
namespace {

Row MakeRow(EntityId id, std::initializer_list<AttributeId> attrs) {
  Row row(id);
  for (AttributeId a : attrs) row.Set(a, Value(int64_t{1}));
  return row;
}

std::unique_ptr<Cinderella> Make(double weight, uint64_t max_size,
                                 bool use_index = false) {
  CinderellaConfig config;
  config.weight = weight;
  config.max_size = max_size;
  config.use_synopsis_index = use_index;
  auto result = Cinderella::Create(config);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(CinderellaCreateTest, RejectsBadConfig) {
  CinderellaConfig config;
  config.weight = 1.5;
  EXPECT_FALSE(Cinderella::Create(config).ok());
  config.weight = 0.5;
  config.max_size = 0;
  EXPECT_FALSE(Cinderella::Create(config).ok());
}

TEST(CinderellaCreateTest, WorkloadModeNeedsWorkload) {
  CinderellaConfig config;
  config.mode = SynopsisMode::kWorkloadBased;
  EXPECT_FALSE(Cinderella::Create(config).ok());
  EXPECT_FALSE(Cinderella::Create(config, {}).ok());
  EXPECT_TRUE(Cinderella::Create(config, {Synopsis{0}}).ok());
  // And a workload is rejected in entity-based mode.
  CinderellaConfig entity_config;
  EXPECT_FALSE(Cinderella::Create(entity_config, {Synopsis{0}}).ok());
}

TEST(CinderellaTest, FirstInsertCreatesPartitionAndStarter) {
  auto c = Make(0.5, 100);
  ASSERT_TRUE(c->Insert(MakeRow(1, {0, 1})).ok());
  EXPECT_EQ(c->catalog().partition_count(), 1u);
  EXPECT_EQ(c->stats().partitions_created, 1u);
  const Partition* p = c->catalog().GetPartition(0);
  ASSERT_NE(p, nullptr);
  ASSERT_TRUE(p->starter_a().has_value());
  EXPECT_EQ(p->starter_a()->entity, 1u);
  EXPECT_FALSE(p->starter_b().has_value());
}

TEST(CinderellaTest, SecondEntityBecomesStarterB) {
  auto c = Make(0.5, 100);
  ASSERT_TRUE(c->Insert(MakeRow(1, {0, 1})).ok());
  ASSERT_TRUE(c->Insert(MakeRow(2, {0, 1, 2})).ok());
  const Partition* p = c->catalog().GetPartition(0);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->entity_count(), 2u);
  ASSERT_TRUE(p->starter_b().has_value());
  EXPECT_EQ(p->starter_b()->entity, 2u);
}

TEST(CinderellaTest, SimilarEntitiesShareAPartition) {
  auto c = Make(0.5, 100);
  ASSERT_TRUE(c->Insert(MakeRow(1, {0, 1, 2})).ok());
  ASSERT_TRUE(c->Insert(MakeRow(2, {0, 1, 2})).ok());
  ASSERT_TRUE(c->Insert(MakeRow(3, {0, 1, 3})).ok());
  EXPECT_EQ(c->catalog().partition_count(), 1u);
}

TEST(CinderellaTest, DissimilarEntityOpensNewPartition) {
  auto c = Make(0.5, 100);
  ASSERT_TRUE(c->Insert(MakeRow(1, {0, 1, 2})).ok());
  ASSERT_TRUE(c->Insert(MakeRow(2, {10, 11, 12})).ok());
  EXPECT_EQ(c->catalog().partition_count(), 2u);
  EXPECT_NE(c->catalog().FindEntity(1), c->catalog().FindEntity(2));
}

TEST(CinderellaTest, WeightZeroSeparatesAnyHeterogeneity) {
  auto c = Make(0.0, 100);
  ASSERT_TRUE(c->Insert(MakeRow(1, {0, 1})).ok());
  ASSERT_TRUE(c->Insert(MakeRow(2, {0, 1})).ok());   // Identical: joins.
  ASSERT_TRUE(c->Insert(MakeRow(3, {0, 1, 2})).ok());  // Superset: separate.
  EXPECT_EQ(c->catalog().partition_count(), 2u);
  EXPECT_EQ(c->catalog().FindEntity(1), c->catalog().FindEntity(2));
  EXPECT_NE(c->catalog().FindEntity(1), c->catalog().FindEntity(3));
}

TEST(CinderellaTest, DuplicateInsertRejected) {
  auto c = Make(0.5, 100);
  ASSERT_TRUE(c->Insert(MakeRow(1, {0})).ok());
  EXPECT_EQ(c->Insert(MakeRow(1, {1})).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(c->stats().inserts, 1u);
}

// -- Split ---------------------------------------------------------------------

TEST(CinderellaTest, SplitAtCapacity) {
  auto c = Make(0.5, 2);
  ASSERT_TRUE(c->Insert(MakeRow(1, {0, 1})).ok());
  ASSERT_TRUE(c->Insert(MakeRow(2, {0, 1, 2})).ok());
  ASSERT_TRUE(c->Insert(MakeRow(3, {0, 1})).ok());  // Triggers the split.
  EXPECT_EQ(c->stats().splits, 1u);
  EXPECT_EQ(c->catalog().partition_count(), 2u);
  EXPECT_EQ(c->catalog().entity_count(), 3u);
  // The old partition is gone; every partition respects the limit.
  c->catalog().ForEachPartition([&](const Partition& p) {
    EXPECT_LE(p.entity_count(), 2u);
    EXPECT_GE(p.entity_count(), 1u);
  });
}

TEST(CinderellaTest, SplitSeparatesDifferentialStarters) {
  auto c = Make(0.9, 4);  // High weight: everything piles up first.
  // Two camera-like and two disk-like entities.
  ASSERT_TRUE(c->Insert(MakeRow(1, {0, 1, 2})).ok());
  ASSERT_TRUE(c->Insert(MakeRow(2, {10, 11, 12})).ok());
  ASSERT_TRUE(c->Insert(MakeRow(3, {0, 1, 2, 3})).ok());
  ASSERT_TRUE(c->Insert(MakeRow(4, {10, 11, 13})).ok());
  // Force everything into one partition? With w=0.9 entity 2 may still open
  // its own partition; instead verify via a controlled same-partition load.
  auto c2 = Make(1.0, 4);  // w=1: no negative evidence, one partition.
  ASSERT_TRUE(c2->Insert(MakeRow(1, {0, 1, 2})).ok());
  ASSERT_TRUE(c2->Insert(MakeRow(2, {10, 11, 12})).ok());
  ASSERT_TRUE(c2->Insert(MakeRow(3, {0, 1, 2, 3})).ok());
  ASSERT_TRUE(c2->Insert(MakeRow(4, {10, 11, 13})).ok());
  EXPECT_EQ(c2->catalog().partition_count(), 1u);
  // Fifth entity overflows: the split starters (one camera-like, one
  // disk-like after maintenance) should pull the groups apart.
  ASSERT_TRUE(c2->Insert(MakeRow(5, {0, 1, 3})).ok());
  EXPECT_EQ(c2->stats().splits, 1u);
  EXPECT_EQ(c2->catalog().partition_count(), 2u);
  // Camera-likes together, disk-likes together.
  EXPECT_EQ(c2->catalog().FindEntity(1), c2->catalog().FindEntity(3));
  EXPECT_EQ(c2->catalog().FindEntity(1), c2->catalog().FindEntity(5));
  EXPECT_EQ(c2->catalog().FindEntity(2), c2->catalog().FindEntity(4));
  EXPECT_NE(c2->catalog().FindEntity(1), c2->catalog().FindEntity(2));
}

TEST(CinderellaTest, TriggeringEntityIsNotLostOnSplit) {
  // Regression for the paper's Algorithm 1, which drops the entity
  // (DESIGN.md deviation 1).
  auto c = Make(1.0, 3);
  for (EntityId id = 1; id <= 10; ++id) {
    ASSERT_TRUE(c->Insert(MakeRow(id, {0, 1})).ok());
    EXPECT_EQ(c->catalog().entity_count(), id);
    EXPECT_TRUE(c->catalog().FindEntity(id).has_value());
  }
}

TEST(CinderellaTest, SplitOfSingleEntityPartition) {
  // B=1 with entity measure: every second insert splits a 1-entity
  // partition; the pending entity seeds the second child.
  auto c = Make(1.0, 1);
  ASSERT_TRUE(c->Insert(MakeRow(1, {0})).ok());
  ASSERT_TRUE(c->Insert(MakeRow(2, {0})).ok());
  EXPECT_EQ(c->catalog().entity_count(), 2u);
  c->catalog().ForEachPartition([&](const Partition& p) {
    EXPECT_EQ(p.entity_count(), 1u);
  });
}

TEST(CinderellaTest, OversizedSingleRowAdmitted) {
  // Byte measure: a row larger than MAXSIZE cannot be split; it must
  // still be stored (as its own oversized partition).
  CinderellaConfig config;
  config.max_size = 30;
  config.measure = SizeMeasure::kByteSize;
  auto created = Cinderella::Create(config);
  ASSERT_TRUE(created.ok());
  auto c = std::move(created).value();
  Row big(1);
  for (AttributeId a = 0; a < 10; ++a) big.Set(a, Value(int64_t{1}));
  ASSERT_GT(big.byte_size(), 30u);
  ASSERT_TRUE(c->Insert(std::move(big)).ok());
  EXPECT_EQ(c->catalog().entity_count(), 1u);
}

// -- Delete ----------------------------------------------------------------------

TEST(CinderellaTest, DeleteRemovesEntity) {
  auto c = Make(0.5, 100);
  ASSERT_TRUE(c->Insert(MakeRow(1, {0, 1})).ok());
  ASSERT_TRUE(c->Insert(MakeRow(2, {0, 1})).ok());
  ASSERT_TRUE(c->Delete(1).ok());
  EXPECT_EQ(c->catalog().entity_count(), 1u);
  EXPECT_EQ(c->catalog().FindEntity(1), std::nullopt);
  EXPECT_EQ(c->stats().deletes, 1u);
}

TEST(CinderellaTest, DeleteMissingFails) {
  auto c = Make(0.5, 100);
  EXPECT_EQ(c->Delete(9).code(), StatusCode::kNotFound);
}

TEST(CinderellaTest, EmptyPartitionIsDropped) {
  auto c = Make(0.5, 100);
  ASSERT_TRUE(c->Insert(MakeRow(1, {0})).ok());
  ASSERT_TRUE(c->Insert(MakeRow(2, {50})).ok());  // Own partition.
  EXPECT_EQ(c->catalog().partition_count(), 2u);
  ASSERT_TRUE(c->Delete(2).ok());
  EXPECT_EQ(c->catalog().partition_count(), 1u);
  EXPECT_EQ(c->stats().partitions_dropped, 1u);
}

TEST(CinderellaTest, DeleteShrinksPartitionSynopsis) {
  auto c = Make(1.0, 100);
  ASSERT_TRUE(c->Insert(MakeRow(1, {0, 1})).ok());
  ASSERT_TRUE(c->Insert(MakeRow(2, {0, 2})).ok());
  ASSERT_TRUE(c->Delete(2).ok());
  const Partition* p =
      c->catalog().GetPartition(*c->catalog().FindEntity(1));
  EXPECT_EQ(p->attribute_synopsis(), (Synopsis{0, 1}));
}

TEST(CinderellaTest, SplitWorksAfterStarterDeleted) {
  // Delete a starter, then force a split: starters must be re-seeded.
  auto c = Make(1.0, 3);
  ASSERT_TRUE(c->Insert(MakeRow(1, {0, 1})).ok());   // starter A
  ASSERT_TRUE(c->Insert(MakeRow(2, {5, 6})).ok());   // starter B
  ASSERT_TRUE(c->Insert(MakeRow(3, {0, 1})).ok());
  ASSERT_TRUE(c->Delete(1).ok());                    // Starter A gone.
  ASSERT_TRUE(c->Insert(MakeRow(4, {5, 6})).ok());
  ASSERT_TRUE(c->Insert(MakeRow(5, {0, 1})).ok());   // Fills to 4 > 3: split.
  EXPECT_GE(c->stats().splits, 1u);
  EXPECT_EQ(c->catalog().entity_count(), 4u);
  for (EntityId id : {2, 3, 4, 5}) {
    EXPECT_TRUE(c->catalog().FindEntity(id).has_value()) << id;
  }
}

// -- Update ----------------------------------------------------------------------

TEST(CinderellaTest, UpdateInPlaceKeepsPartition) {
  auto c = Make(0.5, 100);
  ASSERT_TRUE(c->Insert(MakeRow(1, {0, 1, 2})).ok());
  ASSERT_TRUE(c->Insert(MakeRow(2, {0, 1, 2})).ok());
  const auto home = c->catalog().FindEntity(1);
  ASSERT_TRUE(c->Update(MakeRow(1, {0, 1, 3})).ok());
  EXPECT_EQ(c->catalog().FindEntity(1), home);
  EXPECT_EQ(c->stats().updates, 1u);
  EXPECT_EQ(c->stats().updates_moved, 0u);
  // The stored row reflects the update.
  const Partition* p = c->catalog().GetPartition(*home);
  EXPECT_TRUE(p->segment().Find(1)->Has(3));
  EXPECT_FALSE(p->segment().Find(1)->Has(2));
  // The partition synopsis now includes 3.
  EXPECT_TRUE(p->attribute_synopsis().Contains(3));
}

TEST(CinderellaTest, UpdateMovesToBetterPartition) {
  auto c = Make(0.3, 100);
  // Two schema groups.
  ASSERT_TRUE(c->Insert(MakeRow(1, {0, 1, 2})).ok());
  ASSERT_TRUE(c->Insert(MakeRow(2, {0, 1, 2})).ok());
  ASSERT_TRUE(c->Insert(MakeRow(3, {10, 11, 12})).ok());
  ASSERT_TRUE(c->Insert(MakeRow(4, {10, 11, 12})).ok());
  ASSERT_EQ(c->catalog().partition_count(), 2u);
  const auto group_b = c->catalog().FindEntity(3);
  // Entity 1 mutates into the second schema: it must move.
  ASSERT_TRUE(c->Update(MakeRow(1, {10, 11, 12})).ok());
  EXPECT_EQ(c->catalog().FindEntity(1), group_b);
  EXPECT_EQ(c->stats().updates_moved, 1u);
}

TEST(CinderellaTest, UpdateToAlienSchemaCreatesPartition) {
  auto c = Make(0.3, 100);
  ASSERT_TRUE(c->Insert(MakeRow(1, {0, 1})).ok());
  ASSERT_TRUE(c->Insert(MakeRow(2, {0, 1})).ok());
  ASSERT_TRUE(c->Update(MakeRow(1, {40, 41})).ok());
  EXPECT_EQ(c->catalog().partition_count(), 2u);
  EXPECT_NE(c->catalog().FindEntity(1), c->catalog().FindEntity(2));
}

TEST(CinderellaTest, UpdateMissingFails) {
  auto c = Make(0.5, 100);
  EXPECT_EQ(c->Update(MakeRow(3, {0})).code(), StatusCode::kNotFound);
}

TEST(CinderellaTest, UpdateOfSoleEntityDropsNothing) {
  auto c = Make(0.5, 100);
  ASSERT_TRUE(c->Insert(MakeRow(1, {0, 1})).ok());
  ASSERT_TRUE(c->Update(MakeRow(1, {0, 1, 2})).ok());
  EXPECT_EQ(c->catalog().entity_count(), 1u);
  EXPECT_EQ(c->catalog().partition_count(), 1u);
  auto row = c->catalog()
                 .GetPartition(*c->catalog().FindEntity(1))
                 ->segment()
                 .Find(1);
  EXPECT_EQ(row->attribute_count(), 3u);
}

// -- Dissolution (extension) -------------------------------------------------------

TEST(CinderellaDissolveTest, ConfigValidatesThreshold) {
  CinderellaConfig config;
  config.dissolve_threshold = 0.6;
  EXPECT_FALSE(config.Validate().ok());
  config.dissolve_threshold = 0.5;
  EXPECT_TRUE(config.Validate().ok());
  config.dissolve_threshold = -0.1;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(CinderellaDissolveTest, DeleteBelowThresholdReHomesEntities) {
  CinderellaConfig config;
  config.weight = 0.5;
  config.max_size = 10;
  config.dissolve_threshold = 0.3;  // Dissolve below 3 entities.
  auto c = std::move(Cinderella::Create(config)).value();
  for (EntityId id = 0; id < 10; ++id) {
    ASSERT_TRUE(c->Insert(MakeRow(id, {0, 1})).ok());
  }
  const PartitionId original = *c->catalog().FindEntity(0);
  // Deleting down to 3 entities keeps the partition (3 >= 0.3*10)...
  for (EntityId id = 0; id < 7; ++id) {
    ASSERT_TRUE(c->Delete(id).ok());
  }
  EXPECT_EQ(c->stats().partitions_dissolved, 0u);
  EXPECT_EQ(c->catalog().FindEntity(9), std::optional<PartitionId>(original));
  // ...one more delete drops it below the threshold: the partition is
  // dissolved and the two survivors are re-homed (here: a fresh
  // partition, since no other target exists).
  ASSERT_TRUE(c->Delete(7).ok());
  EXPECT_EQ(c->stats().partitions_dissolved, 1u);
  EXPECT_EQ(c->stats().entities_reinserted, 2u);
  EXPECT_EQ(c->catalog().GetPartition(original), nullptr);
  EXPECT_EQ(c->catalog().entity_count(), 2u);
  EXPECT_TRUE(c->catalog().FindEntity(8).has_value());
  EXPECT_TRUE(c->catalog().FindEntity(9).has_value());
  EXPECT_EQ(c->catalog().FindEntity(8), c->catalog().FindEntity(9));
}

TEST(CinderellaDissolveTest, DisabledByDefault) {
  auto c = Make(0.5, 10);
  for (EntityId id = 0; id < 10; ++id) {
    ASSERT_TRUE(c->Insert(MakeRow(id, {0, 1})).ok());
  }
  for (EntityId id = 0; id < 9; ++id) {
    ASSERT_TRUE(c->Delete(id).ok());
  }
  // Paper behaviour: the single-entity partition survives.
  EXPECT_EQ(c->stats().partitions_dissolved, 0u);
  EXPECT_EQ(c->catalog().partition_count(), 1u);
}

TEST(CinderellaDissolveTest, ChurnKeepsPartitionsFilled) {
  CinderellaConfig with;
  with.weight = 0.5;
  with.max_size = 50;
  with.dissolve_threshold = 0.25;
  CinderellaConfig without = with;
  without.dissolve_threshold = 0.0;
  auto a = std::move(Cinderella::Create(with)).value();
  auto b = std::move(Cinderella::Create(without)).value();

  Rng rng(4242);
  EntityId next = 0;
  std::vector<EntityId> live;
  for (int op = 0; op < 4000; ++op) {
    if (rng.Bernoulli(0.55) || live.empty()) {
      Row row(next++);
      const AttributeId base =
          static_cast<AttributeId>(rng.Uniform(4) * 10);
      for (AttributeId k = 0; k < 4; ++k) {
        row.Set(base + k, Value(int64_t{1}));
      }
      live.push_back(row.id());
      Row copy = row;
      ASSERT_TRUE(a->Insert(std::move(copy)).ok());
      ASSERT_TRUE(b->Insert(std::move(row)).ok());
    } else {
      const size_t pick = static_cast<size_t>(rng.Uniform(live.size()));
      const EntityId victim = live[pick];
      live[pick] = live.back();
      live.pop_back();
      ASSERT_TRUE(a->Delete(victim).ok());
      ASSERT_TRUE(b->Delete(victim).ok());
    }
  }
  EXPECT_EQ(a->catalog().entity_count(), b->catalog().entity_count());
  EXPECT_GT(a->stats().partitions_dissolved, 0u);
  // Dissolution keeps the catalog at most as fragmented.
  EXPECT_LE(a->catalog().partition_count(), b->catalog().partition_count());
}

// -- Reorganize (extension) --------------------------------------------------------

TEST(CinderellaReorganizeTest, RepairsAdversarialOrder) {
  // Adversarial arrival: strictly alternating schema families under a
  // tight capacity fragments the catalog. Reorganize() consolidates.
  CinderellaConfig config;
  config.weight = 0.6;  // Tolerant: mixed partitions form readily.
  config.max_size = 8;
  auto c = std::move(Cinderella::Create(config)).value();
  for (EntityId id = 0; id < 160; ++id) {
    const AttributeId base = static_cast<AttributeId>((id % 4) * 10);
    ASSERT_TRUE(c->Insert(MakeRow(id, {base, base + 1, base + 2})).ok());
  }
  // Count mixed partitions (more than one family).
  auto mixed_count = [&] {
    size_t mixed = 0;
    c->catalog().ForEachPartition([&](const Partition& p) {
      mixed += p.attribute_synopsis().Count() > 3;
    });
    return mixed;
  };
  const size_t mixed_before = mixed_count();
  ASSERT_TRUE(c->Reorganize().ok());
  EXPECT_LE(mixed_count(), mixed_before);
  // Contents intact.
  EXPECT_EQ(c->catalog().entity_count(), 160u);
  for (EntityId id = 0; id < 160; ++id) {
    ASSERT_TRUE(c->catalog().FindEntity(id).has_value()) << id;
  }
  // Invariants hold after the pass.
  c->catalog().ForEachPartition([&](const Partition& p) {
    EXPECT_GT(p.entity_count(), 0u);
    EXPECT_LE(p.entity_count(), 8u);
  });
}

TEST(CinderellaReorganizeTest, EmptyTableIsNoop) {
  auto c = Make(0.5, 10);
  ASSERT_TRUE(c->Reorganize().ok());
  EXPECT_EQ(c->catalog().partition_count(), 0u);
}

TEST(CinderellaReorganizeTest, IdempotentOnCleanPartitioning) {
  auto c = Make(0.3, 100);
  for (EntityId id = 0; id < 60; ++id) {
    const AttributeId base = static_cast<AttributeId>((id % 2) * 10);
    ASSERT_TRUE(c->Insert(MakeRow(id, {base, base + 1})).ok());
  }
  ASSERT_EQ(c->catalog().partition_count(), 2u);
  ASSERT_TRUE(c->Reorganize().ok());
  EXPECT_EQ(c->catalog().partition_count(), 2u);
  EXPECT_EQ(c->catalog().FindEntity(0), c->catalog().FindEntity(2));
  EXPECT_NE(c->catalog().FindEntity(0), c->catalog().FindEntity(1));
}

// -- Workload-based mode -----------------------------------------------------------

TEST(CinderellaWorkloadTest, GroupsByQueryRelevance) {
  // Two queries: q0 over attrs {0,1}, q1 over attrs {10,11}. Entities
  // relevant to the same queries share partitions even when their raw
  // attribute sets differ.
  CinderellaConfig config;
  config.mode = SynopsisMode::kWorkloadBased;
  config.weight = 0.5;
  config.max_size = 100;
  auto created =
      Cinderella::Create(config, {Synopsis{0, 1}, Synopsis{10, 11}});
  ASSERT_TRUE(created.ok());
  auto c = std::move(created).value();

  ASSERT_TRUE(c->Insert(MakeRow(1, {0, 5})).ok());    // Relevant to q0.
  ASSERT_TRUE(c->Insert(MakeRow(2, {1, 7})).ok());    // Relevant to q0.
  ASSERT_TRUE(c->Insert(MakeRow(3, {10, 20})).ok());  // Relevant to q1.
  ASSERT_TRUE(c->Insert(MakeRow(4, {11, 30})).ok());  // Relevant to q1.
  EXPECT_EQ(c->catalog().FindEntity(1), c->catalog().FindEntity(2));
  EXPECT_EQ(c->catalog().FindEntity(3), c->catalog().FindEntity(4));
  EXPECT_NE(c->catalog().FindEntity(1), c->catalog().FindEntity(3));
}

TEST(CinderellaWorkloadTest, ExtractSynopsisUsesQueryIds) {
  CinderellaConfig config;
  config.mode = SynopsisMode::kWorkloadBased;
  auto created =
      Cinderella::Create(config, {Synopsis{0}, Synopsis{1}, Synopsis{2}});
  ASSERT_TRUE(created.ok());
  auto c = std::move(created).value();
  const Synopsis s = c->ExtractSynopsis(MakeRow(1, {1, 2}));
  EXPECT_EQ(s, (Synopsis{1, 2}));  // Relevant to queries 1 and 2.
}

// -- Misc ------------------------------------------------------------------------

TEST(CinderellaTest, NameDescribesConfig) {
  auto c = Make(0.25, 500);
  EXPECT_EQ(c->name(), "cinderella(w=0.25,B=500,entities)");
}

TEST(CinderellaTest, StatsCountRatings) {
  auto c = Make(0.5, 100);
  ASSERT_TRUE(c->Insert(MakeRow(1, {0})).ok());
  ASSERT_TRUE(c->Insert(MakeRow(2, {0})).ok());
  // Second insert rated exactly the one existing partition.
  EXPECT_EQ(c->stats().partitions_rated, 1u);
}

TEST(CinderellaTest, DeterministicAcrossRuns) {
  auto run = [] {
    auto c = Make(0.4, 5);
    for (EntityId id = 0; id < 200; ++id) {
      Row row(id);
      // Three interleaved schema families.
      const AttributeId base = static_cast<AttributeId>((id % 3) * 10);
      for (AttributeId a = 0; a < 4; ++a) {
        row.Set(base + a + (id % 2), Value(int64_t{1}));
      }
      EXPECT_TRUE(c->Insert(std::move(row)).ok());
    }
    std::vector<std::vector<EntityId>> groups;
    c->catalog().ForEachPartition([&](const Partition& p) {
      std::vector<EntityId> members;
      for (const Row& r : p.segment().rows()) members.push_back(r.id());
      std::sort(members.begin(), members.end());
      groups.push_back(std::move(members));
    });
    return groups;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace cinderella
