// Thread-sanitizer stress for the background reorganizer: the daemon
// repartitions at a tight interval while reader threads execute
// tracker-observed queries on pinned snapshots and a writer thread
// inserts and deletes batches. Verifies freedom from data races (under
// TSan), snapshot self-consistency throughout, and that exactly the
// surviving rows remain at the end.

#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/cinderella.h"
#include "mvcc/partition_version.h"
#include "mvcc/versioned_table.h"
#include "query/executor.h"
#include "query/query.h"
#include "tuner/reorganizer.h"
#include "tuner/workload_tracker.h"

namespace cinderella {
namespace {

Row MakeRow(EntityId id) {
  Row row(id);
  const AttributeId base = static_cast<AttributeId>((id % 4) * 8);
  for (AttributeId a : {base, base + 1, base + 2}) {
    row.Set(a, Value(static_cast<int64_t>(id)));
  }
  return row;
}

std::unique_ptr<Cinderella> MakePartitioner() {
  CinderellaConfig config;
  config.weight = 0.4;
  config.max_size = 16;
  config.scan_threads = 1;
  return std::move(Cinderella::Create(config)).value();
}

std::set<EntityId> ResidentEntities(const CatalogView& view) {
  std::set<EntityId> ids;
  view.ForEachPartition([&](const PartitionVersion& version) {
    version.ForEachRow([&](const RowView& row) { ids.insert(row.id()); });
  });
  return ids;
}

TEST(TunerStressTest, DaemonRepartitionsUnderReadersAndWriters) {
  VersionedTable table(MakePartitioner());
  constexpr EntityId kSeedRows = 128;
  {
    std::vector<Row> rows;
    for (EntityId id = 0; id < kSeedRows; ++id) rows.push_back(MakeRow(id));
    ASSERT_TRUE(table.InsertBatch(std::move(rows)).ok());
  }

  WorkloadTracker tracker;
  ReorganizerOptions options;
  options.interval_ms = 1;  // Plan as fast as possible.
  options.move_budget = 64;
  options.cost.min_net_gain = 1.0;
  Reorganizer reorganizer(&table, &tracker, options);
  reorganizer.Start();

  constexpr int kReaders = 3;
  constexpr int kReaderIters = 60;
  constexpr int kWriterBatches = 24;
  constexpr size_t kBatch = 16;
  std::atomic<bool> failed{false};

  std::vector<std::thread> threads;
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&table, &tracker, &failed, r] {
      for (int i = 0; i < kReaderIters; ++i) {
        const VersionedTable::Snapshot snapshot = table.snapshot();
        QueryExecutor executor(snapshot.view(), /*scan_threads=*/2);
        executor.set_observer(&tracker);
        const AttributeId attr =
            static_cast<AttributeId>(((i + r) % 4) * 8);
        const QueryResult result = executor.Execute(Query(Synopsis{attr}));
        // Each pinned view must stay internally consistent however much
        // the daemon reorganized since.
        if (result.metrics.rows_scanned < result.metrics.rows_matched) {
          failed.store(true);
        }
      }
    });
  }

  // One writer appends fresh ids and deletes some of its own older
  // batches, so the daemon keeps planning against a moving table.
  std::set<EntityId> deleted;
  threads.emplace_back([&table, &deleted, &failed] {
    EntityId next = kSeedRows;
    for (int b = 0; b < kWriterBatches; ++b) {
      std::vector<Row> rows;
      for (size_t i = 0; i < kBatch; ++i) {
        rows.push_back(MakeRow(next + static_cast<EntityId>(i)));
      }
      if (!table.InsertBatch(std::move(rows)).ok()) failed.store(true);
      if (b % 3 == 2) {
        // Delete the batch inserted two rounds ago (definitely present:
        // RepartitionEntities preserves ids, it never removes them).
        const EntityId victim = next - 2 * kBatch;
        std::vector<EntityId> ids;
        for (size_t i = 0; i < kBatch; ++i) {
          ids.push_back(victim + static_cast<EntityId>(i));
        }
        if (!table.DeleteBatch(ids).ok()) {
          failed.store(true);
        } else {
          deleted.insert(ids.begin(), ids.end());
        }
      }
      next += static_cast<EntityId>(kBatch);
    }
  });

  for (std::thread& thread : threads) thread.join();
  reorganizer.Stop();
  EXPECT_FALSE(failed.load());

  // The daemon actually ran.
  const TunerStats stats = reorganizer.stats();
  EXPECT_GT(stats.ticks, 0u);

  // Exactly the surviving ids remain, each with its full payload.
  std::set<EntityId> expected;
  const EntityId total = kSeedRows + kWriterBatches * kBatch;
  for (EntityId id = 0; id < total; ++id) {
    if (deleted.count(id) == 0) expected.insert(id);
  }
  EXPECT_EQ(ResidentEntities(table.snapshot().view()), expected);
  ASSERT_TRUE(table.partitioner().VerifyIntegrity().ok());
  StatusOr<Row> row = table.Get(*expected.begin());
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->cells().size(), 3u);
}

// A tighter deterministic drain/reinsert loop without the daemon clock:
// repeated synchronous ticks against live foreground traffic must never
// lose or duplicate a row.
TEST(TunerStressTest, SynchronousTicksPreserveRowsUnderTraffic) {
  VersionedTable table(MakePartitioner());
  {
    std::vector<Row> rows;
    for (EntityId id = 0; id < 96; ++id) rows.push_back(MakeRow(id));
    ASSERT_TRUE(table.InsertBatch(std::move(rows)).ok());
  }
  WorkloadTracker tracker;
  ReorganizerOptions options;
  options.decay = 0.9;
  Reorganizer reorganizer(&table, &tracker, options);

  const std::set<EntityId> expected = ResidentEntities(table.snapshot().view());
  for (int round = 0; round < 8; ++round) {
    // Query traffic between ticks keeps the tracker hot.
    const VersionedTable::Snapshot snapshot = table.snapshot();
    QueryExecutor executor(snapshot.view());
    executor.set_observer(&tracker);
    executor.Execute(Query(Synopsis{static_cast<AttributeId>((round % 4) * 8)}));
    reorganizer.TickForTesting();
    EXPECT_EQ(ResidentEntities(table.snapshot().view()), expected)
        << "round " << round;
  }
  ASSERT_TRUE(table.partitioner().VerifyIntegrity().ok());
}

}  // namespace
}  // namespace cinderella
