// Tests for PartitionCatalog and SynopsisIndex.

#include <gtest/gtest.h>

#include "core/catalog.h"
#include "core/synopsis_index.h"

namespace cinderella {
namespace {

Row MakeRow(EntityId id, std::initializer_list<AttributeId> attrs) {
  Row row(id);
  for (AttributeId a : attrs) row.Set(a, Value(int64_t{1}));
  return row;
}

TEST(CatalogTest, CreateAssignsSequentialIds) {
  PartitionCatalog catalog;
  EXPECT_EQ(catalog.CreatePartition().id(), 0u);
  EXPECT_EQ(catalog.CreatePartition().id(), 1u);
  EXPECT_EQ(catalog.partition_count(), 2u);
}

TEST(CatalogTest, DropRemovesAndNeverReusesIds) {
  PartitionCatalog catalog;
  catalog.CreatePartition();
  catalog.CreatePartition();
  ASSERT_TRUE(catalog.DropPartition(0).ok());
  EXPECT_EQ(catalog.partition_count(), 1u);
  EXPECT_EQ(catalog.GetPartition(0), nullptr);
  EXPECT_EQ(catalog.CreatePartition().id(), 2u);  // Id 0 not reused.
}

TEST(CatalogTest, DropFailsForMissingOrNonEmpty) {
  PartitionCatalog catalog;
  Partition& p = catalog.CreatePartition();
  const PartitionId id = p.id();
  EXPECT_EQ(catalog.DropPartition(7).code(), StatusCode::kNotFound);
  ASSERT_TRUE(p.AddRow(MakeRow(1, {0}), Synopsis{0}).ok());
  EXPECT_EQ(catalog.DropPartition(id).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(p.RemoveRow(1, Synopsis{0}).ok());
  EXPECT_TRUE(catalog.DropPartition(id).ok());
  // `p` is destroyed now; only the id may be used.
  EXPECT_EQ(catalog.DropPartition(id).code(), StatusCode::kNotFound);
}

TEST(CatalogTest, ForEachSkipsTombstones) {
  PartitionCatalog catalog;
  catalog.CreatePartition();
  catalog.CreatePartition();
  catalog.CreatePartition();
  ASSERT_TRUE(catalog.DropPartition(1).ok());
  std::vector<PartitionId> seen;
  catalog.ForEachPartition([&](Partition& p) { seen.push_back(p.id()); });
  EXPECT_EQ(seen, (std::vector<PartitionId>{0, 2}));
  EXPECT_EQ(catalog.LivePartitionIds(), (std::vector<PartitionId>{0, 2}));
}

TEST(CatalogTest, EntityBindings) {
  PartitionCatalog catalog;
  catalog.CreatePartition();
  catalog.CreatePartition();
  catalog.BindEntity(10, 0);
  catalog.BindEntity(11, 1);
  EXPECT_EQ(catalog.FindEntity(10), std::optional<PartitionId>(0));
  EXPECT_EQ(catalog.entity_count(), 2u);
  catalog.BindEntity(10, 1);  // Rebind (move).
  EXPECT_EQ(catalog.FindEntity(10), std::optional<PartitionId>(1));
  EXPECT_EQ(catalog.entity_count(), 2u);
  catalog.UnbindEntity(10);
  EXPECT_EQ(catalog.FindEntity(10), std::nullopt);
  EXPECT_EQ(catalog.entity_count(), 1u);
}

TEST(CatalogTest, SeparateRatingFlagPropagates) {
  PartitionCatalog catalog(/*separate_rating_synopsis=*/true);
  Partition& p = catalog.CreatePartition();
  ASSERT_TRUE(p.AddRow(MakeRow(1, {0}), Synopsis{9}).ok());
  EXPECT_EQ(p.rating_synopsis(), Synopsis{9});
  EXPECT_TRUE(catalog.separate_rating_synopsis());
}

// -- SynopsisIndex ------------------------------------------------------------

TEST(SynopsisIndexTest, CollectsOverlappingPartitions) {
  SynopsisIndex index;
  index.AddPosting(1, 0);
  index.AddPosting(2, 0);
  index.AddPosting(2, 1);
  index.AddPosting(3, 2);

  std::vector<PartitionId> candidates;
  index.CollectCandidates(Synopsis{2}, &candidates);
  std::sort(candidates.begin(), candidates.end());
  EXPECT_EQ(candidates, (std::vector<PartitionId>{0, 1}));

  candidates.clear();
  index.CollectCandidates(Synopsis{1, 3}, &candidates);
  std::sort(candidates.begin(), candidates.end());
  EXPECT_EQ(candidates, (std::vector<PartitionId>{0, 2}));
}

TEST(SynopsisIndexTest, DeduplicatesCandidates) {
  SynopsisIndex index;
  index.AddPosting(1, 0);
  index.AddPosting(2, 0);
  std::vector<PartitionId> candidates;
  index.CollectCandidates(Synopsis{1, 2}, &candidates);
  EXPECT_EQ(candidates.size(), 1u);
}

TEST(SynopsisIndexTest, RemovePostingHidesPartition) {
  SynopsisIndex index;
  index.AddPosting(1, 0);
  index.AddPosting(1, 1);
  index.RemovePosting(1, 0);
  std::vector<PartitionId> candidates;
  index.CollectCandidates(Synopsis{1}, &candidates);
  EXPECT_EQ(candidates, (std::vector<PartitionId>{1}));
  EXPECT_EQ(index.live_posting_count(), 1u);
}

TEST(SynopsisIndexTest, CompactionPreservesLivePostings) {
  SynopsisIndex index;
  for (PartitionId p = 0; p < 100; ++p) index.AddPosting(5, p);
  for (PartitionId p = 0; p < 99; ++p) index.RemovePosting(5, p);
  std::vector<PartitionId> candidates;
  index.CollectCandidates(Synopsis{5}, &candidates);
  EXPECT_EQ(candidates, (std::vector<PartitionId>{99}));
}

TEST(SynopsisIndexTest, UnknownIdsYieldNoCandidates) {
  SynopsisIndex index;
  index.AddPosting(1, 0);
  std::vector<PartitionId> candidates;
  index.CollectCandidates(Synopsis{500}, &candidates);
  EXPECT_TRUE(candidates.empty());
}

TEST(SynopsisIndexTest, ReAddAfterRemove) {
  SynopsisIndex index;
  index.AddPosting(1, 0);
  index.RemovePosting(1, 0);
  index.AddPosting(1, 0);
  std::vector<PartitionId> candidates;
  index.CollectCandidates(Synopsis{1}, &candidates);
  EXPECT_EQ(candidates, (std::vector<PartitionId>{0}));
}

}  // namespace
}  // namespace cinderella
