// Tests for the operation journal and the durable table: round-trips,
// deterministic replay, torn-tail crash recovery, checkpointing, and
// dictionary persistence.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/cinderella.h"
#include "io/durable_table.h"
#include "io/journal.h"

namespace cinderella {
namespace {

Row MakeRow(EntityId id, std::initializer_list<AttributeId> attrs) {
  Row row(id);
  for (AttributeId a : attrs) row.Set(a, Value(int64_t{1}));
  return row;
}

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

std::string FreshDir(const char* name) {
  const std::string dir = TempPath(name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::set<std::set<EntityId>> Grouping(const Cinderella& c) {
  std::set<std::set<EntityId>> groups;
  c.catalog().ForEachPartition([&](const Partition& p) {
    std::set<EntityId> members;
    for (const Row& row : p.segment().rows()) members.insert(row.id());
    groups.insert(std::move(members));
  });
  return groups;
}

// -- Journal ---------------------------------------------------------------------

TEST(JournalTest, WriteReadRoundTrip) {
  const std::string path = TempPath("journal_roundtrip.log");
  {
    auto writer = JournalWriter::Open(path, /*truncate=*/true);
    ASSERT_TRUE(writer.ok());
    Row row(7);
    row.Set(1, Value(int64_t{5}));
    row.Set(2, Value("shoe"));
    ASSERT_TRUE((*writer)->LogInsert(row).ok());
    row.Set(3, Value(1.5));
    ASSERT_TRUE((*writer)->LogUpdate(row).ok());
    ASSERT_TRUE((*writer)->LogDelete(7).ok());
    ASSERT_TRUE((*writer)->LogAttribute(4, "slipper").ok());
    ASSERT_TRUE((*writer)->Sync().ok());
    EXPECT_EQ((*writer)->entries_written(), 4u);
  }
  auto reader = JournalReader::Open(path);
  ASSERT_TRUE(reader.ok());
  JournalEntry entry;

  ASSERT_TRUE(*(*reader)->Next(&entry));
  EXPECT_EQ(entry.kind, JournalEntry::Kind::kInsert);
  EXPECT_EQ(entry.row.id(), 7u);
  EXPECT_EQ(entry.row.Get(2)->as_string(), "shoe");

  ASSERT_TRUE(*(*reader)->Next(&entry));
  EXPECT_EQ(entry.kind, JournalEntry::Kind::kUpdate);
  EXPECT_DOUBLE_EQ(entry.row.Get(3)->as_double(), 1.5);

  ASSERT_TRUE(*(*reader)->Next(&entry));
  EXPECT_EQ(entry.kind, JournalEntry::Kind::kDelete);
  EXPECT_EQ(entry.entity, 7u);

  ASSERT_TRUE(*(*reader)->Next(&entry));
  EXPECT_EQ(entry.kind, JournalEntry::Kind::kAttribute);
  EXPECT_EQ(entry.attribute, 4u);
  EXPECT_EQ(entry.name, "slipper");

  EXPECT_FALSE(*(*reader)->Next(&entry));  // Clean EOF.
  EXPECT_FALSE((*reader)->torn_tail());
}

TEST(JournalTest, ReplayReproducesExactPartitioning) {
  const std::string path = TempPath("journal_replay.log");
  CinderellaConfig config;
  config.weight = 0.4;
  config.max_size = 10;
  auto original = std::move(Cinderella::Create(config)).value();
  {
    auto writer = JournalWriter::Open(path, true);
    ASSERT_TRUE(writer.ok());
    Rng rng(3);
    for (EntityId id = 0; id < 200; ++id) {
      Row row(id);
      const AttributeId base = static_cast<AttributeId>(rng.Uniform(3) * 10);
      for (AttributeId a = 0; a < 3; ++a) {
        row.Set(base + a, Value(int64_t{1}));
      }
      ASSERT_TRUE((*writer)->LogInsert(row).ok());
      ASSERT_TRUE(original->Insert(std::move(row)).ok());
    }
    for (EntityId id = 0; id < 50; ++id) {
      ASSERT_TRUE((*writer)->LogDelete(id).ok());
      ASSERT_TRUE(original->Delete(id).ok());
    }
  }
  auto replayed = std::move(Cinderella::Create(config)).value();
  auto applied = ReplayJournal(path, replayed.get());
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(*applied, 250u);
  // Determinism: identical co-location, not just identical contents.
  EXPECT_EQ(Grouping(*original), Grouping(*replayed));
}

TEST(JournalTest, MissingFileIsEmptyJournal) {
  auto c = std::move(Cinderella::Create(CinderellaConfig{})).value();
  auto applied = ReplayJournal(TempPath("never_written.log"), c.get());
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(*applied, 0u);
}

TEST(JournalTest, TornTailDetected) {
  const std::string path = TempPath("journal_torn.log");
  {
    auto writer = JournalWriter::Open(path, true);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->LogInsert(MakeRow(1, {0, 1})).ok());
    ASSERT_TRUE((*writer)->LogInsert(MakeRow(2, {0, 1})).ok());
  }
  // Chop off the last few bytes (simulated crash mid-append).
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  ASSERT_FALSE(ec);
  std::filesystem::resize_file(path, size - 5, ec);
  ASSERT_FALSE(ec);

  auto reader = JournalReader::Open(path);
  ASSERT_TRUE(reader.ok());
  JournalEntry entry;
  ASSERT_TRUE(*(*reader)->Next(&entry));
  EXPECT_EQ(entry.row.id(), 1u);
  EXPECT_FALSE(*(*reader)->Next(&entry));
  EXPECT_TRUE((*reader)->torn_tail());
}

// -- DurableTable ------------------------------------------------------------------

TEST(DurableTableTest, SurvivesReopenWithoutCheckpoint) {
  const std::string dir = FreshDir("durable_nockpt");
  DurableTable::Options options;
  options.directory = dir;
  options.config.weight = 0.3;
  options.config.max_size = 100;
  {
    auto table = DurableTable::Open(options);
    ASSERT_TRUE(table.ok()) << table.status().ToString();
    ASSERT_TRUE((*table)
                    ->Insert(1, {{"name", Value("Canon")},
                                 {"aperture", Value(2.0)}})
                    .ok());
    ASSERT_TRUE((*table)
                    ->Insert(2, {{"name", Value("WD")},
                                 {"rotation", Value(int64_t{7200})}})
                    .ok());
    ASSERT_TRUE((*table)->Delete(2).ok());
    // No checkpoint: recovery must come purely from the journal.
  }
  auto reopened = DurableTable::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->replayed_on_open(), 6u);  // 3 attrs + 3 ops.
  EXPECT_EQ((*reopened)->table().entity_count(), 1u);
  // Dictionary ids survived: "aperture" resolves and the row has it.
  auto row = (*reopened)->table().Get(1);
  ASSERT_TRUE(row.ok());
  const auto aperture = (*reopened)->table().dictionary().Find("aperture");
  ASSERT_TRUE(aperture.has_value());
  EXPECT_TRUE(row->Has(*aperture));
}

TEST(DurableTableTest, CheckpointTruncatesJournal) {
  const std::string dir = FreshDir("durable_ckpt");
  DurableTable::Options options;
  options.directory = dir;
  {
    auto table = DurableTable::Open(options);
    ASSERT_TRUE(table.ok());
    for (EntityId id = 0; id < 20; ++id) {
      ASSERT_TRUE((*table)->InsertRow(MakeRow(id, {0, 1})).ok());
    }
    ASSERT_TRUE((*table)->Checkpoint().ok());
    // Post-checkpoint operations land in the fresh journal.
    ASSERT_TRUE((*table)->InsertRow(MakeRow(100, {0, 1})).ok());
  }
  auto reopened = DurableTable::Open(options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->replayed_on_open(), 1u);  // Only the tail op.
  EXPECT_EQ((*reopened)->table().entity_count(), 21u);
}

TEST(DurableTableTest, RecoversFromTornTail) {
  const std::string dir = FreshDir("durable_torn");
  DurableTable::Options options;
  options.directory = dir;
  {
    auto table = DurableTable::Open(options);
    ASSERT_TRUE(table.ok());
    for (EntityId id = 0; id < 10; ++id) {
      ASSERT_TRUE((*table)->InsertRow(MakeRow(id, {0, 1})).ok());
    }
  }
  // Tear the journal.
  const std::string journal = dir + "/journal.log";
  std::error_code ec;
  const auto size = std::filesystem::file_size(journal, ec);
  ASSERT_FALSE(ec);
  std::filesystem::resize_file(journal, size - 3, ec);
  ASSERT_FALSE(ec);

  auto recovered = DurableTable::Open(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE((*recovered)->recovered_from_torn_tail());
  // The torn final insert is lost; everything before it survived, and the
  // automatic checkpoint cleaned the journal.
  EXPECT_EQ((*recovered)->table().entity_count(), 9u);
  auto reopened = DurableTable::Open(options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_FALSE((*reopened)->recovered_from_torn_tail());
  EXPECT_EQ((*reopened)->table().entity_count(), 9u);
}

TEST(DurableTableTest, RecoveryReproducesPartitioning) {
  const std::string dir = FreshDir("durable_partitioning");
  DurableTable::Options options;
  options.directory = dir;
  options.config.weight = 0.4;
  options.config.max_size = 8;
  std::set<std::set<EntityId>> before;
  {
    auto table = DurableTable::Open(options);
    ASSERT_TRUE(table.ok());
    Rng rng(11);
    for (EntityId id = 0; id < 150; ++id) {
      Row row(id);
      const AttributeId base = static_cast<AttributeId>(rng.Uniform(4) * 8);
      for (AttributeId a = 0; a < 3; ++a) {
        row.Set(base + a, Value(int64_t{1}));
      }
      ASSERT_TRUE((*table)->InsertRow(std::move(row)).ok());
    }
    ASSERT_TRUE((*table)->Checkpoint().ok());
    for (EntityId id = 150; id < 200; ++id) {
      ASSERT_TRUE((*table)->InsertRow(MakeRow(id, {0, 1, 2})).ok());
    }
    before = Grouping((*table)->cinderella());
  }
  auto reopened = DurableTable::Open(options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(Grouping((*reopened)->cinderella()), before);
}

TEST(DurableTableTest, UpdatesAreDurable) {
  const std::string dir = FreshDir("durable_updates");
  DurableTable::Options options;
  options.directory = dir;
  {
    auto table = DurableTable::Open(options);
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE((*table)->Insert(1, {{"a", Value(int64_t{1})}}).ok());
    ASSERT_TRUE((*table)->Update(1, {{"b", Value(int64_t{2})}}).ok());
  }
  auto reopened = DurableTable::Open(options);
  ASSERT_TRUE(reopened.ok());
  auto row = (*reopened)->table().Get(1);
  ASSERT_TRUE(row.ok());
  const auto b = (*reopened)->table().dictionary().Find("b");
  ASSERT_TRUE(b.has_value());
  EXPECT_TRUE(row->Has(*b));
  EXPECT_EQ(row->attribute_count(), 1u);
}

TEST(DurableTableTest, FailedOperationNotJournaled) {
  const std::string dir = FreshDir("durable_failed");
  DurableTable::Options options;
  options.directory = dir;
  {
    auto table = DurableTable::Open(options);
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE((*table)->InsertRow(MakeRow(1, {0})).ok());
    EXPECT_FALSE((*table)->InsertRow(MakeRow(1, {1})).ok());  // Duplicate.
    EXPECT_FALSE((*table)->Delete(99).ok());
  }
  auto reopened = DurableTable::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->table().entity_count(), 1u);
}

}  // namespace
}  // namespace cinderella
