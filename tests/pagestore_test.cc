// Tests for the paged storage substrate: slotted-page codec, file-backed
// pager, LRU buffer pool, and the pruning paged store.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/cinderella.h"
#include "pagestore/buffer_pool.h"
#include "pagestore/page_codec.h"
#include "pagestore/paged_store.h"
#include "pagestore/pager.h"

namespace cinderella {
namespace {

Row MakeRow(EntityId id, std::initializer_list<AttributeId> attrs) {
  Row row(id);
  for (AttributeId a : attrs) row.Set(a, Value(int64_t{1}));
  return row;
}

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

// -- PageCodec -------------------------------------------------------------------

class PageCodecTest : public testing::Test {
 protected:
  PageCodecTest() : codec_(512), page_(512) { codec_.InitPage(page_.data()); }
  PageCodec codec_;
  std::vector<uint8_t> page_;
};

TEST_F(PageCodecTest, EmptyPage) {
  EXPECT_EQ(codec_.SlotCount(page_.data()), 0u);
  EXPECT_GT(codec_.FreeSpace(page_.data()), 480u);
  EXPECT_FALSE(codec_.IsLive(page_.data(), 0));
  EXPECT_FALSE(codec_.ReadRow(page_.data(), 0).ok());
}

TEST_F(PageCodecTest, AppendAndReadBack) {
  Row row(42);
  row.Set(1, Value(int64_t{-7}));
  row.Set(2, Value(3.5));
  row.Set(3, Value("slipper"));
  const auto slot = codec_.AppendRow(page_.data(), row);
  ASSERT_TRUE(slot.has_value());
  EXPECT_EQ(*slot, 0u);
  EXPECT_TRUE(codec_.IsLive(page_.data(), 0));

  auto loaded = codec_.ReadRow(page_.data(), 0);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->id(), 42u);
  EXPECT_EQ(loaded->Get(1)->as_int64(), -7);
  EXPECT_DOUBLE_EQ(loaded->Get(2)->as_double(), 3.5);
  EXPECT_EQ(loaded->Get(3)->as_string(), "slipper");
}

TEST_F(PageCodecTest, EncodedRowSizeMatchesConsumption) {
  Row row(1);
  row.Set(0, Value(int64_t{1}));
  row.Set(1, Value("abc"));
  const size_t before = codec_.FreeSpace(page_.data());
  ASSERT_TRUE(codec_.AppendRow(page_.data(), row).has_value());
  const size_t after = codec_.FreeSpace(page_.data());
  // One slot entry (4 bytes) + payload.
  EXPECT_EQ(before - after, PageCodec::EncodedRowSize(row) + 4);
}

TEST_F(PageCodecTest, FillsUntilFull) {
  int appended = 0;
  while (true) {
    const auto slot =
        codec_.AppendRow(page_.data(), MakeRow(appended, {0, 1, 2}));
    if (!slot.has_value()) break;
    ++appended;
  }
  EXPECT_GT(appended, 5);
  EXPECT_EQ(codec_.SlotCount(page_.data()), appended);
  // Every stored row reads back.
  for (int slot = 0; slot < appended; ++slot) {
    auto row = codec_.ReadRow(page_.data(), static_cast<uint16_t>(slot));
    ASSERT_TRUE(row.ok());
    EXPECT_EQ(row->id(), static_cast<EntityId>(slot));
  }
}

TEST_F(PageCodecTest, TombstoneAndCompact) {
  for (EntityId id = 0; id < 6; ++id) {
    ASSERT_TRUE(codec_.AppendRow(page_.data(), MakeRow(id, {0})).has_value());
  }
  codec_.Tombstone(page_.data(), 1);
  codec_.Tombstone(page_.data(), 4);
  EXPECT_FALSE(codec_.IsLive(page_.data(), 1));
  EXPECT_FALSE(codec_.ReadRow(page_.data(), 4).ok());
  EXPECT_TRUE(codec_.IsLive(page_.data(), 0));

  const size_t live = codec_.Compact(page_.data());
  EXPECT_EQ(live, 4u);
  EXPECT_EQ(codec_.SlotCount(page_.data()), 4u);
  std::vector<EntityId> ids;
  for (uint16_t slot = 0; slot < 4; ++slot) {
    ids.push_back(codec_.ReadRow(page_.data(), slot)->id());
  }
  EXPECT_EQ(ids, (std::vector<EntityId>{0, 2, 3, 5}));
}

TEST_F(PageCodecTest, OversizedRowRejected) {
  Row fat(1);
  fat.Set(0, Value(std::string(600, 'x')));
  EXPECT_FALSE(codec_.AppendRow(page_.data(), fat).has_value());
  EXPECT_EQ(codec_.SlotCount(page_.data()), 0u);
}

// -- Pager -----------------------------------------------------------------------

TEST(PagerTest, AllocateWriteReadRoundTrip) {
  auto pager = Pager::Open(TempPath("pager_basic.db"), 512, true);
  ASSERT_TRUE(pager.ok());
  auto page = (*pager)->AllocatePage();
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(*page, 1u);

  std::vector<uint8_t> out(512);
  for (size_t i = 0; i < out.size(); ++i) out[i] = static_cast<uint8_t>(i);
  ASSERT_TRUE((*pager)->WritePage(*page, out.data()).ok());
  std::vector<uint8_t> in(512, 0);
  ASSERT_TRUE((*pager)->ReadPage(*page, in.data()).ok());
  EXPECT_EQ(in, out);
  EXPECT_GE((*pager)->pages_read(), 1u);
}

TEST(PagerTest, PersistsAcrossReopen) {
  const std::string path = TempPath("pager_reopen.db");
  {
    auto pager = Pager::Open(path, 512, true);
    ASSERT_TRUE(pager.ok());
    auto page = (*pager)->AllocatePage();
    std::vector<uint8_t> data(512, 0xAB);
    ASSERT_TRUE((*pager)->WritePage(*page, data.data()).ok());
    ASSERT_TRUE((*pager)->Flush().ok());
  }
  auto reopened = Pager::Open(path, 512, false);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->page_count(), 2u);
  std::vector<uint8_t> data(512, 0);
  ASSERT_TRUE((*reopened)->ReadPage(1, data.data()).ok());
  EXPECT_EQ(data[100], 0xAB);
}

TEST(PagerTest, FreeListReusesPages) {
  auto pager = Pager::Open(TempPath("pager_free.db"), 512, true);
  ASSERT_TRUE(pager.ok());
  auto a = (*pager)->AllocatePage();
  auto b = (*pager)->AllocatePage();
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE((*pager)->FreePage(*a).ok());
  EXPECT_EQ((*pager)->free_page_count(), 1u);
  auto c = (*pager)->AllocatePage();
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, *a);  // Reused.
  EXPECT_EQ((*pager)->free_page_count(), 0u);
  EXPECT_EQ((*pager)->page_count(), 3u);  // Header + 2.
}

TEST(PagerTest, RejectsBadAccess) {
  auto pager = Pager::Open(TempPath("pager_bad.db"), 512, true);
  ASSERT_TRUE(pager.ok());
  std::vector<uint8_t> buffer(512);
  EXPECT_FALSE((*pager)->ReadPage(0, buffer.data()).ok());   // Header.
  EXPECT_FALSE((*pager)->ReadPage(99, buffer.data()).ok());  // Beyond EOF.
  EXPECT_FALSE((*pager)->FreePage(0).ok());
}

TEST(PagerTest, RejectsMismatchedPageSize) {
  const std::string path = TempPath("pager_mismatch.db");
  {
    auto pager = Pager::Open(path, 512, true);
    ASSERT_TRUE(pager.ok());
    ASSERT_TRUE((*pager)->Flush().ok());
  }
  EXPECT_FALSE(Pager::Open(path, 1024, false).ok());
  EXPECT_FALSE(Pager::Open(TempPath("not_there.db"), 512, false).ok());
}

// -- BufferPool --------------------------------------------------------------------

class BufferPoolTest : public testing::Test {
 protected:
  void SetUp() override {
    auto pager = Pager::Open(TempPath("pool.db"), 512, true);
    ASSERT_TRUE(pager.ok());
    pager_ = std::move(pager).value();
    for (int i = 0; i < 6; ++i) {
      auto page = pager_->AllocatePage();
      ASSERT_TRUE(page.ok());
      std::vector<uint8_t> data(512, static_cast<uint8_t>(*page));
      ASSERT_TRUE(pager_->WritePage(*page, data.data()).ok());
    }
  }
  std::unique_ptr<Pager> pager_;
};

TEST_F(BufferPoolTest, HitsAndMisses) {
  BufferPool pool(pager_.get(), 3);
  { auto h = pool.Fetch(1); ASSERT_TRUE(h.ok()); }
  { auto h = pool.Fetch(1); ASSERT_TRUE(h.ok()); }
  EXPECT_EQ(pool.stats().misses, 1u);
  EXPECT_EQ(pool.stats().hits, 1u);
}

TEST_F(BufferPoolTest, EvictsLeastRecentlyUsed) {
  BufferPool pool(pager_.get(), 2);
  { auto h = pool.Fetch(1); }
  { auto h = pool.Fetch(2); }
  { auto h = pool.Fetch(1); }  // 1 is now more recent than 2.
  { auto h = pool.Fetch(3); }  // Evicts 2.
  EXPECT_EQ(pool.stats().evictions, 1u);
  { auto h = pool.Fetch(1); ASSERT_TRUE(h.ok()); }
  EXPECT_EQ(pool.stats().hits, 2u);  // 1 stayed cached.
}

TEST_F(BufferPoolTest, DirtyPagesWrittenBackOnEviction) {
  {
    BufferPool pool(pager_.get(), 1);
    {
      auto h = pool.Fetch(1);
      ASSERT_TRUE(h.ok());
      h->mutable_data()[7] = 0x5A;
      h->MarkDirty();
    }
    { auto h = pool.Fetch(2); }  // Evicts and writes back page 1.
    EXPECT_EQ(pool.stats().writebacks, 1u);
  }
  std::vector<uint8_t> data(512);
  ASSERT_TRUE(pager_->ReadPage(1, data.data()).ok());
  EXPECT_EQ(data[7], 0x5A);
}

TEST_F(BufferPoolTest, FlushAllPersistsDirtyFrames) {
  BufferPool pool(pager_.get(), 4);
  {
    auto h = pool.Fetch(3);
    ASSERT_TRUE(h.ok());
    h->mutable_data()[0] = 0x77;
    h->MarkDirty();
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  std::vector<uint8_t> data(512);
  ASSERT_TRUE(pager_->ReadPage(3, data.data()).ok());
  EXPECT_EQ(data[0], 0x77);
}

TEST_F(BufferPoolTest, AllPinnedFails) {
  BufferPool pool(pager_.get(), 2);
  auto a = pool.Fetch(1);
  auto b = pool.Fetch(2);
  ASSERT_TRUE(a.ok() && b.ok());
  auto c = pool.Fetch(3);
  EXPECT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kFailedPrecondition);
  a->Release();
  auto d = pool.Fetch(3);
  EXPECT_TRUE(d.ok());
}

TEST_F(BufferPoolTest, DiscardRemovesCleanFrame) {
  BufferPool pool(pager_.get(), 2);
  { auto h = pool.Fetch(1); }
  ASSERT_TRUE(pool.Discard(1).ok());
  { auto h = pool.Fetch(1); }
  EXPECT_EQ(pool.stats().misses, 2u);  // Re-read after discard.
}

// -- PagedStore --------------------------------------------------------------------

class PagedStoreTest : public testing::Test {
 protected:
  void SetUp() override {
    auto pager = Pager::Open(TempPath("paged_store.db"), 4096, true);
    ASSERT_TRUE(pager.ok());
    pager_ = std::move(pager).value();
    pool_ = std::make_unique<BufferPool>(pager_.get(), 16);
    store_ = std::make_unique<PagedStore>(pager_.get(), pool_.get());
  }
  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<PagedStore> store_;
};

TEST_F(PagedStoreTest, InsertLookupDelete) {
  const size_t p = store_->AddEmptyPartition();
  ASSERT_TRUE(store_->Insert(p, MakeRow(1, {0, 1})).ok());
  ASSERT_TRUE(store_->Insert(p, MakeRow(2, {1, 2})).ok());
  EXPECT_EQ(store_->entity_count(), 2u);
  EXPECT_EQ(store_->PartitionSynopsis(p), (Synopsis{0, 1, 2}));

  auto row = store_->Lookup(1);
  ASSERT_TRUE(row.ok());
  EXPECT_TRUE(row->Has(0));

  EXPECT_EQ(store_->Insert(p, MakeRow(1, {5})).code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(store_->Delete(1).ok());
  EXPECT_FALSE(store_->Lookup(1).ok());
  EXPECT_EQ(store_->Delete(1).code(), StatusCode::kNotFound);
}

TEST_F(PagedStoreTest, ChainsGrowAcrossPages) {
  const size_t p = store_->AddEmptyPartition();
  for (EntityId id = 0; id < 500; ++id) {
    ASSERT_TRUE(store_->Insert(p, MakeRow(id, {0, 1, 2, 3})).ok());
  }
  EXPECT_GT(store_->PartitionPageCount(p), 3u);
  // All rows readable through a scan.
  auto result = store_->ExecuteQuery(Query(Synopsis{0}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows_matched, 500u);
  EXPECT_EQ(result->pages_fetched, store_->PartitionPageCount(p));
}

TEST_F(PagedStoreTest, QueryPrunesPartitionPages) {
  const size_t cameras = store_->AddEmptyPartition();
  const size_t disks = store_->AddEmptyPartition();
  for (EntityId id = 0; id < 200; ++id) {
    ASSERT_TRUE(store_->Insert(cameras, MakeRow(id, {0, 1})).ok());
    ASSERT_TRUE(store_->Insert(disks, MakeRow(1000 + id, {10, 11})).ok());
  }
  auto result = store_->ExecuteQuery(Query(Synopsis{10}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->partitions_pruned, 1u);
  EXPECT_EQ(result->rows_matched, 200u);
  // Only the disk partition's pages were fetched.
  EXPECT_EQ(result->pages_fetched, store_->PartitionPageCount(disks));
}

TEST_F(PagedStoreTest, BuildFromCinderellaCatalog) {
  CinderellaConfig config;
  config.weight = 0.3;
  config.max_size = 50;
  auto cinderella = std::move(Cinderella::Create(config)).value();
  for (EntityId id = 0; id < 100; ++id) {
    const AttributeId base = id % 2 == 0 ? 0 : 20;
    ASSERT_TRUE(
        cinderella->Insert(MakeRow(id, {base, base + 1, base + 2})).ok());
  }
  cinderella->catalog().ForEachPartition([&](const Partition& partition) {
    auto index = store_->AddPartition(partition);
    ASSERT_TRUE(index.ok());
    EXPECT_EQ(store_->PartitionSynopsis(*index),
              partition.attribute_synopsis());
  });
  EXPECT_EQ(store_->entity_count(), 100u);
  auto result = store_->ExecuteQuery(Query(Synopsis{20}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows_matched, 50u);
  EXPECT_GT(result->partitions_pruned, 0u);
}

TEST_F(PagedStoreTest, VacuumCompactsAndShrinksSynopsis) {
  // Exercises the manual Vacuum() path: park the auto-vacuum threshold
  // above any reachable tombstone ratio so deletes alone never compact.
  store_->set_vacuum_threshold(1.5);
  const size_t p = store_->AddEmptyPartition();
  for (EntityId id = 0; id < 300; ++id) {
    ASSERT_TRUE(store_->Insert(p, MakeRow(id, {id % 2 == 0
                                                   ? AttributeId{0}
                                                   : AttributeId{9}}))
                    .ok());
  }
  const size_t pages_before = store_->PartitionPageCount(p);
  // Delete every odd entity (all carriers of attribute 9).
  for (EntityId id = 1; id < 300; id += 2) {
    ASSERT_TRUE(store_->Delete(id).ok());
  }
  // Synopsis is conservative until vacuum.
  EXPECT_TRUE(store_->PartitionSynopsis(p).Contains(9));
  ASSERT_TRUE(store_->Vacuum().ok());
  EXPECT_FALSE(store_->PartitionSynopsis(p).Contains(9));
  EXPECT_LT(store_->PartitionPageCount(p), pages_before);
  EXPECT_EQ(store_->entity_count(), 150u);
  auto row = store_->Lookup(2);
  ASSERT_TRUE(row.ok());  // Index rebuilt.
  EXPECT_GT(pager_->free_page_count(), 0u);
}

TEST_F(PagedStoreTest, AutoVacuumKeepsPruningExact) {
  // Deletes must trigger compaction on their own once the tombstone ratio
  // reaches the threshold — no manual Vacuum() — and the rebuilt synopsis
  // must prune exactly: attribute 9 lives only on odd entities, so after
  // the last odd delete (which tips the ratio to exactly 0.5) a query for
  // it must prune the chain without fetching a single page.
  store_->set_vacuum_threshold(0.5);
  const size_t p = store_->AddEmptyPartition();
  for (EntityId id = 0; id < 100; ++id) {
    ASSERT_TRUE(store_->Insert(p, MakeRow(id, {id % 2 == 0
                                                   ? AttributeId{0}
                                                   : AttributeId{9}}))
                    .ok());
  }
  for (EntityId id = 1; id < 100; id += 2) {
    ASSERT_TRUE(store_->Delete(id).ok());
  }
  // The 50th delete crossed the threshold and compacted automatically.
  EXPECT_EQ(store_->PartitionTombstoneCount(p), 0u);
  EXPECT_FALSE(store_->PartitionSynopsis(p).Contains(9));
  EXPECT_GT(pager_->free_page_count(), 0u);

  auto pruned = store_->ExecuteQuery(Query(Synopsis{9}));
  ASSERT_TRUE(pruned.ok());
  EXPECT_EQ(pruned->partitions_pruned, 1u);
  EXPECT_EQ(pruned->pages_fetched, 0u);
  EXPECT_EQ(pruned->rows_matched, 0u);

  // No live row was lost to compaction.
  auto kept = store_->ExecuteQuery(Query(Synopsis{0}));
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(kept->rows_matched, 50u);
  EXPECT_TRUE(store_->Lookup(2).ok());
  EXPECT_FALSE(store_->Lookup(1).ok());
}

TEST_F(PagedStoreTest, OversizedRowRejectedCleanly) {
  const size_t p = store_->AddEmptyPartition();
  Row fat(1);
  fat.Set(0, Value(std::string(5000, 'x')));
  EXPECT_FALSE(store_->Insert(p, fat).ok());
}

TEST_F(PagedStoreTest, TinyPoolStillScansEverything) {
  // Pool smaller than the data forces eviction churn during scans.
  auto pager = Pager::Open(TempPath("tiny_pool.db"), 512, true);
  ASSERT_TRUE(pager.ok());
  BufferPool pool(pager->get(), 2);
  PagedStore store(pager->get(), &pool);
  const size_t p = store.AddEmptyPartition();
  for (EntityId id = 0; id < 200; ++id) {
    ASSERT_TRUE(store.Insert(p, MakeRow(id, {0, 1})).ok());
  }
  auto result = store.ExecuteQuery(Query(Synopsis{0}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows_matched, 200u);
  EXPECT_GT(pool.stats().evictions, 0u);
}

}  // namespace
}  // namespace cinderella
