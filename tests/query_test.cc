// Tests for the query layer: query construction, synopsis pruning, scan
// metrics, selectivity, and the cost model.

#include <memory>

#include <gtest/gtest.h>

#include "baseline/single_partitioner.h"
#include "core/cinderella.h"
#include "query/executor.h"
#include "query/query.h"

namespace cinderella {
namespace {

Row MakeRow(EntityId id, std::initializer_list<AttributeId> attrs) {
  Row row(id);
  for (AttributeId a : attrs) row.Set(a, Value(int64_t{1}));
  return row;
}

TEST(QueryTest, FromNamesResolvesKnownAttributes) {
  AttributeDictionary dict;
  dict.GetOrCreate("name");
  dict.GetOrCreate("weight");
  const Query q = Query::FromNames(dict, {"name", "missing", "weight"});
  EXPECT_EQ(q.attributes().Count(), 2u);
  EXPECT_EQ(q.projection().size(), 2u);
}

TEST(QueryTest, MatchesIsOrSemantics) {
  const Query q(Synopsis{1, 5});
  EXPECT_TRUE(q.Matches(Synopsis{5, 9}));
  EXPECT_TRUE(q.Matches(Synopsis{1}));
  EXPECT_FALSE(q.Matches(Synopsis{2, 3}));
  EXPECT_FALSE(q.Matches(Synopsis{}));
}

class ExecutorTest : public testing::Test {
 protected:
  // Two schema families partitioned by Cinderella.
  void SetUp() override {
    CinderellaConfig config;
    config.weight = 0.3;
    config.max_size = 100;
    partitioner_ = std::move(Cinderella::Create(config)).value();
    for (EntityId id = 0; id < 20; ++id) {
      ASSERT_TRUE(partitioner_->Insert(MakeRow(id, {0, 1, 2})).ok());
    }
    for (EntityId id = 20; id < 30; ++id) {
      ASSERT_TRUE(partitioner_->Insert(MakeRow(id, {10, 11})).ok());
    }
    ASSERT_EQ(partitioner_->catalog().partition_count(), 2u);
  }

  std::unique_ptr<Cinderella> partitioner_;
};

TEST_F(ExecutorTest, PrunesIrrelevantPartitions) {
  QueryExecutor executor(partitioner_->catalog());
  const QueryResult result = executor.Execute(Query(Synopsis{0}));
  EXPECT_EQ(result.metrics.partitions_total, 2u);
  EXPECT_EQ(result.metrics.partitions_scanned, 1u);
  EXPECT_EQ(result.metrics.partitions_pruned, 1u);
  EXPECT_EQ(result.metrics.rows_scanned, 20u);
  EXPECT_EQ(result.metrics.rows_matched, 20u);
  EXPECT_DOUBLE_EQ(result.selectivity, 20.0 / 30.0);
}

TEST_F(ExecutorTest, NoMatchScansNothing) {
  QueryExecutor executor(partitioner_->catalog());
  const QueryResult result = executor.Execute(Query(Synopsis{99}));
  EXPECT_EQ(result.metrics.partitions_scanned, 0u);
  EXPECT_EQ(result.metrics.rows_matched, 0u);
  EXPECT_DOUBLE_EQ(result.selectivity, 0.0);
  EXPECT_EQ(result.cells_materialized, 0u);
}

TEST_F(ExecutorTest, CrossFamilyQueryScansBoth) {
  QueryExecutor executor(partitioner_->catalog());
  const QueryResult result = executor.Execute(Query(Synopsis{0, 10}));
  EXPECT_EQ(result.metrics.partitions_scanned, 2u);
  EXPECT_EQ(result.metrics.rows_matched, 30u);
  EXPECT_DOUBLE_EQ(result.selectivity, 1.0);
}

TEST_F(ExecutorTest, MaterializesProjectedCells) {
  QueryExecutor executor(partitioner_->catalog());
  // Attr 0 and 1 both live on the 20 family-A rows.
  const QueryResult result = executor.Execute(Query(Synopsis{0, 1}));
  EXPECT_EQ(result.cells_materialized, 40u);
}

TEST_F(ExecutorTest, CountsCellsAndBytesOfScannedPartitions) {
  QueryExecutor executor(partitioner_->catalog());
  const QueryResult result = executor.Execute(Query(Synopsis{10}));
  // Family B: 10 rows x 2 attrs.
  EXPECT_EQ(result.metrics.cells_read, 20u);
  const uint64_t row_bytes = MakeRow(20, {10, 11}).byte_size();
  EXPECT_EQ(result.metrics.bytes_read, 10 * row_bytes);
}

TEST(ExecutorUniversalTest, UniversalTableScansEverything) {
  auto single = std::make_unique<SinglePartitioner>();
  for (EntityId id = 0; id < 30; ++id) {
    ASSERT_TRUE(
        single->Insert(MakeRow(id, {id < 20 ? AttributeId{0} : AttributeId{10}}))
            .ok());
  }
  QueryExecutor executor(single->catalog());
  const QueryResult result = executor.Execute(Query(Synopsis{0}));
  EXPECT_EQ(result.metrics.partitions_scanned, 1u);
  EXPECT_EQ(result.metrics.rows_scanned, 30u);  // No pruning possible.
  EXPECT_EQ(result.metrics.rows_matched, 20u);
}

TEST(CostModelTest, ChargesOverheadPerScannedPartition) {
  QueryResult a;
  a.metrics.bytes_read = 1000;
  a.metrics.partitions_scanned = 1;
  a.metrics.rows_matched = 10;
  QueryResult b = a;
  b.metrics.partitions_scanned = 5;
  const CostModel model{.per_partition_overhead_bytes = 100.0,
                        .per_row_projection_bytes = 1.0};
  EXPECT_DOUBLE_EQ(a.ModeledCost(model), 1000 + 100 + 10);
  EXPECT_DOUBLE_EQ(b.ModeledCost(model), 1000 + 500 + 10);
}

TEST(ExecutorEmptyTest, EmptyCatalog) {
  PartitionCatalog catalog;
  QueryExecutor executor(catalog);
  const QueryResult result = executor.Execute(Query(Synopsis{0}));
  EXPECT_EQ(result.metrics.partitions_total, 0u);
  EXPECT_DOUBLE_EQ(result.selectivity, 0.0);
}

}  // namespace
}  // namespace cinderella
