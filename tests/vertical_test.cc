// Tests for the hidden-schema vertical partitioner (related work [18]):
// co-occurrence computation, attribute clustering, and the query cost
// profile.

#include <gtest/gtest.h>

#include "baseline/vertical_partitioner.h"

namespace cinderella {
namespace {

Row MakeRow(EntityId id, std::initializer_list<AttributeId> attrs) {
  Row row(id);
  for (AttributeId a : attrs) row.Set(a, Value(int64_t{1}));
  return row;
}

// Two disjoint attribute families, always co-occurring within a family.
std::vector<Row> TwoFamilies(size_t per_family) {
  std::vector<Row> rows;
  EntityId next = 0;
  for (size_t i = 0; i < per_family; ++i) {
    rows.push_back(MakeRow(next++, {0, 1, 2}));
    rows.push_back(MakeRow(next++, {3, 4, 5}));
  }
  return rows;
}

TEST(VerticalTest, CoOccurrenceMatrix) {
  VerticalPartitioner vertical(VerticalConfig{.k = 2});
  ASSERT_TRUE(vertical.Build(TwoFamilies(10), 6).ok());
  EXPECT_DOUBLE_EQ(vertical.CoOccurrence(0, 1), 1.0);  // Always together.
  EXPECT_DOUBLE_EQ(vertical.CoOccurrence(0, 3), 0.0);  // Never together.
  EXPECT_DOUBLE_EQ(vertical.CoOccurrence(2, 2), 1.0);
}

TEST(VerticalTest, ClustersRecoverTheFamilies) {
  VerticalPartitioner vertical(VerticalConfig{.k = 2});
  ASSERT_TRUE(vertical.Build(TwoFamilies(10), 6).ok());
  ASSERT_EQ(vertical.groups().size(), 2u);
  EXPECT_EQ(vertical.GroupOf(0), vertical.GroupOf(1));
  EXPECT_EQ(vertical.GroupOf(0), vertical.GroupOf(2));
  EXPECT_EQ(vertical.GroupOf(3), vertical.GroupOf(4));
  EXPECT_NE(vertical.GroupOf(0), vertical.GroupOf(3));
}

TEST(VerticalTest, PartialOverlapJaccard) {
  // Attribute 0 on all 4 rows; attribute 1 on 2 of them.
  std::vector<Row> rows;
  rows.push_back(MakeRow(0, {0, 1}));
  rows.push_back(MakeRow(1, {0, 1}));
  rows.push_back(MakeRow(2, {0}));
  rows.push_back(MakeRow(3, {0}));
  VerticalPartitioner vertical(VerticalConfig{.k = 1});
  ASSERT_TRUE(vertical.Build(rows, 2).ok());
  EXPECT_DOUBLE_EQ(vertical.CoOccurrence(0, 1), 0.5);  // 2 / 4.
}

TEST(VerticalTest, QueryCostReadsOnlyTouchedGroups) {
  VerticalPartitioner vertical(VerticalConfig{.k = 2});
  ASSERT_TRUE(vertical.Build(TwoFamilies(10), 6).ok());
  // Query within one family: one group, no joins, 30 cells (3 attrs x 10).
  const auto one = vertical.CostOf(Synopsis{0});
  EXPECT_EQ(one.groups_read, 1u);
  EXPECT_EQ(one.cells_read, 30u);
  EXPECT_EQ(one.joins_needed, 0u);
  // Query across both families: two groups, one join.
  const auto both = vertical.CostOf(Synopsis{0, 3});
  EXPECT_EQ(both.groups_read, 2u);
  EXPECT_EQ(both.cells_read, 60u);
  EXPECT_EQ(both.joins_needed, 1u);
  // Unknown attribute: nothing read.
  const auto none = vertical.CostOf(Synopsis{99});
  EXPECT_EQ(none.groups_read, 0u);
}

TEST(VerticalTest, KOneMergesEverything) {
  VerticalPartitioner vertical(VerticalConfig{.k = 1});
  ASSERT_TRUE(vertical.Build(TwoFamilies(5), 6).ok());
  ASSERT_EQ(vertical.groups().size(), 1u);
  EXPECT_EQ(vertical.groups()[0].size(), 6u);
}

TEST(VerticalTest, BuildTwiceFails) {
  VerticalPartitioner vertical(VerticalConfig{.k = 2});
  ASSERT_TRUE(vertical.Build(TwoFamilies(2), 6).ok());
  EXPECT_EQ(vertical.Build(TwoFamilies(2), 6).code(),
            StatusCode::kFailedPrecondition);
}

TEST(VerticalTest, KLargerThanAttributesKeepsSingletons) {
  VerticalPartitioner vertical(VerticalConfig{.k = 10});
  ASSERT_TRUE(vertical.Build(TwoFamilies(3), 6).ok());
  EXPECT_EQ(vertical.groups().size(), 6u);  // Never merges below need.
}

}  // namespace
}  // namespace cinderella
