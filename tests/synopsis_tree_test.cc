// Tests for the hierarchical synopsis-tree catalog (src/synopsis/
// synopsis_tree.h): structural invariants under upsert/remove/collapse
// churn, COW snapshot isolation, the empty-root growth regression, and —
// the property that justifies the whole structure — bit-identical
// placements AND query results between tree-enabled and flat
// configurations across shard counts, window sizes, and split/merge/
// evict churn.

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/cinderella.h"
#include "ingest/mutation_pipeline.h"
#include "mvcc/versioned_table.h"
#include "query/estimator.h"
#include "query/executor.h"
#include "query/predicate.h"
#include "synopsis/synopsis_tree.h"
#include "workload/dbpedia_generator.h"

namespace cinderella {
namespace {

Synopsis MakeSynopsis(std::initializer_list<AttributeId> attrs) {
  Synopsis synopsis;
  for (AttributeId a : attrs) synopsis.Add(a);
  return synopsis;
}

std::vector<uint64_t> Candidates(const SynopsisTree& tree,
                                 const Synopsis& probe) {
  std::vector<uint64_t> keys;
  const std::vector<uint64_t>& words = probe.words();
  tree.ForEachCandidate(words.data(), words.size(),
                        [&](uint64_t key) { keys.push_back(key); });
  return keys;
}

// -- Structural unit tests ----------------------------------------------------

TEST(SynopsisTreeTest, UpsertRemoveRoundTrip) {
  SynopsisTree tree(4);
  std::string error;
  EXPECT_TRUE(tree.CheckInvariants(&error)) << error;
  EXPECT_EQ(tree.live_count(), 0u);
  EXPECT_EQ(tree.root_union(), nullptr);

  tree.Upsert(0, MakeSynopsis({1}));
  tree.Upsert(5, MakeSynopsis({2, 64}));
  tree.Upsert(17, MakeSynopsis({3}));
  ASSERT_TRUE(tree.CheckInvariants(&error)) << error;
  EXPECT_EQ(tree.live_count(), 3u);
  ASSERT_NE(tree.root_union(), nullptr);
  EXPECT_TRUE(tree.root_union()->Contains(1));
  EXPECT_TRUE(tree.root_union()->Contains(64));
  EXPECT_TRUE(tree.root_union()->Contains(3));

  // Leaves come back in ascending key order with their exact sets.
  std::vector<uint64_t> keys;
  tree.ForEachLeaf([&](uint64_t key, const Synopsis& set) {
    keys.push_back(key);
    if (key == 5) {
      EXPECT_TRUE(set.Contains(64));
    }
  });
  EXPECT_EQ(keys, (std::vector<uint64_t>{0, 5, 17}));

  tree.Remove(5);
  ASSERT_TRUE(tree.CheckInvariants(&error)) << error;
  EXPECT_EQ(tree.live_count(), 2u);
  EXPECT_FALSE(tree.root_union()->Contains(64));

  tree.Remove(0);
  tree.Remove(17);
  ASSERT_TRUE(tree.CheckInvariants(&error)) << error;
  EXPECT_EQ(tree.live_count(), 0u);
  EXPECT_EQ(tree.depth(), 0u);
}

TEST(SynopsisTreeTest, CandidateDescentPrunesDisjointSubtrees) {
  SynopsisTree tree(2);  // Minimum fanout: deepest tree per key count.
  // Keys 0..31 in two attribute families so whole subtrees are disjoint
  // from a probe: even keys carry attribute 10, odd keys attribute 200.
  for (uint64_t key = 0; key < 32; ++key) {
    tree.Upsert(key, MakeSynopsis({key % 2 == 0 ? AttributeId{10}
                                                : AttributeId{200}}));
  }
  std::string error;
  ASSERT_TRUE(tree.CheckInvariants(&error)) << error;

  std::vector<uint64_t> evens = Candidates(tree, MakeSynopsis({10}));
  ASSERT_EQ(evens.size(), 16u);
  for (size_t i = 0; i < evens.size(); ++i) {
    EXPECT_EQ(evens[i], 2 * i);  // Ascending, exactly the even keys.
  }
  EXPECT_TRUE(Candidates(tree, MakeSynopsis({77})).empty());
  // Empty probe matches nothing (the flat Intersects convention).
  EXPECT_TRUE(Candidates(tree, Synopsis()).empty());
}

TEST(SynopsisTreeTest, ShrinkingUpsertReOrsStaleBitsAway) {
  SynopsisTree tree(4);
  tree.Upsert(3, MakeSynopsis({1, 2, 3}));
  tree.Upsert(9, MakeSynopsis({4}));
  ASSERT_TRUE(tree.root_union()->Contains(3));

  // Replace key 3 with a shrunk set: ancestors must drop bit 3 (the
  // dirty re-OR path), not keep it conservatively.
  tree.Upsert(3, MakeSynopsis({1}));
  std::string error;
  ASSERT_TRUE(tree.CheckInvariants(&error)) << error;
  EXPECT_FALSE(tree.root_union()->Contains(3));
  EXPECT_TRUE(tree.root_union()->Contains(1));
  EXPECT_TRUE(tree.root_union()->Contains(4));
  EXPECT_GT(tree.stats().node_reors, 0u);
}

TEST(SynopsisTreeTest, EmptyRootGrowsByHeightWithoutZeroLiveChild) {
  // Regression: the first key after an empty state may be far beyond the
  // root's span (partition ids grow monotonically, so a reorganize drain
  // restarts the tree at a high id). Growth must not wrap the still-empty
  // root as child 0 — that pins a zero-live subtree no Remove collapses.
  SynopsisTree tree(4);
  tree.Upsert(1000, MakeSynopsis({1}));
  std::string error;
  ASSERT_TRUE(tree.CheckInvariants(&error)) << error;
  EXPECT_EQ(tree.live_count(), 1u);

  // Same shape after a drain-to-empty followed by a high reinsert.
  tree.Remove(1000);
  EXPECT_EQ(tree.depth(), 0u);
  tree.Upsert(5000, MakeSynopsis({2}));
  ASSERT_TRUE(tree.CheckInvariants(&error)) << error;
  EXPECT_EQ(Candidates(tree, MakeSynopsis({2})),
            (std::vector<uint64_t>{5000}));
}

TEST(SynopsisTreeTest, RemoveCollapsesEmptiedSubtrees) {
  SynopsisTree tree(4);
  for (uint64_t key = 0; key < 64; ++key) {
    tree.Upsert(key, MakeSynopsis({static_cast<AttributeId>(key % 7)}));
  }
  // Empty the subtree covering [16, 32) — the sweep a split cascade's
  // eager empty-partition drop performs. Every ancestor on the way up
  // must collapse, never leaving a zero-leaf subtree the descent visits.
  for (uint64_t key = 16; key < 32; ++key) tree.Remove(key);
  std::string error;
  ASSERT_TRUE(tree.CheckInvariants(&error)) << error;
  EXPECT_EQ(tree.live_count(), 48u);
  EXPECT_GT(tree.stats().collapses, 0u);
  std::vector<uint64_t> keys;
  tree.ForEachLeaf([&](uint64_t key, const Synopsis&) { keys.push_back(key); });
  for (uint64_t key : keys) {
    EXPECT_TRUE(key < 16 || key >= 32) << key;
  }
}

TEST(SynopsisTreeTest, SnapshotsAreImmutableUnderLaterMutations) {
  SynopsisTree tree(4);
  tree.Upsert(2, MakeSynopsis({5}));
  tree.Upsert(7, MakeSynopsis({9}));
  const SynopsisTreeSnapshot frozen = tree.Share();
  ASSERT_TRUE(frozen.valid());
  EXPECT_EQ(frozen.live(), 2u);

  // Mutate every leaf the snapshot references plus the spine above them.
  tree.Upsert(2, MakeSynopsis({100}));
  tree.Remove(7);
  tree.Upsert(55, MakeSynopsis({101}));
  EXPECT_GT(tree.stats().nodes_copied, 0u);

  // The frozen image still shows the old world, bit for bit.
  std::map<uint64_t, bool> seen;
  frozen.ForEachLeaf([&](uint64_t key, const Synopsis& set) {
    seen[key] = true;
    if (key == 2) {
      EXPECT_TRUE(set.Contains(5));
      EXPECT_FALSE(set.Contains(100));
    }
  });
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_TRUE(seen[2]);
  EXPECT_TRUE(seen[7]);
  ASSERT_NE(frozen.root_union(), nullptr);
  EXPECT_TRUE(frozen.root_union()->Contains(9));
  EXPECT_FALSE(frozen.root_union()->Contains(101));

  // And the live tree moved on.
  std::string error;
  ASSERT_TRUE(tree.CheckInvariants(&error)) << error;
  EXPECT_TRUE(tree.root_union()->Contains(100));
  EXPECT_FALSE(tree.root_union()->Contains(9));
}

TEST(SynopsisTreeTest, IdenticalUpsertIsANoOpWithoutCloning) {
  SynopsisTree tree(4);
  tree.Upsert(3, MakeSynopsis({1, 2}));
  const SynopsisTreeSnapshot frozen = tree.Share();
  const uint64_t copied_before = tree.stats().nodes_copied;
  tree.Upsert(3, MakeSynopsis({1, 2}));  // Identical replacement.
  EXPECT_EQ(tree.stats().nodes_copied, copied_before);
  (void)frozen;
}

// -- Randomized equivalence property ------------------------------------------

std::vector<Row> TestRows(size_t n, AttributeDictionary* dictionary,
                          uint64_t seed = 42) {
  DbpediaConfig config;
  config.num_entities = n;
  config.seed = seed;
  DbpediaGenerator generator(config, dictionary);
  return generator.Generate();
}

std::map<PartitionId, std::vector<EntityId>> Fingerprint(
    const PartitionCatalog& catalog) {
  std::map<PartitionId, std::vector<EntityId>> fingerprint;
  catalog.ForEachPartition([&](const Partition& partition) {
    std::vector<EntityId>& residents = fingerprint[partition.id()];
    for (const Row& row : partition.segment().rows()) {
      residents.push_back(row.id());
    }
    std::sort(residents.begin(), residents.end());
  });
  return fingerprint;
}

std::vector<Row> MakeUpdates(const std::vector<Row>& base, size_t count,
                             uint64_t seed) {
  std::vector<Row> updates;
  uint64_t state = seed;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  for (size_t i = 0; i < count; ++i) {
    const Row& victim = base[next() % base.size()];
    Row row(victim.id());
    const size_t attrs = 2 + next() % 6;
    for (size_t a = 0; a < attrs; ++a) {
      row.Set(static_cast<AttributeId>(next() % 40),
              Value(static_cast<int64_t>(next() % 1000)));
    }
    updates.push_back(std::move(row));
  }
  return updates;
}

CinderellaConfig ChurnConfig(bool tree) {
  CinderellaConfig config;
  config.weight = 0.3;
  config.max_size = 12;  // Small partitions: splits and dissolves happen.
  config.dissolve_threshold = 0.25;
  config.use_synopsis_tree = tree;
  return config;
}

void ExpectSameQueryResult(const QueryResult& a, const QueryResult& b) {
  EXPECT_EQ(a.metrics.partitions_total, b.metrics.partitions_total);
  EXPECT_EQ(a.metrics.partitions_scanned, b.metrics.partitions_scanned);
  EXPECT_EQ(a.metrics.partitions_pruned, b.metrics.partitions_pruned);
  EXPECT_EQ(a.metrics.rows_scanned, b.metrics.rows_scanned);
  EXPECT_EQ(a.metrics.rows_matched, b.metrics.rows_matched);
  EXPECT_EQ(a.metrics.cells_read, b.metrics.cells_read);
  EXPECT_EQ(a.metrics.bytes_read, b.metrics.bytes_read);
  EXPECT_EQ(a.cells_materialized, b.cells_materialized);
  EXPECT_DOUBLE_EQ(a.selectivity, b.selectivity);
}

struct TreeParam {
  int shards;
  size_t window;
};

class TreeEquivalenceTest : public testing::TestWithParam<TreeParam> {};

// The tentpole property: a tree-enabled table and a flat table fed the
// same mutation stream (inserts, updates, deletes, reorganize — i.e.
// split/merge/evict churn) are indistinguishable in placements, stats,
// query results, scan metrics, and estimator outputs; only the number of
// partitions *inspected* differs.
TEST_P(TreeEquivalenceTest, TreeMatchesFlatUnderChurn) {
  const TreeParam param = GetParam();
  AttributeDictionary dictionary;
  const std::vector<Row> base = TestRows(300, &dictionary);
  const std::vector<Row> updates = MakeUpdates(base, 150, 11);
  std::vector<EntityId> deletions;
  for (size_t i = 0; i < base.size(); i += 7) deletions.push_back(base[i].id());

  MutationPipelineOptions options;
  options.shards = param.shards;
  options.window = param.window;

  auto run = [&](bool tree) {
    auto table = std::move(Cinderella::Create(ChurnConfig(tree))).value();
    const std::unique_ptr<MutationPipeline> engine =
        AttachMutationPipeline(table.get(), options);
    EXPECT_TRUE(table->InsertBatch(base).ok());
    EXPECT_TRUE(table->UpdateBatch(updates).ok());
    EXPECT_TRUE(table->DeleteBatch(deletions).ok());
    EXPECT_TRUE(table->Reorganize().ok());
    auto integrity = table->VerifyIntegrity();
    EXPECT_TRUE(integrity.ok()) << integrity.ToString();
    return table;
  };
  const auto flat = run(false);
  const auto treed = run(true);

  // Placements are bit-identical: same partitions, same residents, same
  // creation order, same split/dissolve/move history.
  EXPECT_EQ(Fingerprint(treed->catalog()), Fingerprint(flat->catalog()));
  EXPECT_EQ(treed->stats().splits, flat->stats().splits);
  EXPECT_EQ(treed->stats().updates_moved, flat->stats().updates_moved);
  EXPECT_EQ(treed->stats().partitions_dissolved,
            flat->stats().partitions_dissolved);
  EXPECT_EQ(treed->stats().partitions_created, flat->stats().partitions_created);

  // The tree actually carries the catalog: one leaf per partition, each
  // holding that partition's exact rating synopsis (VerifyIntegrity
  // rechecks this; assert the headline counter here too).
  EXPECT_EQ(treed->synopsis_tree().live_count(),
            treed->catalog().partition_count());

  // Query results and metrics over published MVCC views are identical —
  // the tree-pruned executor path only skips partitions the flat path
  // would have pruned one-by-one.
  VersionedTable flat_view(flat.get(), nullptr);
  VersionedTable tree_view(treed.get(), nullptr);
  const VersionedTable::Snapshot flat_snap = flat_view.snapshot();
  const VersionedTable::Snapshot tree_snap = tree_view.snapshot();
  EXPECT_FALSE(flat_snap.view().tree().valid());
  EXPECT_TRUE(tree_snap.view().tree().valid());

  for (AttributeId probe : {0, 3, 11, 25, 39, 200}) {
    const Query query({probe});
    QueryExecutor flat_exec(flat_snap.view());
    QueryExecutor tree_exec(tree_snap.view());
    ExpectSameQueryResult(tree_exec.Execute(query), flat_exec.Execute(query));

    std::vector<Row> flat_rows;
    std::vector<Row> tree_rows;
    ExpectSameQueryResult(tree_exec.ExecuteGather(query, &tree_rows),
                          flat_exec.ExecuteGather(query, &flat_rows));
    ASSERT_EQ(tree_rows.size(), flat_rows.size());
    for (size_t i = 0; i < tree_rows.size(); ++i) {
      EXPECT_EQ(tree_rows[i].id(), flat_rows[i].id());
    }

    const PredicatePtr predicate = IsNotNull(probe);
    ExpectSameQueryResult(tree_exec.ExecutePredicate(*predicate),
                          flat_exec.ExecutePredicate(*predicate));

    // Estimator parity over the same views.
    const SelectivityEstimate flat_est =
        EstimateSelectivity(flat_snap.view(), query);
    const SelectivityEstimate tree_est =
        EstimateSelectivity(tree_snap.view(), query);
    EXPECT_EQ(tree_est.table_entities, flat_est.table_entities);
    EXPECT_EQ(tree_est.partitions_scanned, flat_est.partitions_scanned);
    EXPECT_EQ(tree_est.partitions_pruned, flat_est.partitions_pruned);
    EXPECT_EQ(tree_est.rows_lower_bound, flat_est.rows_lower_bound);
    EXPECT_EQ(tree_est.rows_upper_bound, flat_est.rows_upper_bound);
    EXPECT_DOUBLE_EQ(tree_est.rows_estimate, flat_est.rows_estimate);
    EXPECT_EQ(ExplainQuery(tree_snap.view(), query),
              ExplainQuery(flat_snap.view(), query));
  }

  // Satellite 1: the node digest (UnionSynopsis) must agree between the
  // tree-root fast path and the flat OR.
  EXPECT_EQ(tree_snap.view().UnionSynopsis(), flat_snap.view().UnionSynopsis());
}

INSTANTIATE_TEST_SUITE_P(ShardsAndWindows, TreeEquivalenceTest,
                         testing::Values(TreeParam{1, 1}, TreeParam{1, 16},
                                         TreeParam{4, 1}, TreeParam{4, 16}));

// Tree-pruned and flat scans must agree when an observer collects
// per-partition touches: the tree path reinstates a pruned touch for
// every skipped partition, in the same ascending order.
TEST(TreeEquivalenceTest, ObserverSeesIdenticalTouchStreams) {
  struct Recorder : ScanObserver {
    std::vector<PartitionTouch> touches;
    void OnScan(const Synopsis&,
                const std::vector<PartitionTouch>& t) override {
      touches = t;
    }
  };
  AttributeDictionary dictionary;
  const std::vector<Row> base = TestRows(250, &dictionary, 5);
  auto run = [&](bool tree, Recorder* recorder) {
    auto table = std::move(Cinderella::Create(ChurnConfig(tree))).value();
    for (const Row& row : base) EXPECT_TRUE(table->Insert(row).ok());
    VersionedTable versioned(table.get(), nullptr);
    const VersionedTable::Snapshot snap = versioned.snapshot();
    QueryExecutor executor(snap.view());
    executor.set_observer(recorder);
    executor.Execute(Query({7}));
  };
  Recorder flat;
  Recorder treed;
  run(false, &flat);
  run(true, &treed);
  ASSERT_EQ(treed.touches.size(), flat.touches.size());
  for (size_t i = 0; i < flat.touches.size(); ++i) {
    EXPECT_EQ(treed.touches[i].partition, flat.touches[i].partition);
    EXPECT_EQ(treed.touches[i].scanned, flat.touches[i].scanned);
    EXPECT_EQ(treed.touches[i].rows_scanned, flat.touches[i].rows_scanned);
    EXPECT_EQ(treed.touches[i].rows_matched, flat.touches[i].rows_matched);
  }
}

// Satellite 6 regression at the system level: drive churn that empties
// whole partitions (the split sweep and DeleteBatch drains funnel through
// DropEmptyPartition) and verify the tree never retains a dropped leaf or
// an uncollapsed empty subtree. VerifyIntegrity walks every leaf against
// the catalog.
TEST(TreeChurnTest, SplitAndDrainChurnKeepsTreeExact) {
  AttributeDictionary dictionary;
  const std::vector<Row> base = TestRows(400, &dictionary, 9);
  auto table = std::move(Cinderella::Create(ChurnConfig(true))).value();
  for (const Row& row : base) ASSERT_TRUE(table->Insert(row).ok());

  // Delete in id-striped waves so partitions drain at different times,
  // reinserting some victims between waves (fresh partition ids force
  // root growth from non-empty and empty states alike).
  for (int wave = 0; wave < 4; ++wave) {
    std::vector<EntityId> victims;
    for (size_t i = static_cast<size_t>(wave); i < base.size(); i += 4) {
      victims.push_back(base[i].id());
    }
    ASSERT_TRUE(table->DeleteBatch(victims).ok());
    auto integrity = table->VerifyIntegrity();
    ASSERT_TRUE(integrity.ok()) << integrity.ToString();
    EXPECT_EQ(table->synopsis_tree().live_count(),
              table->catalog().partition_count());
    if (wave < 3) {
      for (size_t i = static_cast<size_t>(wave); i < base.size(); i += 8) {
        ASSERT_TRUE(table->Insert(base[i]).ok());
      }
    }
  }
  // Fully drained: the tree must be empty too.
  std::vector<EntityId> rest;
  table->catalog().ForEachPartition([&](const Partition& partition) {
    for (const Row& row : partition.segment().rows()) rest.push_back(row.id());
  });
  if (!rest.empty()) {
    ASSERT_TRUE(table->DeleteBatch(rest).ok());
  }
  EXPECT_EQ(table->catalog().partition_count(), 0u);
  EXPECT_EQ(table->synopsis_tree().live_count(), 0u);
  EXPECT_EQ(table->synopsis_tree().depth(), 0u);
  EXPECT_GT(table->synopsis_tree().stats().collapses, 0u);

  // And the tree restarts cleanly at high partition ids (empty-root
  // growth regression, end to end).
  for (size_t i = 0; i < 50; ++i) ASSERT_TRUE(table->Insert(base[i]).ok());
  auto integrity = table->VerifyIntegrity();
  ASSERT_TRUE(integrity.ok()) << integrity.ToString();
}

// Concurrent readers descend pinned view trees while the writer keeps
// publishing — the COW contract under TSan. Readers must always see a
// self-consistent frozen tree whose candidates match the view's own
// partitions.
TEST(TreeConcurrencyTest, ReadersDescendFrozenTreesDuringWrites) {
  AttributeDictionary dictionary;
  const std::vector<Row> rows = TestRows(600, &dictionary, 13);
  CinderellaConfig config = ChurnConfig(true);
  auto created = Cinderella::Create(config);
  ASSERT_TRUE(created.ok());
  VersionedTable table(std::move(created).value());

  std::atomic<bool> done{false};
  std::atomic<uint64_t> scans{0};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      const VersionedTable::Snapshot snap = table.snapshot();
      const CatalogView& view = snap.view();
      if (!view.tree().valid()) continue;
      // Tree candidates must be a subset of the view's partitions, and
      // every non-candidate must really miss the probe.
      const Synopsis probe = MakeSynopsis({3});
      const std::vector<uint64_t>& words = probe.words();
      size_t candidates = 0;
      view.tree().ForEachCandidate(
          words.data(), words.size(), [&](uint64_t key) {
            ++candidates;
            bool found = false;
            for (const PartitionVersion* version : view.partitions()) {
              if (version->id() == key) {
                found = true;
                break;
              }
            }
            EXPECT_TRUE(found) << "candidate " << key << " not in view";
          });
      EXPECT_LE(candidates, view.partition_count());
      QueryExecutor executor(view);
      executor.Execute(Query({3}));
      scans.fetch_add(1, std::memory_order_relaxed);
    }
  });

  const size_t kChunk = 60;
  for (size_t at = 0; at < rows.size(); at += kChunk) {
    const size_t end = std::min(rows.size(), at + kChunk);
    ASSERT_TRUE(
        table.InsertBatch({rows.begin() + static_cast<ptrdiff_t>(at),
                           rows.begin() + static_cast<ptrdiff_t>(end)})
            .ok());
  }
  std::vector<EntityId> victims;
  for (size_t i = 0; i < rows.size(); i += 3) victims.push_back(rows[i].id());
  ASSERT_TRUE(table.DeleteBatch(victims).ok());
  ASSERT_TRUE(table.Reorganize().ok());
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_GT(scans.load(), 0u);

  const VersionedTable::MemoryStats stats = table.memory_stats();
  EXPECT_TRUE(stats.tree.enabled);
  EXPECT_EQ(stats.tree.live_leaves, table.partition_count());
}

}  // namespace
}  // namespace cinderella
