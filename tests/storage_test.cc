// Unit tests for src/storage: values, sparse rows, segments.

#include <gtest/gtest.h>

#include "storage/row.h"
#include "storage/segment.h"
#include "storage/value.h"

namespace cinderella {
namespace {

// -- Value --------------------------------------------------------------------

TEST(ValueTest, TypesAndAccessors) {
  const Value i(int64_t{42});
  const Value d(2.5);
  const Value s("hello");
  EXPECT_TRUE(i.is_int64());
  EXPECT_TRUE(d.is_double());
  EXPECT_TRUE(s.is_string());
  EXPECT_EQ(i.as_int64(), 42);
  EXPECT_DOUBLE_EQ(d.as_double(), 2.5);
  EXPECT_EQ(s.as_string(), "hello");
}

TEST(ValueTest, ByteSize) {
  EXPECT_EQ(Value(int64_t{1}).byte_size(), 8u);
  EXPECT_EQ(Value(1.0).byte_size(), 8u);
  EXPECT_EQ(Value("abc").byte_size(), 3u);
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(int64_t{7}).ToString(), "7");
  EXPECT_EQ(Value("x").ToString(), "x");
  EXPECT_EQ(Value(1.5).ToString(), "1.5");
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value(int64_t{1}), Value(int64_t{1}));
  EXPECT_NE(Value(int64_t{1}), Value(1.0));
  EXPECT_NE(Value("a"), Value("b"));
}

// -- Row ----------------------------------------------------------------------

TEST(RowTest, SetGetErase) {
  Row row(10);
  row.Set(3, Value(int64_t{1}));
  row.Set(1, Value("x"));
  EXPECT_EQ(row.attribute_count(), 2u);
  ASSERT_NE(row.Get(3), nullptr);
  EXPECT_EQ(row.Get(3)->as_int64(), 1);
  EXPECT_EQ(row.Get(2), nullptr);
  EXPECT_TRUE(row.Erase(3));
  EXPECT_FALSE(row.Erase(3));
  EXPECT_EQ(row.attribute_count(), 1u);
}

TEST(RowTest, SetOverwrites) {
  Row row(1);
  row.Set(5, Value(int64_t{1}));
  row.Set(5, Value(int64_t{2}));
  EXPECT_EQ(row.attribute_count(), 1u);
  EXPECT_EQ(row.Get(5)->as_int64(), 2);
}

TEST(RowTest, CellsSortedByAttribute) {
  Row row(1);
  row.Set(9, Value(int64_t{9}));
  row.Set(2, Value(int64_t{2}));
  row.Set(5, Value(int64_t{5}));
  const auto& cells = row.cells();
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0].attribute, 2u);
  EXPECT_EQ(cells[1].attribute, 5u);
  EXPECT_EQ(cells[2].attribute, 9u);
}

TEST(RowTest, AttributeSynopsis) {
  Row row(1);
  row.Set(2, Value(int64_t{0}));
  row.Set(64, Value(int64_t{0}));
  const Synopsis s = row.AttributeSynopsis();
  EXPECT_EQ(s.Count(), 2u);
  EXPECT_TRUE(s.Contains(2));
  EXPECT_TRUE(s.Contains(64));
}

TEST(RowTest, ByteSizeAccounting) {
  Row row(1);
  EXPECT_EQ(row.byte_size(), 8u);  // id only
  row.Set(0, Value(int64_t{1}));   // +4 +8
  EXPECT_EQ(row.byte_size(), 20u);
  row.Set(1, Value("abc"));        // +4 +3
  EXPECT_EQ(row.byte_size(), 27u);
}

// -- Segment --------------------------------------------------------------------

Row MakeRow(EntityId id, std::initializer_list<AttributeId> attrs) {
  Row row(id);
  for (AttributeId a : attrs) row.Set(a, Value(int64_t{1}));
  return row;
}

TEST(SegmentTest, InsertFindRemove) {
  Segment seg;
  ASSERT_TRUE(seg.Insert(MakeRow(1, {0, 1})).ok());
  ASSERT_TRUE(seg.Insert(MakeRow(2, {1, 2, 3})).ok());
  EXPECT_EQ(seg.entity_count(), 2u);
  EXPECT_EQ(seg.cell_count(), 5u);
  ASSERT_NE(seg.Find(1), nullptr);
  EXPECT_EQ(seg.Find(1)->attribute_count(), 2u);
  EXPECT_EQ(seg.Find(99), nullptr);

  auto removed = seg.Remove(1);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(removed.value().id(), 1u);
  EXPECT_EQ(seg.entity_count(), 1u);
  EXPECT_EQ(seg.cell_count(), 3u);
  EXPECT_FALSE(seg.Contains(1));
}

TEST(SegmentTest, DuplicateInsertFails) {
  Segment seg;
  ASSERT_TRUE(seg.Insert(MakeRow(1, {0})).ok());
  const Status s = seg.Insert(MakeRow(1, {1}));
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(seg.entity_count(), 1u);
}

TEST(SegmentTest, RemoveMissingFails) {
  Segment seg;
  EXPECT_EQ(seg.Remove(5).status().code(), StatusCode::kNotFound);
}

TEST(SegmentTest, SwapRemoveKeepsIndexConsistent) {
  Segment seg;
  for (EntityId id = 0; id < 10; ++id) {
    ASSERT_TRUE(seg.Insert(MakeRow(id, {static_cast<AttributeId>(id)})).ok());
  }
  // Remove from the middle; the last row takes its slot.
  ASSERT_TRUE(seg.Remove(3).ok());
  for (EntityId id = 0; id < 10; ++id) {
    if (id == 3) {
      EXPECT_EQ(seg.Find(id), nullptr);
    } else {
      ASSERT_NE(seg.Find(id), nullptr) << id;
      EXPECT_EQ(seg.Find(id)->id(), id);
    }
  }
}

TEST(SegmentTest, ReplaceUpdatesAccounting) {
  Segment seg;
  ASSERT_TRUE(seg.Insert(MakeRow(1, {0, 1, 2})).ok());
  const uint64_t bytes_before = seg.byte_size();
  ASSERT_TRUE(seg.Replace(MakeRow(1, {5})).ok());
  EXPECT_EQ(seg.cell_count(), 1u);
  EXPECT_LT(seg.byte_size(), bytes_before);
  EXPECT_TRUE(seg.Find(1)->Has(5));
  EXPECT_FALSE(seg.Find(1)->Has(0));
}

TEST(SegmentTest, ReplaceMissingFails) {
  Segment seg;
  EXPECT_EQ(seg.Replace(MakeRow(7, {0})).code(), StatusCode::kNotFound);
}

TEST(SegmentTest, ByteSizeSumsRows) {
  Segment seg;
  Row a = MakeRow(1, {0});
  Row b = MakeRow(2, {0, 1});
  const uint64_t expected = a.byte_size() + b.byte_size();
  ASSERT_TRUE(seg.Insert(std::move(a)).ok());
  ASSERT_TRUE(seg.Insert(std::move(b)).ok());
  EXPECT_EQ(seg.byte_size(), expected);
}

}  // namespace
}  // namespace cinderella
