// Tests for the baseline partitioners (single, hash, range, labeled,
// offline clustering) behind the shared Partitioner interface.

#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "baseline/hash_partitioner.h"
#include "baseline/labeled_partitioner.h"
#include "baseline/offline_cluster_partitioner.h"
#include "baseline/range_partitioner.h"
#include "baseline/single_partitioner.h"

namespace cinderella {
namespace {

Row MakeRow(EntityId id, std::initializer_list<AttributeId> attrs) {
  Row row(id);
  for (AttributeId a : attrs) row.Set(a, Value(int64_t{1}));
  return row;
}

// -- shared FixedAssignment behaviour -----------------------------------------

TEST(FixedAssignmentTest, DuplicateInsertRejected) {
  SinglePartitioner p;
  ASSERT_TRUE(p.Insert(MakeRow(1, {0})).ok());
  EXPECT_EQ(p.Insert(MakeRow(1, {1})).code(), StatusCode::kAlreadyExists);
}

TEST(FixedAssignmentTest, DeleteMissingFails) {
  SinglePartitioner p;
  EXPECT_EQ(p.Delete(3).code(), StatusCode::kNotFound);
}

TEST(FixedAssignmentTest, UpdateMissingFails) {
  SinglePartitioner p;
  EXPECT_EQ(p.Update(MakeRow(3, {0})).code(), StatusCode::kNotFound);
}

TEST(FixedAssignmentTest, UpdateStaysInPlaceAndRefreshesSynopsis) {
  SinglePartitioner p;
  ASSERT_TRUE(p.Insert(MakeRow(1, {0, 1})).ok());
  ASSERT_TRUE(p.Insert(MakeRow(2, {0})).ok());
  ASSERT_TRUE(p.Update(MakeRow(1, {5})).ok());
  const Partition* partition =
      p.catalog().GetPartition(*p.catalog().FindEntity(1));
  EXPECT_TRUE(partition->attribute_synopsis().Contains(5));
  EXPECT_FALSE(partition->attribute_synopsis().Contains(1));
  EXPECT_TRUE(partition->attribute_synopsis().Contains(0));  // Entity 2.
}

TEST(FixedAssignmentTest, DeleteDropsEmptiedPartition) {
  RangePartitioner p(1);  // One entity per partition.
  ASSERT_TRUE(p.Insert(MakeRow(1, {0})).ok());
  ASSERT_TRUE(p.Insert(MakeRow(2, {0})).ok());
  EXPECT_EQ(p.catalog().partition_count(), 2u);
  ASSERT_TRUE(p.Delete(1).ok());
  EXPECT_EQ(p.catalog().partition_count(), 1u);
}

// -- SinglePartitioner ----------------------------------------------------------

TEST(SinglePartitionerTest, EverythingInOnePartition) {
  SinglePartitioner p;
  for (EntityId id = 0; id < 50; ++id) {
    ASSERT_TRUE(p.Insert(MakeRow(id, {static_cast<AttributeId>(id % 7)})).ok());
  }
  EXPECT_EQ(p.catalog().partition_count(), 1u);
  EXPECT_EQ(p.catalog().entity_count(), 50u);
  EXPECT_EQ(p.name(), "universal-table");
}

TEST(SinglePartitionerTest, RecreatesPartitionAfterFullDelete) {
  SinglePartitioner p;
  ASSERT_TRUE(p.Insert(MakeRow(1, {0})).ok());
  ASSERT_TRUE(p.Delete(1).ok());
  EXPECT_EQ(p.catalog().partition_count(), 0u);
  ASSERT_TRUE(p.Insert(MakeRow(2, {0})).ok());
  EXPECT_EQ(p.catalog().partition_count(), 1u);
}

// -- HashPartitioner --------------------------------------------------------------

TEST(HashPartitionerTest, UsesAtMostNumBuckets) {
  HashPartitioner p(4);
  for (EntityId id = 0; id < 200; ++id) {
    ASSERT_TRUE(p.Insert(MakeRow(id, {0})).ok());
  }
  EXPECT_LE(p.catalog().partition_count(), 4u);
  EXPECT_GE(p.catalog().partition_count(), 2u);  // Mixing spreads ids.
  EXPECT_EQ(p.catalog().entity_count(), 200u);
  EXPECT_EQ(p.name(), "hash(4)");
}

TEST(HashPartitionerTest, PlacementIsDeterministicById) {
  HashPartitioner a(8);
  HashPartitioner b(8);
  for (EntityId id = 0; id < 100; ++id) {
    ASSERT_TRUE(a.Insert(MakeRow(id, {0})).ok());
    ASSERT_TRUE(b.Insert(MakeRow(id, {0})).ok());
  }
  for (EntityId id = 0; id < 100; ++id) {
    EXPECT_EQ(a.catalog().FindEntity(id), b.catalog().FindEntity(id));
  }
}

TEST(HashPartitionerTest, SchemaOblivious) {
  // Identical ids modulo schema: two very different schemas end up mixed.
  HashPartitioner p(2);
  for (EntityId id = 0; id < 100; ++id) {
    ASSERT_TRUE(
        p.Insert(MakeRow(id, {id % 2 == 0 ? AttributeId{0} : AttributeId{50}}))
            .ok());
  }
  size_t mixed = 0;
  p.catalog().ForEachPartition([&](const Partition& partition) {
    if (partition.attribute_synopsis().Count() == 2) ++mixed;
  });
  EXPECT_GT(mixed, 0u);
}

// -- RangePartitioner --------------------------------------------------------------

TEST(RangePartitionerTest, ChunksByArrivalOrder) {
  RangePartitioner p(10);
  for (EntityId id = 0; id < 35; ++id) {
    ASSERT_TRUE(p.Insert(MakeRow(id, {0})).ok());
  }
  EXPECT_EQ(p.catalog().partition_count(), 4u);  // 10+10+10+5.
  size_t full = 0;
  p.catalog().ForEachPartition([&](const Partition& partition) {
    EXPECT_LE(partition.entity_count(), 10u);
    full += partition.entity_count() == 10;
  });
  EXPECT_EQ(full, 3u);
  EXPECT_EQ(p.name(), "range(B=10)");
}

// -- LabeledPartitioner -------------------------------------------------------------

TEST(LabeledPartitionerTest, OnePartitionPerLabel) {
  LabeledPartitioner p([](const Row& row) { return row.id() % 3; },
                       "by-mod3");
  for (EntityId id = 0; id < 30; ++id) {
    ASSERT_TRUE(p.Insert(MakeRow(id, {0})).ok());
  }
  EXPECT_EQ(p.catalog().partition_count(), 3u);
  // All entities with the same label co-located.
  EXPECT_EQ(p.catalog().FindEntity(0), p.catalog().FindEntity(3));
  EXPECT_NE(p.catalog().FindEntity(0), p.catalog().FindEntity(1));
  EXPECT_EQ(p.name(), "by-mod3");
}

// -- OfflineClusterPartitioner -------------------------------------------------------

TEST(OfflineClusterTest, JaccardSimilarity) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity(Synopsis{0, 1}, Synopsis{1, 2}),
                   1.0 / 3.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(Synopsis{0}, Synopsis{0}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(Synopsis{0}, Synopsis{1}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(Synopsis{}, Synopsis{}), 1.0);
}

TEST(OfflineClusterTest, ConfigValidation) {
  OfflineClusterConfig bad;
  bad.jaccard_threshold = 1.5;
  EXPECT_FALSE(bad.Validate().ok());
  bad.jaccard_threshold = 0.5;
  bad.max_entities_per_partition = 0;
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(OfflineClusterTest, SeparatesSchemaFamilies) {
  OfflineClusterConfig config;
  config.jaccard_threshold = 0.4;
  config.max_entities_per_partition = 100;
  OfflineClusterPartitioner p(config);
  std::vector<Row> rows;
  for (EntityId id = 0; id < 40; ++id) {
    rows.push_back(id % 2 == 0 ? MakeRow(id, {0, 1, 2})
                               : MakeRow(id, {10, 11, 12}));
  }
  ASSERT_TRUE(p.Build(std::move(rows)).ok());
  EXPECT_EQ(p.cluster_count(), 2u);
  EXPECT_EQ(p.catalog().partition_count(), 2u);
  EXPECT_EQ(p.catalog().FindEntity(0), p.catalog().FindEntity(2));
  EXPECT_NE(p.catalog().FindEntity(0), p.catalog().FindEntity(1));
}

TEST(OfflineClusterTest, RespectsCapacityChunks) {
  OfflineClusterConfig config;
  config.max_entities_per_partition = 8;
  OfflineClusterPartitioner p(config);
  std::vector<Row> rows;
  for (EntityId id = 0; id < 30; ++id) rows.push_back(MakeRow(id, {0, 1}));
  ASSERT_TRUE(p.Build(std::move(rows)).ok());
  EXPECT_EQ(p.cluster_count(), 1u);
  EXPECT_EQ(p.catalog().partition_count(), 4u);  // 8+8+8+6.
  p.catalog().ForEachPartition([](const Partition& partition) {
    EXPECT_LE(partition.entity_count(), 8u);
  });
}

TEST(OfflineClusterTest, BuildTwiceFails) {
  OfflineClusterPartitioner p(OfflineClusterConfig{});
  ASSERT_TRUE(p.Build({}).ok());
  EXPECT_EQ(p.Build({}).code(), StatusCode::kFailedPrecondition);
}

TEST(OfflineClusterTest, OnlineInsertAfterBuild) {
  OfflineClusterConfig config;
  config.max_entities_per_partition = 100;
  OfflineClusterPartitioner p(config);
  std::vector<Row> rows;
  for (EntityId id = 0; id < 10; ++id) rows.push_back(MakeRow(id, {0, 1, 2}));
  ASSERT_TRUE(p.Build(std::move(rows)).ok());
  // Similar entity joins the existing cluster.
  ASSERT_TRUE(p.Insert(MakeRow(100, {0, 1, 2})).ok());
  EXPECT_EQ(p.catalog().FindEntity(100), p.catalog().FindEntity(0));
  // Alien entity opens a new cluster.
  ASSERT_TRUE(p.Insert(MakeRow(101, {40, 41})).ok());
  EXPECT_NE(p.catalog().FindEntity(101), p.catalog().FindEntity(0));
  EXPECT_EQ(p.cluster_count(), 2u);
}

}  // namespace
}  // namespace cinderella
