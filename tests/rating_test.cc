// Tests for the Section IV rating: hand-computed cases, weight semantics,
// and normalization properties.

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/rating.h"
#include "synopsis/synopsis.h"

namespace cinderella {
namespace {

TEST(RatingTest, HandComputedBreakdown) {
  // e = {0,1,2}, p = {1,2,3,4}; SIZE(e)=1, SIZE(p)=10, w=0.5.
  const Synopsis e{0, 1, 2};
  const Synopsis p{1, 2, 3, 4};
  const RatingBreakdown b = RateDetailed(e, 1.0, p, 10.0, 0.5);
  EXPECT_DOUBLE_EQ(b.homogeneity, 11.0 * 2);            // (10+1)*|{1,2}|
  EXPECT_DOUBLE_EQ(b.entity_heterogeneity, 1.0 * 2);    // 1*|{3,4}|
  EXPECT_DOUBLE_EQ(b.partition_heterogeneity, 10.0 * 1);  // 10*|{0}|
  EXPECT_DOUBLE_EQ(b.local, 0.5 * 22 - 0.5 * 12);       // 5
  EXPECT_DOUBLE_EQ(b.global, 5.0 / (11.0 * 5.0));       // |e∨p| = 5
}

TEST(RatingTest, IdenticalSynopsesMaximizeGlobalRating) {
  const Synopsis s{0, 1, 2, 3};
  const RatingBreakdown b = RateDetailed(s, 1.0, s, 5.0, 0.5);
  EXPECT_DOUBLE_EQ(b.entity_heterogeneity, 0.0);
  EXPECT_DOUBLE_EQ(b.partition_heterogeneity, 0.0);
  // r = w·(S·|e|) / (S·|e|) = w.
  EXPECT_DOUBLE_EQ(b.global, 0.5);
}

TEST(RatingTest, GlobalRatingIsBoundedByWeight) {
  // For any inputs, r = (w·h⁺ − (1−w)h⁻)/norm with h⁺ ≤ norm and h⁻ ≤ norm,
  // so r ∈ [-(1−w), w].
  Rng rng(31);
  for (int trial = 0; trial < 300; ++trial) {
    Synopsis e;
    Synopsis p;
    for (int i = 0; i < 20; ++i) {
      if (rng.Bernoulli(0.3)) e.Add(static_cast<AttributeId>(rng.Uniform(40)));
      if (rng.Bernoulli(0.5)) p.Add(static_cast<AttributeId>(rng.Uniform(40)));
    }
    const double w = rng.UniformDouble();
    const double size_e = 1.0 + rng.UniformDouble() * 10;
    const double size_p = 1.0 + rng.UniformDouble() * 1000;
    const RatingBreakdown b = RateDetailed(e, size_e, p, size_p, w);
    EXPECT_LE(b.global, w + 1e-9);
    EXPECT_GE(b.global, -(1.0 - w) - 1e-9);
  }
}

TEST(RatingTest, DisjointSynopsesRateNonPositive) {
  const Synopsis e{0, 1};
  const Synopsis p{5, 6, 7};
  for (double w : {0.0, 0.2, 0.5, 0.8}) {
    EXPECT_LT(Rate(e, 1.0, p, 10.0, w), 0.0) << "w=" << w;
  }
  // At w = 1 negative evidence is ignored: disjoint rates exactly 0.
  EXPECT_DOUBLE_EQ(Rate(e, 1.0, p, 10.0, 1.0), 0.0);
}

TEST(RatingTest, WeightZeroAcceptsOnlyPerfectHomogeneity) {
  // Section V: "In the extreme case of w = 0 all created partitions are
  // completely homogeneous": any heterogeneity rates negative, identical
  // synopses rate exactly 0.
  const Synopsis e{0, 1, 2};
  EXPECT_DOUBLE_EQ(Rate(e, 1.0, e, 10.0, 0.0), 0.0);
  const Synopsis p{0, 1, 2, 3};
  EXPECT_LT(Rate(e, 1.0, p, 10.0, 0.0), 0.0);
  const Synopsis q{0, 1};
  EXPECT_LT(Rate(e, 1.0, q, 10.0, 0.0), 0.0);
}

TEST(RatingTest, HigherWeightNeverLowersRating) {
  const Synopsis e{0, 1, 2, 9};
  const Synopsis p{1, 2, 3, 4, 5};
  double prev = Rate(e, 1.0, p, 20.0, 0.0);
  for (double w = 0.1; w <= 1.0001; w += 0.1) {
    const double r = Rate(e, 1.0, p, 20.0, w);
    EXPECT_GE(r, prev);
    prev = r;
  }
}

TEST(RatingTest, EmptyInputsYieldZero) {
  const Synopsis empty;
  EXPECT_DOUBLE_EQ(Rate(empty, 0.0, empty, 0.0, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(Rate(empty, 1.0, empty, 5.0, 0.5), 0.0);
}

TEST(RatingTest, EmptyEntityAgainstNonEmptyPartitionIsNegative) {
  const Synopsis empty;
  const Synopsis p{0, 1};
  // h⁺ = 0, h⁻ₑ = SIZE(e)·|p| > 0.
  EXPECT_LT(Rate(empty, 1.0, p, 5.0, 0.5), 0.0);
}

TEST(RatingTest, UnnormalizedEqualsLocal) {
  const Synopsis e{0, 1};
  const Synopsis p{1, 2};
  const RatingBreakdown b = RateDetailed(e, 2.0, p, 8.0, 0.3);
  EXPECT_DOUBLE_EQ(Rate(e, 2.0, p, 8.0, 0.3, /*normalize=*/false), b.local);
  EXPECT_DOUBLE_EQ(Rate(e, 2.0, p, 8.0, 0.3, /*normalize=*/true), b.global);
}

TEST(RatingTest, LocalRatingScalesWithSizeButGlobalComparable) {
  // Two partitions with identical schema fit but different sizes: the
  // local rating grows with partition size (not comparable), the global
  // rating is size-invariant for proportional inputs.
  const Synopsis e{0, 1, 2};
  const RatingBreakdown small = RateDetailed(e, 1.0, e, 10.0, 0.4);
  const RatingBreakdown large = RateDetailed(e, 1.0, e, 1000.0, 0.4);
  EXPECT_GT(large.local, small.local);
  EXPECT_DOUBLE_EQ(small.global, large.global);  // Both = w.
}

TEST(RatingTest, PrefersPartitionWithLargerOverlap) {
  const Synopsis e{0, 1, 2, 3};
  const Synopsis close{0, 1, 2, 4};
  const Synopsis far{0, 7, 8, 9};
  EXPECT_GT(Rate(e, 1.0, close, 10.0, 0.5), Rate(e, 1.0, far, 10.0, 0.5));
}

}  // namespace
}  // namespace cinderella
