// Deeper tests of the workload-based synopsis mode (Section III):
// structural invariants under churn, split behaviour on query-relevance
// synopses, and efficiency comparison against entity-based mode on data
// where raw schemas mislead.

#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/cinderella.h"
#include "core/efficiency.h"

namespace cinderella {
namespace {

Row MakeRow(EntityId id, std::initializer_list<AttributeId> attrs) {
  Row row(id);
  for (AttributeId a : attrs) row.Set(a, Value(int64_t{1}));
  return row;
}

// Workload: three queries over disjoint attribute ranges.
std::vector<Synopsis> ThreeQueries() {
  return {Synopsis{0, 1, 2}, Synopsis{10, 11, 12}, Synopsis{20, 21, 22}};
}

std::unique_ptr<Cinderella> MakeWorkloadBased(uint64_t max_size) {
  CinderellaConfig config;
  config.mode = SynopsisMode::kWorkloadBased;
  config.weight = 0.4;
  config.max_size = max_size;
  return std::move(Cinderella::Create(config, ThreeQueries())).value();
}

// A row relevant to query `q` but built from a rotating raw attribute so
// entity-based synopses look diverse.
Row RelevantRow(EntityId id, size_t q, Rng& rng) {
  Row row(id);
  // One attribute from query q's set plus heavy unrelated noise, so raw
  // attribute similarity is dominated by the noise.
  row.Set(static_cast<AttributeId>(q * 10 + rng.Uniform(3)),
          Value(int64_t{1}));
  for (int noise = 0; noise < 4; ++noise) {
    row.Set(static_cast<AttributeId>(50 + rng.Uniform(40)),
            Value(int64_t{1}));
  }
  return row;
}

TEST(WorkloadModeTest, InvariantsUnderChurn) {
  auto c = MakeWorkloadBased(40);
  Rng rng(21);
  std::map<EntityId, size_t> model;  // id -> relevant query.
  EntityId next = 0;
  std::vector<EntityId> live;
  for (int op = 0; op < 2000; ++op) {
    const double dice = rng.UniformDouble();
    if (dice < 0.7 || live.empty()) {
      const size_t q = rng.Uniform(3);
      Row row = RelevantRow(next, q, rng);
      model[next] = q;
      live.push_back(next);
      ++next;
      ASSERT_TRUE(c->Insert(std::move(row)).ok());
    } else if (dice < 0.85) {
      const size_t pick = static_cast<size_t>(rng.Uniform(live.size()));
      const EntityId victim = live[pick];
      live[pick] = live.back();
      live.pop_back();
      model.erase(victim);
      ASSERT_TRUE(c->Delete(victim).ok());
    } else {
      const EntityId target =
          live[static_cast<size_t>(rng.Uniform(live.size()))];
      const size_t q = rng.Uniform(3);
      model[target] = q;
      ASSERT_TRUE(c->Update(RelevantRow(target, q, rng)).ok());
    }
  }

  // Structural invariants in workload-based mode: the rating synopsis of
  // every partition is the union of its residents' relevance sets, and
  // capacity holds.
  EXPECT_EQ(c->catalog().entity_count(), model.size());
  c->catalog().ForEachPartition([&](const Partition& partition) {
    EXPECT_GT(partition.entity_count(), 0u);
    EXPECT_LE(partition.entity_count(), 40u);
    Synopsis expected_rating;
    Synopsis expected_attributes;
    for (const Row& row : partition.segment().rows()) {
      expected_rating.UnionWith(c->ExtractSynopsis(row));
      expected_attributes.UnionWith(row.AttributeSynopsis());
    }
    EXPECT_EQ(partition.rating_synopsis(), expected_rating);
    EXPECT_EQ(partition.attribute_synopsis(), expected_attributes);
  });
}

TEST(WorkloadModeTest, SplitsGroupByRelevance) {
  auto c = MakeWorkloadBased(20);
  Rng rng(5);
  // Alternate two relevance classes until splits happen.
  for (EntityId id = 0; id < 60; ++id) {
    ASSERT_TRUE(c->Insert(RelevantRow(id, id % 2, rng)).ok());
  }
  EXPECT_GT(c->stats().splits, 0u);
  // After splitting, partitions should be pure w.r.t. relevance class.
  size_t pure = 0;
  size_t total = 0;
  c->catalog().ForEachPartition([&](const Partition& partition) {
    ++total;
    pure += partition.rating_synopsis().Count() == 1;
  });
  EXPECT_GT(pure, total / 2);
}

TEST(WorkloadModeTest, BeatsEntityBasedWhenSchemasMislead) {
  // Entities relevant to the same query share almost no raw attributes
  // (heavy noise), so entity-based clustering fragments or mixes, while
  // workload-based clustering groups by what queries actually touch.
  const auto workload = ThreeQueries();

  CinderellaConfig entity_config;
  entity_config.weight = 0.4;
  entity_config.max_size = 5000;
  auto entity_based = std::move(Cinderella::Create(entity_config)).value();

  auto workload_based = MakeWorkloadBased(5000);

  Rng rng(77);
  for (EntityId id = 0; id < 3000; ++id) {
    const size_t q = rng.Uniform(3);
    Row row = RelevantRow(id, q, rng);
    Row copy = row;
    ASSERT_TRUE(entity_based->Insert(std::move(copy)).ok());
    ASSERT_TRUE(workload_based->Insert(std::move(row)).ok());
  }

  const double entity_eff =
      ComputeEfficiency(entity_based->catalog(), workload,
                        SizeMeasure::kEntityCount)
          .efficiency;
  const double workload_eff =
      ComputeEfficiency(workload_based->catalog(), workload,
                        SizeMeasure::kEntityCount)
          .efficiency;
  EXPECT_GT(workload_eff, 0.95);  // Perfect relevance separation.
  EXPECT_GT(workload_eff, entity_eff);
}

TEST(WorkloadModeTest, IrrelevantEntitiesClusterTogether) {
  // Entities relevant to no query have an empty rating synopsis; they
  // should collect into shared partitions rather than one-per-entity.
  auto c = MakeWorkloadBased(100);
  for (EntityId id = 0; id < 50; ++id) {
    ASSERT_TRUE(
        c->Insert(MakeRow(id, {static_cast<AttributeId>(60 + id % 5)})).ok());
  }
  // All irrelevant entities rate 0 against the first such partition.
  EXPECT_EQ(c->catalog().partition_count(), 1u);
}

}  // namespace
}  // namespace cinderella
