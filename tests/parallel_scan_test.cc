// Determinism tests for the parallel scan engine: the parallel rating
// scan of Cinderella::FindBestPartition and the parallel partition scan
// of QueryExecutor must produce results bit-identical to thread-count 1 —
// placements, operation counters, scan metrics, match order, and
// materialized cells.

#include <map>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/cinderella.h"
#include "query/executor.h"
#include "query/predicate.h"
#include "query/query.h"

namespace cinderella {
namespace {

Row RandomRow(EntityId id, Rng& rng, uint32_t attribute_space) {
  Row row(id);
  if (!rng.Bernoulli(0.03)) {
    const AttributeId base =
        static_cast<AttributeId>(rng.Uniform(3) * (attribute_space / 3));
    const int core = 2 + static_cast<int>(rng.Uniform(5));
    for (int i = 0; i < core; ++i) {
      row.Set(base + static_cast<AttributeId>(rng.Uniform(attribute_space / 3)),
              Value(static_cast<int64_t>(rng.Uniform(100))));
    }
    if (rng.Bernoulli(0.3)) {
      row.Set(static_cast<AttributeId>(rng.Uniform(attribute_space)),
              Value("noise"));
    }
  }
  return row;
}

/// The observable partitioning outcome: which entities share a partition.
std::set<std::set<EntityId>> Grouping(const Cinderella& c) {
  std::set<std::set<EntityId>> groups;
  c.catalog().ForEachPartition([&](const Partition& partition) {
    std::set<EntityId> members;
    for (const Row& row : partition.segment().rows()) members.insert(row.id());
    groups.insert(std::move(members));
  });
  return groups;
}

/// Drives an identical random insert/delete/update stream into `c`.
void DriveWorkload(Cinderella& c, int operations, uint64_t seed) {
  Rng rng(seed);
  EntityId next_id = 0;
  std::vector<EntityId> live;
  for (int op = 0; op < operations; ++op) {
    const double dice = rng.UniformDouble();
    if (dice < 0.80 || live.empty()) {
      Row row = RandomRow(next_id++, rng, 36);
      live.push_back(row.id());
      ASSERT_TRUE(c.Insert(std::move(row)).ok());
    } else if (dice < 0.90) {
      const size_t pick = static_cast<size_t>(rng.Uniform(live.size()));
      const EntityId victim = live[pick];
      live[pick] = live.back();
      live.pop_back();
      ASSERT_TRUE(c.Delete(victim).ok());
    } else {
      const EntityId target =
          live[static_cast<size_t>(rng.Uniform(live.size()))];
      ASSERT_TRUE(c.Update(RandomRow(target, rng, 36)).ok());
    }
  }
}

// Enough operations at a tiny MAXSIZE that the catalog crosses the
// parallel-scan threshold (128 live partitions) and keeps inserting, so
// the parallel argmax path decides real placements.
constexpr int kOperations = 2500;
constexpr uint64_t kSeed = 771;

std::unique_ptr<Cinderella> BuildWithThreads(int scan_threads) {
  CinderellaConfig config;
  config.weight = 0.4;
  config.max_size = 8;
  config.scan_threads = scan_threads;
  // The synopsis tree would shrink the candidate set below the 128-
  // partition threshold this test needs; keep the flat parallel scan
  // under test (tree-vs-flat equivalence is covered by
  // synopsis_tree_test).
  config.use_synopsis_tree = false;
  auto created = Cinderella::Create(config);
  EXPECT_TRUE(created.ok());
  auto c = std::move(created).value();
  DriveWorkload(*c, kOperations, kSeed);
  return c;
}

TEST(ParallelScanDeterminismTest, PlacementsIdenticalToSerial) {
  auto serial = BuildWithThreads(1);
  auto parallel = BuildWithThreads(4);
  ASSERT_GE(serial->catalog().partition_count(), 128u)
      << "workload too small to engage the parallel scan";

  EXPECT_EQ(serial->catalog().partition_count(),
            parallel->catalog().partition_count());
  EXPECT_EQ(Grouping(*serial), Grouping(*parallel));

  // Operation counters are part of the bit-identical contract: the same
  // partitions are rated in the same decision sequence.
  const CinderellaStats& a = serial->stats();
  const CinderellaStats& b = parallel->stats();
  EXPECT_EQ(a.partitions_rated, b.partitions_rated);
  EXPECT_EQ(a.partitions_created, b.partitions_created);
  EXPECT_EQ(a.splits, b.splits);
  EXPECT_EQ(a.split_cascades, b.split_cascades);
  EXPECT_EQ(a.entities_redistributed, b.entities_redistributed);
  EXPECT_EQ(a.partitions_dropped, b.partitions_dropped);

  EXPECT_TRUE(serial->VerifyIntegrity().ok());
  EXPECT_TRUE(parallel->VerifyIntegrity().ok());
}

bool MetricsEqual(const ScanMetrics& a, const ScanMetrics& b) {
  return a.partitions_total == b.partitions_total &&
         a.partitions_scanned == b.partitions_scanned &&
         a.partitions_pruned == b.partitions_pruned &&
         a.rows_scanned == b.rows_scanned &&
         a.rows_matched == b.rows_matched && a.cells_read == b.cells_read &&
         a.bytes_read == b.bytes_read;
}

TEST(ParallelScanDeterminismTest, QueryExecutionIdenticalToSerial) {
  auto table = BuildWithThreads(1);
  QueryExecutor serial(table->catalog(), /*scan_threads=*/1);
  QueryExecutor parallel(table->catalog(), /*scan_threads=*/4);
  EXPECT_EQ(serial.scan_degree(), 1);
  EXPECT_EQ(parallel.scan_degree(), 4);

  // Attribute-set queries of varying selectivity (Execute materializes).
  for (AttributeId a = 0; a < 36; a += 3) {
    const Query query(Synopsis{a, a + 1});
    const QueryResult s = serial.Execute(query);
    const QueryResult p = parallel.Execute(query);
    EXPECT_TRUE(MetricsEqual(s.metrics, p.metrics)) << "attribute " << a;
    EXPECT_DOUBLE_EQ(s.selectivity, p.selectivity);
    EXPECT_EQ(s.cells_materialized, p.cells_materialized);
  }

  // Predicate scans: matched rows must arrive in identical order.
  for (AttributeId a = 0; a < 36; a += 5) {
    const PredicatePtr predicate = IsNotNull(a);
    std::vector<EntityId> serial_matches;
    std::vector<EntityId> parallel_matches;
    const QueryResult s = serial.ScanMatches(
        *predicate,
        [&](const RowView& row) { serial_matches.push_back(row.id()); });
    const QueryResult p = parallel.ScanMatches(
        *predicate,
        [&](const RowView& row) { parallel_matches.push_back(row.id()); });
    EXPECT_TRUE(MetricsEqual(s.metrics, p.metrics)) << "attribute " << a;
    EXPECT_DOUBLE_EQ(s.selectivity, p.selectivity);
    EXPECT_EQ(serial_matches, parallel_matches);
  }

  // A compound predicate with no pruning synopsis (forces full scans).
  const PredicatePtr compound = Or([] {
    std::vector<PredicatePtr> children;
    children.push_back(Compare(1, CompareOp::kGt, Value(int64_t{40})));
    children.push_back(Not(IsNotNull(2)));
    return children;
  }());
  const QueryResult s = serial.ExecutePredicate(*compound);
  const QueryResult p = parallel.ExecutePredicate(*compound);
  EXPECT_TRUE(MetricsEqual(s.metrics, p.metrics));
  EXPECT_DOUBLE_EQ(s.selectivity, p.selectivity);
}

// An executor whose pool degree exceeds the partition count (and tiny
// catalogs in general) must behave identically too.
TEST(ParallelScanDeterminismTest, TinyCatalogParallelExecutor) {
  CinderellaConfig config;
  config.weight = 0.3;
  config.max_size = 100;
  auto c = std::move(Cinderella::Create(config)).value();
  for (EntityId id = 0; id < 10; ++id) {
    Row row(id);
    row.Set(static_cast<AttributeId>(id % 2), Value(int64_t{7}));
    ASSERT_TRUE(c->Insert(std::move(row)).ok());
  }
  QueryExecutor serial(c->catalog(), 1);
  QueryExecutor parallel(c->catalog(), 8);
  const Query query(Synopsis{0});
  const QueryResult s = serial.Execute(query);
  const QueryResult p = parallel.Execute(query);
  EXPECT_TRUE(MetricsEqual(s.metrics, p.metrics));
  EXPECT_EQ(s.cells_materialized, p.cells_materialized);
  EXPECT_DOUBLE_EQ(s.selectivity, p.selectivity);
}

}  // namespace
}  // namespace cinderella
