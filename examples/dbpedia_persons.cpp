// DBpedia-persons scenario: loads the synthetic irregular person data set
// (Section V.B of the paper), runs the selective-query workload against
// Cinderella and the unpartitioned universal table, and prints the
// resulting speedups per selectivity band — a miniature of Figure 5.
//
//   $ ./build/examples/dbpedia_persons            # 20k entities
//   $ CINDERELLA_ENTITIES=100000 ./build/examples/dbpedia_persons

#include <cstdio>
#include <memory>

#include "baseline/single_partitioner.h"
#include "common/env.h"
#include "common/timer.h"
#include "core/cinderella.h"
#include "core/partitioning_stats.h"
#include "query/executor.h"
#include "workload/dbpedia_generator.h"
#include "workload/query_workload.h"

using namespace cinderella;

namespace {

double RunWorkload(const PartitionCatalog& catalog,
                   const std::vector<GeneratedQuery>& workload, double lo,
                   double hi) {
  QueryExecutor executor(catalog);
  WallTimer timer;
  size_t count = 0;
  for (const GeneratedQuery& q : workload) {
    if (q.selectivity < lo || q.selectivity >= hi) continue;
    executor.Execute(q.query);
    ++count;
  }
  return count > 0 ? timer.ElapsedMillis() / count : 0.0;
}

}  // namespace

int main() {
  DbpediaConfig config;
  config.num_entities =
      static_cast<size_t>(Int64FromEnv("CINDERELLA_ENTITIES", 20000));
  AttributeDictionary dictionary;
  DbpediaGenerator generator(config, &dictionary);
  const auto rows = generator.Generate();
  const auto workload =
      GenerateQueryWorkload(rows, config.num_attributes, QueryWorkloadConfig{});
  std::printf("%zu person entities, %zu attributes, %zu workload queries\n",
              rows.size(), config.num_attributes, workload.size());

  CinderellaConfig cc;
  cc.weight = 0.2;  // The paper's sweet spot for this data set.
  cc.max_size = 500;
  auto cinderella = std::move(Cinderella::Create(cc)).value();
  WallTimer load_timer;
  for (Row row : rows) {
    if (!cinderella->Insert(std::move(row)).ok()) return 1;
  }
  std::printf("Cinderella load: %.2fs, %llu splits\n",
              load_timer.ElapsedSeconds(),
              static_cast<unsigned long long>(cinderella->stats().splits));
  std::printf("%s\n",
              AnalyzePartitioning(cinderella->catalog()).ToString().c_str());

  SinglePartitioner universal;
  for (Row row : rows) {
    if (!universal.Insert(std::move(row)).ok()) return 1;
  }

  std::printf("avg query time per selectivity band (ms):\n");
  std::printf("%-14s %12s %12s %8s\n", "selectivity", "cinderella",
              "universal", "speedup");
  for (double lo = 0.0; lo < 0.6; lo += 0.1) {
    const double c = RunWorkload(cinderella->catalog(), workload, lo, lo + 0.1);
    const double u = RunWorkload(universal.catalog(), workload, lo, lo + 0.1);
    if (c == 0.0 && u == 0.0) continue;
    std::printf("%4.1f - %4.1f    %12.3f %12.3f %7.1fx\n", lo, lo + 0.1, c, u,
                c > 0 ? u / c : 0.0);
  }
  return 0;
}
