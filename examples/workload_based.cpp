// Workload-based partitioning (Section III): when a fixed query set W is
// known, entity synopses can list the *queries an entity is relevant to*
// instead of its attributes. Entities answering the same queries are then
// co-located even when their raw attribute sets differ — something the
// entity-based mode cannot see.
//
//   $ ./build/examples/workload_based

#include <cstdio>
#include <memory>
#include <vector>

#include "core/cinderella.h"
#include "core/efficiency.h"
#include "core/universal_table.h"
#include "query/executor.h"

using namespace cinderella;

namespace {

// Entities come in four micro-schemas; the workload only distinguishes
// two groups: "media" queries (attrs 0 or 1) and "sensor" queries
// (attrs 10 or 11).
Row MakeEntity(EntityId id) {
  Row row(id);
  switch (id % 4) {
    case 0:  // Media, variant A.
      row.Set(0, Value(int64_t{1}));
      row.Set(5, Value(int64_t{1}));
      break;
    case 1:  // Media, variant B — no attribute shared with variant A!
      row.Set(1, Value(int64_t{1}));
      row.Set(6, Value(int64_t{1}));
      break;
    case 2:  // Sensor, variant A.
      row.Set(10, Value(int64_t{1}));
      row.Set(15, Value(int64_t{1}));
      break;
    default:  // Sensor, variant B.
      row.Set(11, Value(int64_t{1}));
      row.Set(16, Value(int64_t{1}));
      break;
  }
  return row;
}

size_t PartitionsScanned(const PartitionCatalog& catalog, const Query& query) {
  QueryExecutor executor(catalog);
  return executor.Execute(query).metrics.partitions_scanned;
}

}  // namespace

int main() {
  // The known workload: two query classes.
  const std::vector<Synopsis> workload{Synopsis{0, 1},    // Media query.
                                       Synopsis{10, 11}};  // Sensor query.

  // Entity-based Cinderella sees four schema families.
  CinderellaConfig entity_config;
  entity_config.weight = 0.3;
  entity_config.max_size = 1000;
  auto entity_based = std::move(Cinderella::Create(entity_config)).value();

  // Workload-based Cinderella sees only two relevance classes.
  CinderellaConfig workload_config = entity_config;
  workload_config.mode = SynopsisMode::kWorkloadBased;
  auto workload_based =
      std::move(Cinderella::Create(workload_config, workload)).value();

  for (EntityId id = 0; id < 1600; ++id) {
    if (!entity_based->Insert(MakeEntity(id)).ok()) return 1;
    if (!workload_based->Insert(MakeEntity(id)).ok()) return 1;
  }

  std::printf("entity-based:   %zu partitions\n",
              entity_based->catalog().partition_count());
  std::printf("workload-based: %zu partitions\n",
              workload_based->catalog().partition_count());

  const Query media(Synopsis{0, 1});
  const Query sensor(Synopsis{10, 11});
  std::printf("\npartitions scanned by the media query:  entity-based %zu, "
              "workload-based %zu\n",
              PartitionsScanned(entity_based->catalog(), media),
              PartitionsScanned(workload_based->catalog(), media));
  std::printf("partitions scanned by the sensor query: entity-based %zu, "
              "workload-based %zu\n",
              PartitionsScanned(entity_based->catalog(), sensor),
              PartitionsScanned(workload_based->catalog(), sensor));

  for (const auto& [label, partitioner] :
       std::vector<std::pair<const char*, Cinderella*>>{
           {"entity-based", entity_based.get()},
           {"workload-based", workload_based.get()}}) {
    const EfficiencyBreakdown eff = ComputeEfficiency(
        partitioner->catalog(), workload, SizeMeasure::kEntityCount);
    std::printf("Definition-1 efficiency (%s): %.3f\n", label,
                eff.efficiency);
  }
  return 0;
}
