// Multi-tenancy scenario (one of the paper's motivating application
// areas): many tenants share one universal table, each with its own
// evolving attribute set on top of a few shared attributes. Shows
// Cinderella separating tenants physically without any tenant
// configuration, value predicates filtering within a tenant, and the
// durable table surviving a restart.
//
//   $ ./build/examples/multi_tenant

#include <cstdio>
#include <filesystem>
#include <memory>

#include "common/random.h"
#include "core/cinderella.h"
#include "io/durable_table.h"
#include "query/executor.h"
#include "query/predicate.h"

using namespace cinderella;

namespace {

constexpr size_t kTenants = 6;

// Tenant t's private attributes are named tenant<t>_field<k>; all tenants
// share "created" and "owner".
std::vector<UniversalTable::NamedValue> MakeRecord(size_t tenant,
                                                   Rng& rng) {
  std::vector<UniversalTable::NamedValue> values;
  values.emplace_back("created",
                      Value(static_cast<int64_t>(rng.Uniform(100000))));
  values.emplace_back("owner", Value(static_cast<int64_t>(tenant)));
  const size_t fields = 2 + rng.Uniform(4);
  for (size_t k = 0; k < fields; ++k) {
    char name[32];
    std::snprintf(name, sizeof(name), "tenant%zu_field%llu", tenant,
                  static_cast<unsigned long long>(rng.Uniform(8)));
    values.emplace_back(name,
                        Value(static_cast<int64_t>(rng.Uniform(1000))));
  }
  return values;
}

}  // namespace

int main() {
  const std::string dir = "/tmp/cinderella_multi_tenant";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  DurableTable::Options options;
  options.directory = dir;
  options.config.weight = 0.25;
  options.config.max_size = 2000;

  Rng rng(7);
  {
    auto opened = DurableTable::Open(options);
    if (!opened.ok()) {
      std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
      return 1;
    }
    auto& durable = *opened;
    EntityId next = 0;
    for (int round = 0; round < 900; ++round) {
      const size_t tenant = rng.Uniform(kTenants);
      if (!durable->Insert(next++, MakeRecord(tenant, rng)).ok()) return 1;
    }
    std::printf("loaded %zu records of %zu tenants into %zu partitions\n",
                durable->table().entity_count(), kTenants,
                durable->table().catalog().partition_count());
    if (!durable->Checkpoint().ok()) return 1;
    // A few post-checkpoint operations land in the journal only.
    for (int round = 0; round < 50; ++round) {
      if (!durable->Insert(next++, MakeRecord(0, rng)).ok()) return 1;
    }
  }  // "Process exits."

  // Restart: snapshot + journal reproduce table *and* partitioning.
  auto reopened = DurableTable::Open(options);
  if (!reopened.ok()) {
    std::fprintf(stderr, "%s\n", reopened.status().ToString().c_str());
    return 1;
  }
  auto& durable = *reopened;
  std::printf("recovered %zu records (%llu journal entries replayed)\n",
              durable->table().entity_count(),
              static_cast<unsigned long long>(durable->replayed_on_open()));

  // Tenant isolation: a tenant-3 query prunes other tenants' partitions.
  UniversalTable& table = durable->table();
  QueryExecutor executor(table.catalog());
  const Query tenant3 = Query::FromNames(
      table.dictionary(),
      {"tenant3_field0", "tenant3_field1", "tenant3_field2",
       "tenant3_field3", "tenant3_field4", "tenant3_field5",
       "tenant3_field6", "tenant3_field7"});
  const QueryResult r = executor.Execute(tenant3);
  std::printf(
      "tenant-3 query: %llu rows, scanned %llu/%llu partitions (%llu "
      "pruned)\n",
      static_cast<unsigned long long>(r.metrics.rows_matched),
      static_cast<unsigned long long>(r.metrics.partitions_scanned),
      static_cast<unsigned long long>(r.metrics.partitions_total),
      static_cast<unsigned long long>(r.metrics.partitions_pruned));

  // Value predicate inside tenant 3: field0 > 500 on recent records.
  const auto field0 = table.dictionary().Find("tenant3_field0");
  const auto created = table.dictionary().Find("created");
  if (field0.has_value() && created.has_value()) {
    std::vector<PredicatePtr> clauses;
    clauses.push_back(Compare(*field0, CompareOp::kGt, Value(int64_t{500})));
    clauses.push_back(
        Compare(*created, CompareOp::kGe, Value(int64_t{50000})));
    const PredicatePtr predicate = And(std::move(clauses));
    const QueryResult pr = executor.ExecutePredicate(*predicate);
    std::printf("predicate %s: %llu rows, %llu partitions pruned\n",
                predicate->ToString().c_str(),
                static_cast<unsigned long long>(pr.metrics.rows_matched),
                static_cast<unsigned long long>(pr.metrics.partitions_pruned));
  }
  return 0;
}
