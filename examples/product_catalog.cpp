// Product-catalog scenario (the paper's motivating example): an evolving
// electronics catalog where new product categories appear over time with
// new attribute combinations. Shows how Cinderella adapts the partitioning
// online as the catalog evolves, and compares query efficiency against the
// unpartitioned universal table.
//
//   $ ./build/examples/product_catalog

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baseline/single_partitioner.h"
#include "common/random.h"
#include "core/cinderella.h"
#include "core/efficiency.h"
#include "core/universal_table.h"
#include "query/executor.h"

using namespace cinderella;

namespace {

struct Category {
  const char* name;
  std::vector<const char*> attributes;
};

// Categories appear in waves: cameras and TVs first, then phones, then
// disks and GPS devices — the "quickly evolving variety" of the paper.
const Category kCategories[] = {
    {"camera", {"resolution", "aperture", "screen", "storage", "weight"}},
    {"tv", {"resolution", "screen", "tuner", "weight"}},
    {"phone", {"resolution", "screen", "storage", "weight", "network"}},
    {"disk", {"storage", "rotation", "form factor", "cache"}},
    {"gps", {"screen", "weight", "battery", "maps"}},
};

void Load(UniversalTable& table, Rng& rng, size_t count, size_t wave) {
  static EntityId next_id = 0;
  for (size_t i = 0; i < count; ++i) {
    // Within a wave, earlier categories keep arriving too.
    const size_t category = rng.Uniform(wave + 1);
    const Category& c = kCategories[category];
    std::vector<UniversalTable::NamedValue> values;
    values.emplace_back("name", Value(std::string(c.name) + "-" +
                                      std::to_string(next_id)));
    for (const char* attribute : c.attributes) {
      // Products instantiate most but not all of their category's attrs.
      if (rng.Bernoulli(0.85)) {
        values.emplace_back(attribute,
                            Value(static_cast<int64_t>(rng.Uniform(1000))));
      }
    }
    if (!table.Insert(next_id++, values).ok()) std::abort();
  }
}

void Report(const UniversalTable& table, const char* label) {
  // The workload: one selective query per late category plus a broad one.
  QueryExecutor executor(table.catalog());
  std::printf("\n-- %s: %zu entities, %zu partitions --\n", label,
              table.entity_count(), table.catalog().partition_count());
  for (const auto& names :
       std::vector<std::vector<std::string>>{{"rotation"},
                                             {"battery", "maps"},
                                             {"tuner"},
                                             {"weight"}}) {
    const Query query = Query::FromNames(table.dictionary(), names);
    const QueryResult r = executor.Execute(query);
    std::string label_names;
    for (const auto& n : names) label_names += n + " ";
    std::printf(
        "  query {%s}: selectivity %.3f, scanned %llu/%llu partitions, "
        "rows read %llu (matched %llu)\n",
        label_names.c_str(), r.selectivity,
        static_cast<unsigned long long>(r.metrics.partitions_scanned),
        static_cast<unsigned long long>(r.metrics.partitions_total),
        static_cast<unsigned long long>(r.metrics.rows_scanned),
        static_cast<unsigned long long>(r.metrics.rows_matched));
  }
}

}  // namespace

int main() {
  CinderellaConfig config;
  config.weight = 0.2;
  config.max_size = 2000;
  UniversalTable table(std::move(Cinderella::Create(config)).value());

  Rng rng(2014);
  // Wave 1: only cameras and TVs exist.
  Load(table, rng, 4000, 1);
  Report(table, "after wave 1 (cameras, TVs)");

  // Wave 2: phones appear with a new attribute (network).
  Load(table, rng, 4000, 2);
  Report(table, "after wave 2 (+phones)");

  // Wave 3: disks and GPS devices appear.
  Load(table, rng, 4000, 4);
  Report(table, "after wave 3 (+disks, GPS)");

  // Compare end-state efficiency against the unpartitioned table.
  std::vector<Synopsis> workload;
  for (const auto& names : std::vector<std::vector<std::string>>{
           {"rotation"}, {"battery", "maps"}, {"tuner"}, {"aperture"}}) {
    workload.push_back(
        Query::FromNames(table.dictionary(), names).attributes());
  }
  const double partitioned =
      ComputeEfficiency(table.catalog(), workload, SizeMeasure::kEntityCount)
          .efficiency;
  std::printf("\nDefinition-1 efficiency for the selective workload: %.3f "
              "(unpartitioned universal table would be the workload's match "
              "fraction)\n",
              partitioned);
  return 0;
}
