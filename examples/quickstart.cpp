// Quickstart: create a Cinderella-partitioned universal table, insert a
// few irregular entities, run a pruned query, and inspect the partitioning.
//
//   $ ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "core/cinderella.h"
#include "core/partitioning_stats.h"
#include "core/universal_table.h"
#include "query/executor.h"
#include "query/query.h"

using namespace cinderella;

int main() {
  // 1. Configure the partitioner: weight balances homogeneity vs
  //    heterogeneity evidence; max_size caps partitions at 1000 entities.
  CinderellaConfig config;
  config.weight = 0.3;
  config.max_size = 1000;
  auto cinderella = Cinderella::Create(config);
  if (!cinderella.ok()) {
    std::fprintf(stderr, "config error: %s\n",
                 cinderella.status().ToString().c_str());
    return 1;
  }

  // 2. Wrap it in a universal table; attribute names are interned lazily.
  UniversalTable table(std::move(cinderella).value());

  // The electronics catalog from Figure 1 of the paper.
  table.Insert(1, {{"name", Value("Canon PowerShot S120")},
                   {"resolution", Value(12.1)},
                   {"aperture", Value(2.0)},
                   {"screen", Value(3.0)},
                   {"weight", Value(int64_t{198})}});
  table.Insert(2, {{"name", Value("Sony SLT-A99")},
                   {"resolution", Value(24.0)},
                   {"screen", Value(3.0)},
                   {"weight", Value(int64_t{733})}});
  table.Insert(3, {{"name", Value("Samsung Galaxy S4")},
                   {"resolution", Value(13.0)},
                   {"screen", Value(4.3)},
                   {"storage", Value("32GB")},
                   {"weight", Value(int64_t{133})}});
  table.Insert(4, {{"name", Value("WD4000FYYZ")},
                   {"storage", Value("4TB")},
                   {"rotation", Value(int64_t{7200})},
                   {"form factor", Value("3.5\"")}});
  table.Insert(5, {{"name", Value("LG 60LA7408")},
                   {"resolution", Value("Full HD")},
                   {"screen", Value(int64_t{40})},
                   {"tuner", Value("DVB-T/C/S")},
                   {"weight", Value(int64_t{9800})}});

  // 3. Query: all entities with an aperture or a rotation speed
  //    (SELECT aperture, rotation FROM t WHERE aperture IS NOT NULL OR
  //     rotation IS NOT NULL). Partitions without those attributes are
  //    pruned via their synopses before any data is touched.
  const Query query =
      Query::FromNames(table.dictionary(), {"aperture", "rotation"});
  QueryExecutor executor(table.catalog());
  const QueryResult result = executor.Execute(query);
  std::printf("query {aperture, rotation}: %llu of %zu entities matched; "
              "%llu/%llu partitions scanned (%llu pruned)\n",
              static_cast<unsigned long long>(result.metrics.rows_matched),
              table.entity_count(),
              static_cast<unsigned long long>(result.metrics.partitions_scanned),
              static_cast<unsigned long long>(result.metrics.partitions_total),
              static_cast<unsigned long long>(result.metrics.partitions_pruned));

  // 4. Modifications keep the partitioning adapted online.
  table.Update(3, {{"name", Value("Samsung Galaxy S4")},
                   {"storage", Value("64GB")},
                   {"rotation", Value(int64_t{5400})}});  // Becomes disk-like.
  table.Delete(2);

  // 5. Inspect what Cinderella built.
  std::printf("\n%s\n",
              AnalyzePartitioning(table.catalog()).ToString().c_str());
  table.catalog().ForEachPartition([&](const Partition& p) {
    std::printf("partition %u: %zu entities, attributes ", p.id(),
                p.entity_count());
    for (AttributeId a : p.attribute_synopsis().ToIds()) {
      std::printf("%s ", table.dictionary().Name(a).value().c_str());
    }
    std::printf("\n");
  });
  return 0;
}
