// Regularly-structured data scenario (Section V.C): loading TPC-H rows
// into a Cinderella-partitioned universal table. On perfectly regular data
// Cinderella should recover the TPC-H table schema exactly — every
// partition holds rows of a single table — and add only union overhead.
//
//   $ ./build/examples/tpch_regular            # SF 0.01
//   $ CINDERELLA_TPCH_SF=0.1 ./build/examples/tpch_regular

#include <cstdio>
#include <map>
#include <memory>
#include <set>

#include "common/env.h"
#include "core/cinderella.h"
#include "query/executor.h"
#include "workload/tpch/tpch_generator.h"
#include "workload/tpch/tpch_queries.h"

using namespace cinderella;

int main() {
  TpchGeneratorConfig config;
  config.scale_factor = DoubleFromEnv("CINDERELLA_TPCH_SF", 0.01);
  AttributeDictionary dictionary;
  TpchGenerator generator(config, &dictionary);
  const auto rows = generator.Generate();
  std::printf("TPC-H SF %.3f: %zu rows\n", config.scale_factor, rows.size());

  CinderellaConfig cc;
  cc.weight = 0.5;
  cc.max_size = 2000;
  cc.use_synopsis_index = true;
  auto cinderella = std::move(Cinderella::Create(cc)).value();
  for (Row row : rows) {
    if (!cinderella->Insert(std::move(row)).ok()) return 1;
  }

  // Verify schema recovery: each partition is pure (one table) and each
  // table's rows land in ceil(rows / B) partitions.
  std::map<TpchTable, size_t> partitions_per_table;
  bool pure = true;
  cinderella->catalog().ForEachPartition([&](const Partition& p) {
    std::set<TpchTable> tables;
    for (const Row& row : p.segment().rows()) {
      tables.insert(TpchTableOfEntity(row.id()));
    }
    if (tables.size() != 1) {
      pure = false;
      return;
    }
    ++partitions_per_table[*tables.begin()];
  });
  std::printf("partitions: %zu, schema recovered exactly: %s\n",
              cinderella->catalog().partition_count(), pure ? "yes" : "NO");
  for (const auto& [table, count] : partitions_per_table) {
    std::printf("  %-9s %6llu rows in %zu partitions\n", TpchTableName(table),
                static_cast<unsigned long long>(
                    TpchRowCount(table, config.scale_factor)),
                count);
  }

  // Run the 22 query footprints and show partition pruning per query.
  QueryExecutor executor(cinderella->catalog());
  std::printf("\n22 TPC-H query footprints:\n");
  for (const auto& footprint : TpchQueryFootprints()) {
    const Query query = MakeTpchQuery(footprint, dictionary);
    const QueryResult r = executor.Execute(query);
    std::printf("  Q%-2d scans %3llu/%3llu partitions, %8llu rows\n",
                footprint.number,
                static_cast<unsigned long long>(r.metrics.partitions_scanned),
                static_cast<unsigned long long>(r.metrics.partitions_total),
                static_cast<unsigned long long>(r.metrics.rows_scanned));
  }
  return 0;
}
